"""Figure 8 bench: the headline policy comparison (1T and SMT).

Deviation note (see EXPERIMENTS.md): in the paper iTP+xPTP beats
iTP+TDRRIP/iTP+PTP by a wide margin because unprotected data page walks
cost ~170 cycles (DRAM-bound) at full scale.  At this reproduction's
simulation horizons the LLC retains PTE lines, capping that gap, so the
iTP composites finish within ~1 point of each other; all the paper's other
orderings hold and are asserted.
"""

from repro.experiments import fig08_main_comparison

from .conftest import run_figure


def test_fig08_main_comparison(benchmark):
    results = run_figure(
        benchmark, fig08_main_comparison.run, server_count=5, per_category=2,
        warmup=50_000, measure=150_000,
    )
    single = {r["technique"]: r["geomean_ipc_improvement_pct"]
              for r in results[0].as_dicts()}
    smt = {r["technique"]: r["geomean_ipc_improvement_pct"]
           for r in results[1].as_dicts()}

    # Paper shape (1T), baselines: TDRRIP > PTP > iTP > CHiRP ~ LRU.
    assert single["tdrrip"] > single["itp"]
    assert single["ptp"] > single["itp"]
    assert single["itp"] > 0.5
    assert abs(single["chirp"]) < 1.5

    # iTP+xPTP beats every standalone technique...
    for technique in ("tdrrip", "ptp", "chirp", "itp", "chirp+tdrrip", "chirp+ptp"):
        assert single["itp+xptp"] > single[technique], technique
    # ...and combining iTP with a translation-aware L2C policy always beats
    # that policy alone (the paper's cooperation claim).
    assert single["itp+tdrrip"] > single["tdrrip"]
    assert single["itp+ptp"] > single["ptp"]
    # Model deviation: the three iTP composites bunch together here.
    best = max(single.values())
    assert single["itp+xptp"] > best - 1.0

    # SMT: the iTP composites stay on top and iTP+xPTP beats all baselines.
    for technique in ("tdrrip", "ptp", "chirp", "itp"):
        assert smt["itp+xptp"] > smt[technique], technique
