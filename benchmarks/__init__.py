"""Benchmark harness: one module per paper figure (see DESIGN.md)."""
