"""Ablation bench: the adaptive xPTP/LRU switch on a phased workload.

Deviation note (see EXPERIMENTS.md): in the paper's full-detail simulator
xPTP can *hurt* low-pressure phases, so the adaptive scheme beats
always-on.  Our simplified timing model underprices the L2C capacity an
always-on xPTP steals from quiet phases, so always-on is never punished;
the bench therefore asserts the switch's *mechanism* (phase tracking and
near-always-on performance), not superiority over always-on.
"""

from repro.experiments import ablation_adaptive

from .conftest import run_figure


def test_ablation_adaptive(benchmark):
    results = run_figure(
        benchmark, ablation_adaptive.run, warmup=40_000, measure=240_000,
        phase_records=10_000,
    )
    rows = {r["scheme"]: r for r in results[0].as_dicts()}
    adaptive = rows["adaptive T1=1"]
    always = rows["always-on"]
    # The switch tracks phases: xPTP is enabled for the pressure phases
    # only (roughly half the windows), and still improves on the LRU
    # baseline while staying within a few points of always-on.
    assert 25.0 < adaptive["windows_xptp_enabled_pct"] < 85.0
    assert adaptive["ipc_improvement_pct"] > 0
    assert adaptive["ipc_improvement_pct"] > always["ipc_improvement_pct"] - 4.0
    # Raising T1 makes the switch more conservative (fewer enabled windows).
    assert (
        rows["adaptive T1=4"]["windows_xptp_enabled_pct"]
        <= rows["adaptive T1=0"]["windows_xptp_enabled_pct"]
    )
