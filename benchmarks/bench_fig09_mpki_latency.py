"""Figure 9 bench: MPKI and miss latency per level.

Deviation note (see EXPERIMENTS.md): the paper reports a 46% STLB
miss-latency cut for iTP+xPTP because unprotected data walks are
DRAM-bound at full scale; at this reproduction's horizons the LLC retains
PTE lines, so the cut is present but smaller (~10-20%).  The directional
assertions below capture the paper's shape.
"""

from repro.experiments import fig09_mpki_latency

from .conftest import run_figure

TECHNIQUES = ("lru", "tdrrip", "ptp", "itp", "itp+xptp")


def test_fig09_mpki_latency(benchmark):
    results = run_figure(
        benchmark, fig09_mpki_latency.run, techniques=TECHNIQUES,
        server_count=3, per_category=1, warmup=50_000, measure=150_000,
    )
    single = {r["technique"]: r for r in results[0].as_dicts()}
    # iTP+xPTP lowers the average STLB miss latency vs both LRU and iTP
    # alone (data walks become L2C hits)...
    assert single["itp+xptp"]["stlb_avg_miss_lat"] < 0.95 * single["lru"]["stlb_avg_miss_lat"]
    assert single["itp+xptp"]["stlb_avg_miss_lat"] < single["itp"]["stlb_avg_miss_lat"]
    # ...raises L2C MPKI slightly (PTE blocks displace demand blocks) while
    # *cutting* the L2C miss latency, and lowers LLC MPKI — the Figure 9 shape.
    assert single["itp+xptp"]["l2c_mpki"] >= single["lru"]["l2c_mpki"] - 0.5
    assert single["itp+xptp"]["l2c_avg_miss_lat"] < single["lru"]["l2c_avg_miss_lat"]
    assert single["itp+xptp"]["llc_mpki"] <= single["lru"]["llc_mpki"]
