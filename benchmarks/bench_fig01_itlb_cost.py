"""Figure 1 bench: instruction translation cost vs ITLB size."""

from repro.experiments import fig01_itlb_cost

from .conftest import run_figure


def test_fig01_itlb_cost(benchmark):
    """Server workloads pay heavy instruction-translation cost; SPEC does not."""
    results = run_figure(
        benchmark, fig01_itlb_cost.run, server_count=2, spec_count=2,
        warmup=40_000, measure=120_000,
    )
    rows = results[0].as_dicts()
    server = {r["itlb_entries"]: r["pct_cycles_instr_translation"]
              for r in rows if r["class"] == "server"}
    spec = {r["itlb_entries"]: r["pct_cycles_instr_translation"]
            for r in rows if r["class"] == "spec"}
    # Paper shape: server pays far more than SPEC at realistic sizes, and
    # the cost falls as the ITLB grows.
    assert server[16] > 10 * max(spec[16], 1e-6)
    assert server[256] < server[8]
