"""Ablation bench: iTP N/M and xPTP K parameter sweeps (Section 5.1)."""

from repro.experiments import ablation_params

from .conftest import run_figure


def test_ablation_nm(benchmark):
    results = run_figure(
        benchmark, ablation_params.run_nm, server_count=2,
        warmup=40_000, measure=120_000,
    )
    rows = results[0].as_dicts()
    # Every (N, M) point of the sweep keeps the iTP trade: iMPKI below and
    # dMPKI above the workload's LRU levels seen at the widest setting.
    impki = [r["mean_impki"] for r in rows]
    assert max(impki) < 4.0
    improvements = [r["geomean_ipc_improvement_pct"] for r in rows]
    assert max(improvements) - min(improvements) < 6.0  # "no significant variation"


def test_ablation_k(benchmark):
    results = run_figure(
        benchmark, ablation_params.run_k, server_count=2,
        warmup=40_000, measure=120_000,
    )
    rows = {r["K"]: r for r in results[0].as_dicts()}
    # Larger K protects data PTEs more aggressively: dtMPKI decreases
    # monotonically-ish and K=8 clearly beats K=1 on PTE retention.
    assert rows[8]["mean_l2c_dtmpki"] < rows[1]["mean_l2c_dtmpki"]
