"""Figure 3 bench: probabilistic instruction-priority LRU sweep."""

from repro.experiments import fig03_probabilistic

from .conftest import run_figure


def test_fig03_probabilistic(benchmark):
    results = run_figure(
        benchmark, fig03_probabilistic.run, server_count=3,
        warmup=50_000, measure=150_000,
    )
    rows = results[0].as_dicts()
    geomean = {r["P"]: r["ipc_improvement_pct"]
               for r in rows if r["workload"] == "GEOMEAN"}
    # Paper shape: protecting instructions (high P) wins; evicting them
    # (low P) is worse than keeping them.
    assert geomean[0.8] > 0
    assert geomean[0.8] > geomean[0.2]
