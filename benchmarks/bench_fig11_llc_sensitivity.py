"""Figure 11 bench: sensitivity to the LLC replacement policy."""

from repro.experiments import fig11_llc_sensitivity

from .conftest import run_figure


def test_fig11_llc_sensitivity(benchmark):
    results = run_figure(
        benchmark, fig11_llc_sensitivity.run, server_count=3, per_category=1,
        warmup=50_000, measure=150_000,
    )
    rows = results[0].as_dicts()
    one_t = {(r["llc_policy"], r["technique"]): r["geomean_ipc_improvement_pct"]
             for r in rows if r["scenario"] == "1T"}
    # Paper shape: iTP gains are consistent across LLC policies, and
    # iTP+xPTP adds on top of iTP for every LLC policy.
    for llc in ("lru", "ship", "mockingjay"):
        assert one_t[(llc, "itp")] > -1.0
        assert one_t[(llc, "itp+xptp")] >= one_t[(llc, "itp")] - 0.5
