"""Figure 12 bench: sensitivity to the ITLB size."""

from repro.experiments import fig12_itlb_sensitivity

from .conftest import run_figure


def test_fig12_itlb_sensitivity(benchmark):
    results = run_figure(
        benchmark, fig12_itlb_sensitivity.run, server_count=3, per_category=1,
        warmup=50_000, measure=150_000,
    )
    rows = results[0].as_dicts()
    one_t = {(r["itlb_entries"], r["technique"]): r["geomean_ipc_improvement_pct"]
             for r in rows if r["scenario"] == "1T"}
    # Paper shape: solid gains at realistic sizes; reduced gains once the
    # ITLB is large enough to absorb the instruction footprint.
    assert one_t[(16, "itp+xptp")] > 2.0
    assert one_t[(256, "itp+xptp")] < one_t[(16, "itp+xptp")]
