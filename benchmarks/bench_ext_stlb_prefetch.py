"""Extension bench: STLB prefetching on the LRU baseline and on iTP+xPTP.

Reproduces the Section 7 claim that iTP is orthogonal to translation
prefetching: a sequential STLB prefetcher helps the big-code server
workloads both with and without iTP+xPTP.
"""

from repro.experiments import ext_stlb_prefetch

from .conftest import run_figure


def test_ext_stlb_prefetch(benchmark):
    results = run_figure(
        benchmark, ext_stlb_prefetch.run, server_count=3,
        warmup=50_000, measure=150_000,
    )
    rows = {r["scheme"]: r for r in results[0].as_dicts()}
    # Sequential prefetching exploits the code stream's page sequentiality.
    assert rows["lru+seq-pf"]["geomean_ipc_improvement_pct"] > 0.5
    # And it composes with iTP+xPTP (orthogonality).
    assert (
        rows["itp+xptp+seq-pf"]["geomean_ipc_improvement_pct"]
        > rows["itp+xptp"]["geomean_ipc_improvement_pct"]
    )
    # The prefetchers actually prefetch.
    assert rows["lru+seq-pf"]["mean_pf_fills_pki"] > 1.0
