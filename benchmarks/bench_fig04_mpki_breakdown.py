"""Figure 4 bench: L2C/LLC MPKI breakdown under instruction-priority STLB."""

from repro.experiments import fig04_mpki_breakdown

from .conftest import run_figure


def test_fig04_mpki_breakdown(benchmark):
    results = run_figure(
        benchmark, fig04_mpki_breakdown.run, server_count=3,
        warmup=50_000, measure=150_000,
    )
    rows = results[0].as_dicts()
    l2c = {r["policy"]: r for r in rows if r["level"] == "L2C"}
    # Finding 3: keeping instructions in the STLB increases the data
    # page-walk pressure on the cache hierarchy.  In this model the extra
    # walks mostly re-hit resident PTE lines, so the increase is asserted
    # on data-walk references; dtMPKI must not *decrease* materially.
    assert l2c["KeepInstr(P=0.8)"]["dt_refs_pki"] > 1.02 * l2c["LRU"]["dt_refs_pki"]
    assert l2c["KeepInstr(P=0.8)"]["dtMPKI"] > 0.9 * l2c["LRU"]["dtMPKI"]
