"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's figures.  A simulation sweep
is expensive, so every bench runs exactly one round (``pedantic``), prints
the reproduced rows/series, and attaches the headline numbers to the
pytest-benchmark record via ``extra_info``.

The sweeps fan out over the parallel runner: ``--repro-workers N`` (or
``auto`` for every core; default 1, keeping the timed region serial and
reproducible) and ``--repro-cache-dir DIR`` (reuse simulation results
across runs — only for iterating on reporting code, as cache hits make the
timings meaningless).
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import ParallelRunner, set_default_runner
from repro.experiments.reporting import FigureResult, format_figure


def pytest_addoption(parser):
    group = parser.getgroup("repro", "paper-reproduction benchmarks")
    group.addoption(
        "--repro-workers", default="1", metavar="N",
        help="worker processes per figure sweep: a count or 'auto' (default: 1)",
    )
    group.addoption(
        "--repro-cache-dir", default=None, metavar="DIR",
        help="on-disk simulation result cache (skips previously run cells)",
    )


@pytest.fixture(autouse=True)
def _repro_default_runner(request):
    """Install the benchmark-selected runner as the process default."""
    workers = request.config.getoption("--repro-workers")
    runner = ParallelRunner(
        workers=workers if workers == "auto" else int(workers),
        cache_dir=request.config.getoption("--repro-cache-dir"),
        progress=True,
    )
    previous = set_default_runner(runner)
    yield runner
    set_default_runner(previous)


def run_figure(benchmark, runner, label=None, **kwargs):
    """Run a figure driver once under pytest-benchmark and print its table."""
    results = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    if isinstance(results, FigureResult):
        results = [results]
    for figure in results:
        print()
        print(format_figure(figure))
        benchmark.extra_info[figure.figure] = figure.as_dicts()
    if label:
        benchmark.extra_info["label"] = label
    return results
