"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's figures.  A simulation sweep
is expensive, so every bench runs exactly one round (``pedantic``), prints
the reproduced rows/series, and attaches the headline numbers to the
pytest-benchmark record via ``extra_info``.
"""

from __future__ import annotations

from repro.experiments.reporting import FigureResult, format_figure


def run_figure(benchmark, runner, label=None, **kwargs):
    """Run a figure driver once under pytest-benchmark and print its table."""
    results = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    if isinstance(results, FigureResult):
        results = [results]
    for figure in results:
        print()
        print(format_figure(figure))
        benchmark.extra_info[figure.figure] = figure.as_dicts()
    if label:
        benchmark.extra_info["label"] = label
    return results
