"""Figure 14 bench: unified STLB + iTP+xPTP vs split STLB."""

from repro.experiments import fig14_split_stlb

from .conftest import run_figure


def test_fig14_split_stlb(benchmark):
    results = run_figure(
        benchmark, fig14_split_stlb.run, server_count=3,
        warmup=50_000, measure=150_000,
    )
    rows = {r["design"]: r["geomean_ipc_improvement_pct"]
            for r in results[0].as_dicts()}
    # Paper shape: equal-capacity split STLB is behind unified iTP+xPTP;
    # the 2x unified iTP+xPTP beats the 2x split design.
    assert rows["unified-1x iTP+xPTP"] > rows["split-1x LRU"]
    assert rows["unified-2x iTP+xPTP"] > rows["split-2x LRU"]
