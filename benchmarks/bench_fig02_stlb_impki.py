"""Figure 2 bench: STLB instruction MPKI, server vs SPEC."""

from repro.experiments import fig02_stlb_impki

from .conftest import run_figure


def test_fig02_stlb_impki(benchmark):
    results = run_figure(
        benchmark, fig02_stlb_impki.run, server_count=4, spec_count=3,
        warmup=40_000, measure=120_000,
    )
    rows = results[0].as_dicts()
    server_mean = next(r for r in rows if r["class"] == "server" and r["workload"] == "MEAN")
    spec_mean = next(r for r in rows if r["class"] == "spec" and r["workload"] == "MEAN")
    # Paper shape: server iMPKI substantial, SPEC negligible.
    assert server_mean["stlb_impki"] > 0.5
    assert spec_mean["stlb_impki"] < 0.05
