"""Figure 10 bench: STLB iMPKI/dMPKI breakdown, LRU vs iTP."""

from repro.experiments import fig10_stlb_breakdown

from .conftest import run_figure


def test_fig10_stlb_breakdown(benchmark):
    results = run_figure(
        benchmark, fig10_stlb_breakdown.run, server_count=3, per_category=1,
        warmup=50_000, measure=150_000,
    )
    rows = results[0].as_dicts()
    by_key = {(r["scenario"], r["technique"]): r for r in rows}
    for scenario in ("1T", "2T"):
        lru = by_key[(scenario, "lru")]
        itp = by_key[(scenario, "itp")]
        # iTP trades data misses for instruction hits in both scenarios.
        assert itp["impki"] < lru["impki"]
        assert itp["dmpki"] > lru["dmpki"]
