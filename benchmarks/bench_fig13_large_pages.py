"""Figure 13 bench: 2 MB page coverage sweep."""

from repro.experiments import fig13_large_pages

from .conftest import run_figure


def test_fig13_large_pages(benchmark):
    results = run_figure(
        benchmark, fig13_large_pages.run, server_count=2, per_category=1,
        warmup=50_000, measure=150_000,
    )
    rows = results[0].as_dicts()
    xptp_1t = {r["pct_2mb"]: r["geomean_ipc_improvement_pct"]
               for r in rows if r["scenario"] == "1T" and r["technique"] == "itp+xptp"}
    # Paper shape: all techniques' benefits shrink as 2 MB coverage grows.
    assert xptp_1t[0] > xptp_1t[50] - 0.5
    assert xptp_1t[0] > xptp_1t[100]
    # At 0% iTP+xPTP is the best technique.
    zero = {r["technique"]: r["geomean_ipc_improvement_pct"]
            for r in rows if r["scenario"] == "1T" and r["pct_2mb"] == 0}
    assert zero["itp+xptp"] == max(zero.values())
