"""Configuration dataclasses.

Defaults encode Table 1 of the paper (the simulated system configuration).
All latencies are in CPU cycles at the modelled 4 GHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    latency: int
    mshr_entries: int
    line_bytes: int = 64
    replacement: str = "lru"
    prefetcher: Optional[str] = None

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(
                f"{self.name}: line size {self.line_bytes} is not a power of two"
            )
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc ({self.line_bytes}*{self.associativity})"
            )
        num_sets = self.size_bytes // (self.line_bytes * self.associativity)
        if num_sets & (num_sets - 1):
            raise ValueError(f"{self.name}: number of sets {num_sets} not a power of two")


@dataclass(frozen=True)
class TLBConfig:
    """Geometry and timing of one TLB level."""

    name: str
    entries: int
    associativity: int
    latency: int
    mshr_entries: int = 8
    replacement: str = "lru"

    @property
    def num_sets(self) -> int:
        return self.entries // self.associativity

    def __post_init__(self) -> None:
        if self.entries % self.associativity:
            raise ValueError(f"{self.name}: entries not divisible by associativity")
        num_sets = self.entries // self.associativity
        if num_sets & (num_sets - 1):
            raise ValueError(f"{self.name}: number of sets {num_sets} not a power of two")


@dataclass(frozen=True)
class PSCConfig:
    """Split page structure caches (Table 1: PSCL5/4/3/2)."""

    latency: int = 2
    pscl5_entries: int = 2
    pscl5_assoc: int = 2      # fully associative
    pscl4_entries: int = 4
    pscl4_assoc: int = 4      # fully associative
    pscl3_entries: int = 8
    pscl3_assoc: int = 2
    pscl2_entries: int = 32
    pscl2_assoc: int = 4


@dataclass(frozen=True)
class ITPConfig:
    """iTP parameters (Section 4.1): 3-bit Freq counter, N=4, M=8."""

    insert_depth_n: int = 4
    data_promote_m: int = 8
    freq_bits: int = 3

    @property
    def freq_max(self) -> int:
        return (1 << self.freq_bits) - 1


@dataclass(frozen=True)
class XPTPConfig:
    """xPTP parameters (Section 4.2): K=8 in Table 1."""

    k: int = 8


@dataclass(frozen=True)
class AdaptiveConfig:
    """Adaptive xPTP/LRU switch (Section 4.3.1).

    Every ``window_instructions`` committed instructions the STLB miss count
    is compared against ``t1_misses``; xPTP is enabled iff it is exceeded.
    """

    enabled: bool = True
    window_instructions: int = 1000
    t1_misses: int = 1


@dataclass(frozen=True)
class CoreConfig:
    """Simplified core timing model parameters (Section 4 of DESIGN.md)."""

    fetch_width: int = 6
    rob_entries: int = 352
    base_cpi: float = 0.4
    # Data-side latency below this many cycles is fully hidden by the ROB.
    rob_hide_cycles: int = 20
    # Fraction of data-side latency beyond rob_hide_cycles that stalls commit.
    data_overlap_factor: float = 0.3
    # Stores retire through the store buffer; only this fraction of their
    # overlap-adjusted latency reaches the critical path.
    store_overlap_scale: float = 0.25
    # Fraction of an L1I miss latency hidden by the decoupled front end (FDIP).
    fdip_hide_factor: float = 0.3
    # Pipeline-refill cost charged on top of the walk latency for each
    # *instruction* STLB miss: the decoupled front end drains while fetch
    # waits on the walk and takes this long to re-steer and refill
    # (Section 3.2: instruction misses stall the pipeline; their cost is
    # more than the raw translation latency).
    fetch_resteer_penalty: int = 15


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM timing (Table 1: tRP=tRCD=tCAS=12 @ 12.8 GB/s).

    Two timing modes:

    * flat (default): every read costs ``latency`` CPU cycles;
    * row-buffer (``row_buffer=True``): per-bank open-row tracking, with
      Table 1's DRAM timing parameters scaled by ``clock_ratio`` (CPU
      cycles per DRAM cycle) plus a fixed ``bus_overhead``.  A row hit
      costs tCAS, a closed/conflicting row tRP+tRCD+tCAS.
    """

    latency: int = 120
    # Extra cycles charged per outstanding-access pressure unit (bandwidth model).
    contention_cycles: int = 24
    contention_window: int = 64
    # Row-buffer model (opt-in).
    row_buffer: bool = False
    banks: int = 8
    row_bytes: int = 8192
    t_rp: int = 12
    t_rcd: int = 12
    t_cas: int = 12
    clock_ratio: float = 2.5
    bus_overhead: int = 30


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated system (Table 1 defaults)."""

    core: CoreConfig = field(default_factory=CoreConfig)
    itlb: TLBConfig = field(
        default_factory=lambda: TLBConfig("ITLB", entries=64, associativity=4, latency=1)
    )
    dtlb: TLBConfig = field(
        default_factory=lambda: TLBConfig("DTLB", entries=64, associativity=4, latency=1)
    )
    stlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(
            "STLB", entries=1536, associativity=12, latency=8, mshr_entries=16
        )
    )
    # Split-STLB mode (Section 6.6): when set, stlb describes the data STLB
    # and istlb the instruction STLB.
    istlb: Optional[TLBConfig] = None
    psc: PSCConfig = field(default_factory=PSCConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L1I", size_bytes=32 * 1024, associativity=8, latency=4,
            mshr_entries=8, prefetcher="fdip",
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L1D", size_bytes=32 * 1024, associativity=8, latency=5,
            mshr_entries=8, prefetcher="next_line",
        )
    )
    l2c: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L2C", size_bytes=512 * 1024, associativity=8, latency=5,
            mshr_entries=32, prefetcher="stride",
        )
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "LLC", size_bytes=2 * 1024 * 1024, associativity=16, latency=10,
            mshr_entries=64,
        )
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    itp: ITPConfig = field(default_factory=ITPConfig)
    xptp: XPTPConfig = field(default_factory=XPTPConfig)
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    stlb_policy: str = "lru"
    l2c_policy: str = "lru"
    llc_policy: str = "lru"
    # P of the probabilistic instruction-priority LRU (Figure 3); only used
    # when stlb_policy == "problru".
    problru_p: float = 0.8
    # Optional STLB prefetcher ("sequential" or "distance") — the Section 7
    # extension; None matches the paper's evaluated configurations.
    stlb_prefetcher: Optional[str] = None
    num_threads: int = 1

    def with_policies(
        self,
        stlb: Optional[str] = None,
        l2c: Optional[str] = None,
        llc: Optional[str] = None,
    ) -> "SystemConfig":
        """Return a copy with the given replacement policies substituted."""
        cfg = self
        if stlb is not None:
            cfg = replace(cfg, stlb_policy=stlb)
        if l2c is not None:
            cfg = replace(cfg, l2c_policy=l2c)
        if llc is not None:
            cfg = replace(cfg, llc_policy=llc)
        return cfg


#: Table 1 of the paper, as-is.
TABLE1 = SystemConfig()


def make_config(**overrides: object) -> SystemConfig:
    """Build a :class:`SystemConfig` starting from Table 1 with overrides."""
    return replace(TABLE1, **overrides)


def inorder_core() -> CoreConfig:
    """An in-order core preset: no out-of-order latency hiding.

    Useful as a sensitivity study: with every memory-system cycle exposed,
    translation-side policies (iTP/xPTP) matter *more* than on the default
    out-of-order model, since data page walks are no longer overlapped.
    """
    return CoreConfig(
        base_cpi=1.0,
        rob_hide_cycles=0,
        data_overlap_factor=1.0,
        store_overlap_scale=1.0,
        fdip_hide_factor=0.0,
        fetch_resteer_penalty=5,
    )


def scaled_config(scale: int = 4, **overrides: object) -> SystemConfig:
    """Table 1 with all capacity structures divided by ``scale``.

    The paper simulates 150 M instructions per experiment; a pure-Python
    model cannot, so experiments run on a proportionally shrunken machine
    against proportionally shrunken workload footprints (DESIGN.md §3).
    Capacity *ratios* — code footprint vs STLB reach, hot set vs LLC, PTE
    working set vs L2C — are preserved, which is what the replacement-policy
    comparisons exercise.  Associativities, latencies and policy parameters
    (N, M, K, Freq width) are untouched.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")

    def tlb(cfg: TLBConfig) -> TLBConfig:
        return replace(cfg, entries=max(cfg.associativity, cfg.entries // scale))

    def cache(cfg: CacheConfig) -> CacheConfig:
        min_size = cfg.line_bytes * cfg.associativity
        return replace(cfg, size_bytes=max(min_size, cfg.size_bytes // scale))

    base = SystemConfig(
        itlb=tlb(TABLE1.itlb),
        dtlb=tlb(TABLE1.dtlb),
        stlb=tlb(TABLE1.stlb),
        l1i=cache(TABLE1.l1i),
        l1d=cache(TABLE1.l1d),
        l2c=cache(TABLE1.l2c),
        llc=cache(TABLE1.llc),
        # N and M re-derived by parameter-space exploration on the scaled
        # system (the paper does the same for its setup, Section 5.1): the
        # scaled STLB has 4x fewer sets, so per-set promotion traffic is 4x
        # the paper's and the Table 1 values (N=4, M=8) over-promote data.
        itp=ITPConfig(insert_depth_n=2, data_promote_m=4),
    )
    return replace(base, **overrides)
