"""Fundamental types shared across the simulator.

Addresses are integer byte addresses.  Constants below fix the line/page
geometry used throughout the model (64-byte cache blocks, 4 KB base pages,
2 MB large pages; a 64-byte block holds eight 8-byte page-table entries).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

CACHE_LINE_BYTES = 64
CACHE_LINE_BITS = 6
PAGE_BYTES = 4096
PAGE_BITS = 12
LARGE_PAGE_BYTES = 2 * 1024 * 1024
LARGE_PAGE_BITS = 21
PTE_BYTES = 8
PTES_PER_LINE = CACHE_LINE_BYTES // PTE_BYTES


class AccessType(enum.IntEnum):
    """Whether a translation (or memory reference) is for instructions or data.

    Matches the paper's 1-bit ``Type`` field: 0 = instruction, 1 = data
    (Section 4.3, Figure 7).
    """

    INSTRUCTION = 0
    DATA = 1


class RequestType(enum.IntEnum):
    """Origin of a memory request flowing through the cache hierarchy."""

    IFETCH = 0
    LOAD = 1
    STORE = 2
    PTW = 3          # page-walk reference (PTE line)
    PREFETCH = 4
    WRITEBACK = 5


class PageSize(enum.IntEnum):
    """Supported page sizes (Section 6.5 evaluates 4 KB + 2 MB)."""

    SIZE_4K = PAGE_BYTES
    SIZE_2M = LARGE_PAGE_BYTES

    @property
    def offset_bits(self) -> int:
        return PAGE_BITS if self is PageSize.SIZE_4K else LARGE_PAGE_BITS


@dataclass(slots=True, eq=False)
class MemoryRequest:
    """A request presented to a cache level.

    ``is_pte`` marks blocks that hold page-table entries; for those,
    ``translation_type`` distinguishes instruction-PTE from data-PTE lines —
    the information xPTP's Type bit carries through the L2C MSHR (Figure 7).

    Slotted and mutable: the hierarchy is synchronous (no level holds a
    request beyond the ``access`` call it arrived in), so hot paths reuse
    one request object per source and rewrite its scalar fields instead of
    allocating a fresh request per reference.
    """

    address: int
    req_type: RequestType
    is_pte: bool = False
    translation_type: Optional[AccessType] = None
    pc: int = 0
    thread_id: int = 0
    # Set for demand requests whose address translation missed in the STLB;
    # T-DRRIP uses this to insert such blocks with distant re-reference.
    stlb_miss: bool = False

    @property
    def line_address(self) -> int:
        return self.address >> CACHE_LINE_BITS

    @property
    def is_data_pte(self) -> bool:
        return self.is_pte and self.translation_type is AccessType.DATA

    @property
    def is_instr_pte(self) -> bool:
        return self.is_pte and self.translation_type is AccessType.INSTRUCTION


class TraceRecord(NamedTuple):
    """One fetch group of a workload trace.

    A record corresponds to a contiguous run of ``num_instrs`` instructions
    fetched from the cache line containing ``pc``, optionally performing
    memory operations at the given virtual addresses.

    A ``NamedTuple`` rather than a frozen dataclass: trace generators create
    one per fetch group, and tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass ``__init__`` pays.
    """

    pc: int
    num_instrs: int = 1
    loads: Tuple[int, ...] = ()
    stores: Tuple[int, ...] = ()


@dataclass(slots=True)
class AccessResult:
    """Outcome of an access to a cache/TLB level: latency and hit flag."""

    latency: int
    hit: bool
    level: str = ""


def line_of(address: int) -> int:
    """Cache-line number of a byte address."""
    return address >> CACHE_LINE_BITS


def vpn_of(address: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    """Virtual page number of a byte address for the given page size."""
    return address >> page_size.offset_bits
