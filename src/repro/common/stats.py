"""Statistics collection.

Each hardware structure owns a stats object; the simulator aggregates them
into a flat report at the end of a run.  MPKI-style metrics are computed
against the committed-instruction counter held by :class:`SimStats`.

The categories mirror Figure 4 of the paper: data (dMPKI), instruction
(iMPKI), data-translation page-walk (dtMPKI) and instruction-translation
page-walk (itMPKI) misses.

Hot-path design: :class:`LevelStats` is a slotted class whose counters are
plain integer fields plus two *pre-seeded* category dicts (``cat_accesses``
/ ``cat_misses`` always hold all four category keys), so the per-access
paths in the cache/TLB code can increment them directly —
``stats.accesses += 1`` / ``stats.cat_accesses[cat] += 1`` — without a
method call or a ``dict.get`` default dance.  The string-keyed
:meth:`SimStats.bump` counter dict is reserved for cold counters (page-walk
events, prefetch fills, adaptive-controller windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .types import AccessType, MemoryRequest, RequestType

#: The paper's four MPKI categories (Figure 4).
CATEGORIES = ("d", "i", "dt", "it")


def categorize(req: MemoryRequest) -> str:
    """Bucket a request into the paper's four MPKI categories."""
    if req.is_pte:
        return "dt" if req.translation_type is AccessType.DATA else "it"
    if req.req_type is RequestType.IFETCH:
        return "i"
    return "d"


class LevelStats:
    """Hit/miss/latency counters for one cache or TLB level.

    All counters are mutable in place and survive as the same objects
    across :meth:`reset`, so hot paths (and tests) may hold direct
    references to the seeded category dicts.
    """

    __slots__ = (
        "name",
        "accesses",
        "hits",
        "misses",
        "miss_latency_sum",
        "cat_accesses",
        "cat_misses",
        "evictions",
        "writebacks",
        "prefetch_fills",
        "prefetch_hits",
        "prefetch_requests",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.miss_latency_sum = 0
        # Seeded with every category so hot paths can `[cat] += 1` directly.
        self.cat_accesses: Dict[str, int] = dict.fromkeys(CATEGORIES, 0)
        self.cat_misses: Dict[str, int] = dict.fromkeys(CATEGORIES, 0)
        self.evictions = 0
        self.writebacks = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0
        self.prefetch_requests = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LevelStats({self.name!r}, accesses={self.accesses}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    # Compatibility views: the pre-optimization dataclass exposed dicts that
    # contained only the categories actually observed.
    @property
    def category_accesses(self) -> Dict[str, int]:
        return {k: v for k, v in self.cat_accesses.items() if v}

    @property
    def category_misses(self) -> Dict[str, int]:
        return {k: v for k, v in self.cat_misses.items() if v}

    def record_access(self, category: str, hit: bool, miss_latency: int = 0) -> None:
        """Cold-path convenience; hot paths increment the fields directly."""
        self.accesses += 1
        self.cat_accesses[category] += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.miss_latency_sum += miss_latency
            self.cat_misses[category] += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def avg_miss_latency(self) -> float:
        return self.miss_latency_sum / self.misses if self.misses else 0.0

    def mpki(self, instructions: int) -> float:
        return 1000.0 * self.misses / instructions if instructions else 0.0

    def category_mpki(self, category: str, instructions: int) -> float:
        if not instructions:
            return 0.0
        return 1000.0 * self.cat_misses.get(category, 0) / instructions

    def reset(self) -> None:
        """Zero every counter *in place*.

        The category dicts are cleared by rewriting their values rather than
        rebinding, so code holding a reference to them (hot-path aliases,
        tests) can never observe stale pre-warmup totals.
        """
        self.accesses = self.hits = self.misses = 0
        self.miss_latency_sum = 0
        for key in self.cat_accesses:
            self.cat_accesses[key] = 0
        for key in self.cat_misses:
            self.cat_misses[key] = 0
        self.evictions = self.writebacks = 0
        self.prefetch_fills = self.prefetch_hits = self.prefetch_requests = 0


@dataclass
class SimStats:
    """Whole-simulation statistics: instruction/cycle counts plus per-level stats."""

    instructions: int = 0
    cycles: float = 0.0
    levels: Dict[str, LevelStats] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    per_thread_instructions: Dict[int, int] = field(default_factory=dict)
    #: Hot integer counter: front-end stall cycles accumulated per record by
    #: the core (was a string-keyed ``bump`` per record).  Reported as
    #: ``core.front_stall_cycles``.
    front_stall_cycles: int = 0

    def level(self, name: str) -> LevelStats:
        if name not in self.levels:
            self.levels[name] = LevelStats(name)
        return self.levels[name]

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki(self, level: str) -> float:
        return self.level(level).mpki(self.instructions)

    def reset(self) -> None:
        """Reset all counters (used at the warmup/measurement boundary).

        Dicts are cleared in place — not rebound — so references held by
        callers stay valid across the boundary.
        """
        self.instructions = 0
        self.cycles = 0.0
        self.front_stall_cycles = 0
        self.counters.clear()
        self.per_thread_instructions.clear()
        for lvl in self.levels.values():
            lvl.reset()

    def report(self) -> Dict[str, float]:
        """Flatten everything into a single metric dictionary."""
        out: Dict[str, float] = {
            "instructions": float(self.instructions),
            "cycles": float(self.cycles),
            "ipc": self.ipc,
        }
        for name, lvl in self.levels.items():
            key = name.lower()
            out[f"{key}.accesses"] = float(lvl.accesses)
            out[f"{key}.misses"] = float(lvl.misses)
            out[f"{key}.mpki"] = lvl.mpki(self.instructions)
            out[f"{key}.hit_rate"] = lvl.hit_rate
            out[f"{key}.avg_miss_latency"] = lvl.avg_miss_latency
            for cat in CATEGORIES:
                out[f"{key}.{cat}mpki"] = lvl.category_mpki(cat, self.instructions)
        if self.instructions:
            # Matches the pre-optimization behaviour where the key appeared
            # once the first record had been executed.
            out["core.front_stall_cycles"] = float(self.front_stall_cycles)
        for cname, value in self.counters.items():
            out[cname] = float(value)
        return out
