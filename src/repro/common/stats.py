"""Statistics collection.

Each hardware structure owns a stats object; the simulator aggregates them
into a flat report at the end of a run.  MPKI-style metrics are computed
against the committed-instruction counter held by :class:`SimStats`.

The categories mirror Figure 4 of the paper: data (dMPKI), instruction
(iMPKI), data-translation page-walk (dtMPKI) and instruction-translation
page-walk (itMPKI) misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .types import AccessType, MemoryRequest, RequestType


def categorize(req: MemoryRequest) -> str:
    """Bucket a request into the paper's four MPKI categories."""
    if req.is_pte:
        return "dt" if req.translation_type == AccessType.DATA else "it"
    if req.req_type == RequestType.IFETCH:
        return "i"
    return "d"


@dataclass
class LevelStats:
    """Hit/miss/latency counters for one cache or TLB level."""

    name: str
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    miss_latency_sum: int = 0
    category_accesses: Dict[str, int] = field(default_factory=dict)
    category_misses: Dict[str, int] = field(default_factory=dict)
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0
    prefetch_requests: int = 0

    def record_access(self, category: str, hit: bool, miss_latency: int = 0) -> None:
        self.accesses += 1
        self.category_accesses[category] = self.category_accesses.get(category, 0) + 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.miss_latency_sum += miss_latency
            self.category_misses[category] = self.category_misses.get(category, 0) + 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def avg_miss_latency(self) -> float:
        return self.miss_latency_sum / self.misses if self.misses else 0.0

    def mpki(self, instructions: int) -> float:
        return 1000.0 * self.misses / instructions if instructions else 0.0

    def category_mpki(self, category: str, instructions: int) -> float:
        if not instructions:
            return 0.0
        return 1000.0 * self.category_misses.get(category, 0) / instructions

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = 0
        self.miss_latency_sum = 0
        self.category_accesses = {}
        self.category_misses = {}
        self.evictions = self.writebacks = 0
        self.prefetch_fills = self.prefetch_hits = self.prefetch_requests = 0


@dataclass
class SimStats:
    """Whole-simulation statistics: instruction/cycle counts plus per-level stats."""

    instructions: int = 0
    cycles: float = 0.0
    levels: Dict[str, LevelStats] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    per_thread_instructions: Dict[int, int] = field(default_factory=dict)

    def level(self, name: str) -> LevelStats:
        if name not in self.levels:
            self.levels[name] = LevelStats(name)
        return self.levels[name]

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki(self, level: str) -> float:
        return self.level(level).mpki(self.instructions)

    def reset(self) -> None:
        """Reset all counters (used at the warmup/measurement boundary)."""
        self.instructions = 0
        self.cycles = 0.0
        self.counters = {}
        self.per_thread_instructions = {}
        for lvl in self.levels.values():
            lvl.reset()

    def report(self) -> Dict[str, float]:
        """Flatten everything into a single metric dictionary."""
        out: Dict[str, float] = {
            "instructions": float(self.instructions),
            "cycles": float(self.cycles),
            "ipc": self.ipc,
        }
        for name, lvl in self.levels.items():
            key = name.lower()
            out[f"{key}.accesses"] = float(lvl.accesses)
            out[f"{key}.misses"] = float(lvl.misses)
            out[f"{key}.mpki"] = lvl.mpki(self.instructions)
            out[f"{key}.hit_rate"] = lvl.hit_rate
            out[f"{key}.avg_miss_latency"] = lvl.avg_miss_latency
            for cat in ("d", "i", "dt", "it"):
                out[f"{key}.{cat}mpki"] = lvl.category_mpki(cat, self.instructions)
        for cname, value in self.counters.items():
            out[cname] = float(value)
        return out
