"""Shared primitives: types, configuration, statistics, recency stack, energy."""

from .energy import EnergyModel, EnergyReport, energy_report
from .params import (
    AdaptiveConfig,
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    ITPConfig,
    PSCConfig,
    SystemConfig,
    TABLE1,
    TLBConfig,
    XPTPConfig,
    inorder_core,
    make_config,
)
from .recency import NaiveRecencyStack, RecencyStack
from .stats import LevelStats, SimStats, categorize
from .types import (
    AccessResult,
    AccessType,
    CACHE_LINE_BYTES,
    MemoryRequest,
    PAGE_BYTES,
    PageSize,
    RequestType,
    TraceRecord,
    line_of,
    vpn_of,
)

__all__ = [
    "AccessResult",
    "EnergyModel",
    "EnergyReport",
    "energy_report",
    "AccessType",
    "AdaptiveConfig",
    "CACHE_LINE_BYTES",
    "CacheConfig",
    "CoreConfig",
    "DRAMConfig",
    "ITPConfig",
    "LevelStats",
    "MemoryRequest",
    "PAGE_BYTES",
    "PSCConfig",
    "PageSize",
    "NaiveRecencyStack",
    "RecencyStack",
    "RequestType",
    "SimStats",
    "SystemConfig",
    "TABLE1",
    "TLBConfig",
    "TraceRecord",
    "XPTPConfig",
    "categorize",
    "inorder_core",
    "line_of",
    "make_config",
    "vpn_of",
]
