"""Runtime invariant checking — the ``REPRO_CHECK=1`` debug mode.

PR 2 bought its ~2x throughput with hand-maintained invariants: the O(1)
:class:`~repro.common.recency.RecencyStack` must stay order-identical to the
naive executable specification, the synchronous hierarchy must drain every
MSHR file before a quiescent point, and the Figure 7 ``Type`` bit must
survive MSHR merges.  ``repro.lint`` enforces the *structural* half of those
invariants statically; this module enforces the *behavioural* half at
runtime, differentially, when the ``REPRO_CHECK`` environment variable is
truthy:

* every recency stack built by an LRU-family policy is replaced by
  :class:`CheckedRecencyStack`, which drives the production stack and the
  naive reference model in lockstep and compares their MRU→LRU orders after
  every mutation;
* every MSHR file is replaced by :class:`repro.cache.mshr.CheckedMSHRFile`,
  which keeps a shadow copy of each entry's PTE ``Type`` bits and verifies
  the merge strengthening rule (once data-PTE, always data-PTE) and that
  released entries still carry the bits they were allocated with;
* :meth:`repro.core.system.System.reset_stats` asserts that no MSHR file
  holds a leaked entry at the warmup/measurement boundary (the model is
  synchronous: every ``access`` call releases what it allocates).

The default (``REPRO_CHECK`` unset or ``0``) changes nothing: the factories
return the production classes, so the bench gate and the golden
bit-identity guarantees are untouched.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, List, Type, Union

from .recency import NaiveRecencyStack, RecencyStack

if TYPE_CHECKING:  # pragma: no cover
    from ..core.system import System

#: Environment variable enabling the runtime checks.
ENV_VAR = "REPRO_CHECK"

_FALSEY = ("", "0", "false", "no", "off")


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulator was broken."""


def enabled() -> bool:
    """True iff ``REPRO_CHECK`` is set to a truthy value."""
    return os.environ.get(ENV_VAR, "0").strip().lower() not in _FALSEY


# --------------------------------------------------------------------------- #
# Differential recency stack
# --------------------------------------------------------------------------- #

StackLike = Union[RecencyStack, NaiveRecencyStack, "CheckedRecencyStack"]


class CheckedRecencyStack:
    """Drives :class:`RecencyStack` and :class:`NaiveRecencyStack` in lockstep.

    Reads are served by the production stack; every mutation is applied to
    both implementations and the full MRU→LRU orders are compared, so any
    divergence is caught at the exact operation that introduced it.
    """

    __slots__ = ("_fast", "_ref")

    def __init__(self) -> None:
        self._fast = RecencyStack()
        self._ref = NaiveRecencyStack()

    # -- verification ---------------------------------------------------- #

    def _verify(self, op: str) -> None:
        fast = self._fast.order()
        ref = self._ref.order()
        if fast != ref:
            raise InvariantViolation(
                f"recency stack diverged after {op}: fast={fast} reference={ref}"
            )

    # -- read API (delegates to the production stack) --------------------- #

    def __len__(self) -> int:
        return len(self._fast)

    def __contains__(self, way: int) -> bool:
        return way in self._fast

    def __iter__(self) -> Iterator[int]:
        return iter(self._fast)

    def order(self) -> List[int]:
        return self._fast.order()

    @property
    def mru_way(self) -> int:
        return self._fast.mru_way

    @property
    def lru_way(self) -> int:
        return self._fast.lru_way

    def depth_from_mru(self, way: int) -> int:
        return self._fast.depth_from_mru(way)

    def height_from_lru(self, way: int) -> int:
        return self._fast.height_from_lru(way)

    def ways_from_lru(self) -> Iterator[int]:
        return self._fast.ways_from_lru()

    # -- mutating API (applied to both, then verified) -------------------- #

    def discard(self, way: int) -> None:
        self._fast.discard(way)
        self._ref.discard(way)
        self._verify(f"discard({way})")

    def remove(self, way: int) -> None:
        self._fast.remove(way)
        self._ref.remove(way)
        self._verify(f"remove({way})")

    def touch(self, way: int) -> None:
        self._fast.touch(way)
        self._ref.touch(way)
        self._verify(f"touch({way})")

    def touch_many(self, ways: Iterable[int]) -> None:
        # Deliberately per-touch (not delegated to the bulk methods): each
        # individual promotion is applied to both stacks and verified, so a
        # divergence names the exact element that introduced it.
        for way in ways:
            self.touch(way)

    def place_at_depth(self, way: int, depth: int) -> None:
        self._fast.place_at_depth(way, depth)
        self._ref.place_at_depth(way, depth)
        self._verify(f"place_at_depth({way}, {depth})")

    def place_above_lru(self, way: int, height: int) -> None:
        self._fast.place_above_lru(way, height)
        self._ref.place_above_lru(way, height)
        self._verify(f"place_above_lru({way}, {height})")


def stack_factory(stack_cls: Type[StackLike]) -> Callable[[], StackLike]:
    """Factory for per-set recency stacks, honouring ``REPRO_CHECK``.

    Only the production :class:`RecencyStack` is wrapped: when a test has
    already substituted the naive reference model (the golden bit-identity
    test does), there is nothing to check it against.
    """
    if enabled() and stack_cls is RecencyStack:
        return CheckedRecencyStack
    return stack_cls


# --------------------------------------------------------------------------- #
# Quiescence checks
# --------------------------------------------------------------------------- #


def check_no_leaked_mshr_entries(system: "System") -> None:
    """Assert every MSHR file is empty at a quiescent point.

    The hierarchy is synchronous: each ``access``/``translate`` call releases
    the entries it allocates before returning, so a non-empty file at the
    warmup/measurement boundary means an allocate/release pairing bug.
    """
    files = [
        (cache.config.name, cache.mshrs) for cache in system.caches
    ] + [("STLB", system.mmu.stlb_mshrs)]
    for name, mshrs in files:
        # outstanding() counts live and structurally retired entries: a
        # retired entry still awaits its release, so one left over at a
        # quiescent point is just as much a leak as a live one.
        count = mshrs.outstanding()
        if count:
            raise InvariantViolation(
                f"{name} MSHR file holds {count} leaked entr"
                f"{'y' if count == 1 else 'ies'} at a quiescent point"
            )
