"""Post-hoc energy accounting.

The paper motivates TLB work partly by the energy cost of page walks
(Section 1 cites performance *and energy* overheads of STLB misses).  This
module estimates dynamic energy from a finished simulation's statistics:
each structure access is charged a fixed per-access energy (CACTI-class
ballpark numbers for a ~22 nm node, configurable), so policies can be
compared on pJ-per-instruction as well as IPC.

This is bookkeeping over :class:`SimStats` — it adds no simulation cost
and can be applied to any :class:`SimulationResult` after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .stats import SimStats

#: Default per-access dynamic energy in picojoules.  Ballpark figures in the
#: spirit of CACTI estimates for the Table 1 geometries; absolute values are
#: not calibrated — only relative comparisons between policies are meaningful.
DEFAULT_ENERGY_PJ: Dict[str, float] = {
    "ITLB": 0.6,
    "DTLB": 0.6,
    "STLB": 2.5,
    "L1I": 5.0,
    "L1D": 5.0,
    "L2C": 18.0,
    "LLC": 45.0,
    "DRAM": 1600.0,
}

#: Energy of one page-structure-cache probe.
PSC_ACCESS_PJ = 0.4


@dataclass
class EnergyReport:
    """Dynamic-energy estimate for one simulation."""

    total_pj: float
    per_structure_pj: Dict[str, float]
    instructions: int
    walk_pj: float

    @property
    def pj_per_instruction(self) -> float:
        return self.total_pj / self.instructions if self.instructions else 0.0

    @property
    def walk_share(self) -> float:
        """Fraction of dynamic energy spent on address translation."""
        return self.walk_pj / self.total_pj if self.total_pj else 0.0


@dataclass
class EnergyModel:
    """Configurable per-access energy charge table."""

    energy_pj: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_ENERGY_PJ))
    psc_pj: float = PSC_ACCESS_PJ

    def report(self, stats: SimStats) -> EnergyReport:
        per_structure: Dict[str, float] = {}
        for name, level in stats.levels.items():
            charge = self.energy_pj.get(name)
            if charge is None:
                continue
            accesses = level.accesses + level.prefetch_requests + level.prefetch_fills
            per_structure[name] = accesses * charge
        walk_refs = (
            stats.counters.get("ptw.data_walk_refs", 0)
            + stats.counters.get("ptw.instr_walk_refs", 0)
            + stats.counters.get("ptw.pf_data_walk_refs", 0)
            + stats.counters.get("ptw.pf_instr_walk_refs", 0)
        )
        walks = (
            stats.counters.get("ptw.data_walks", 0)
            + stats.counters.get("ptw.instr_walks", 0)
            + stats.counters.get("ptw.pf_data_walks", 0)
            + stats.counters.get("ptw.pf_instr_walks", 0)
        )
        psc_energy = walks * self.psc_pj
        per_structure["PSC"] = psc_energy
        total = sum(per_structure.values())
        # Translation energy: TLB lookups, PSC probes and the walk's share of
        # cache/DRAM traffic (approximated by its L2C-access fraction).
        l2c = stats.levels.get("L2C")
        walk_cache_pj = 0.0
        if l2c is not None and l2c.accesses:
            fraction = walk_refs / l2c.accesses
            walk_cache_pj = fraction * (
                per_structure.get("L2C", 0.0)
                + per_structure.get("LLC", 0.0)
                + per_structure.get("DRAM", 0.0)
            )
        walk_pj = (
            per_structure.get("ITLB", 0.0)
            + per_structure.get("DTLB", 0.0)
            + per_structure.get("STLB", 0.0)
            + psc_energy
            + walk_cache_pj
        )
        return EnergyReport(
            total_pj=total,
            per_structure_pj=per_structure,
            instructions=stats.instructions,
            walk_pj=walk_pj,
        )


def energy_report(stats: SimStats, model: EnergyModel = None) -> EnergyReport:
    """Convenience wrapper: estimate energy for a finished simulation."""
    return (model or EnergyModel()).report(stats)
