"""Generic name → object registry.

One registry base backs every lookup-by-name surface of the simulator:
cache replacement policies (:mod:`repro.replacement.registry`), TLB
replacement policies (:mod:`repro.tlb.policies.registry`) and the Table 2
policy suites (:mod:`repro.topology.suites`).  Before the topology layer
each of those rolled its own dict + error message; unifying them means one
registration API for extensions (``examples/custom_policy.py`` registers a
brand-new TLB policy this way) and one "unknown name" message format whose
candidate list always comes from the registry itself — a single source of
truth.

Entries are arbitrary objects: policy registries store factory callables of
signature ``factory(num_sets, associativity, **context)``, the suite
registry stores :class:`~repro.topology.suites.PolicySuite` instances.
Insertion order is preserved (Table 2 ordering is meaningful).
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Tuple, TypeVar

T = TypeVar("T")


class RegistryError(ValueError):
    """Lookup or registration failed; the message lists known names."""


class Registry(Generic[T]):
    """Ordered name → entry mapping with uniform error reporting."""

    def __init__(self, kind: str) -> None:
        #: Human-readable entry kind, used in error messages
        #: (``"cache policy"``, ``"TLB policy"``, ``"policy suite"``).
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, entry: T, *, overwrite: bool = False) -> T:
        """Add ``entry`` under ``name``; returns the entry for chaining."""
        if not name:
            raise RegistryError(f"{self.kind} name must be non-empty")
        if name in self._entries and not overwrite:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> T:
        """Look up ``name``; unknown names raise listing every known name."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self._entries)}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names in insertion order."""
        return tuple(self._entries)

    def items(self) -> Tuple[Tuple[str, T], ...]:
        return tuple(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
