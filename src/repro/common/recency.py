"""Recency stack primitive.

Both the paper's policies are defined in terms of an LRU recency stack with
insertions/promotions at arbitrary depths (iTP: ``MRUpos - N`` and
``LRUpos + M``; xPTP: victim selection by distance from ``LRUpos``).  This
module provides that stack once, so every stack-based policy (LRU, iTP,
xPTP, PTP) shares the same, well-tested semantics.

Position conventions:

* *depth from MRU*: 0 is the most recently used slot.
* *height from LRU*: 0 is the least recently used slot (the eviction end).
"""

from __future__ import annotations

from typing import Iterator, List


class RecencyStack:
    """Ordered stack of way indices for a single set, MRU first."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: List[int] = []

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, way: int) -> bool:
        return way in self._order

    def __iter__(self) -> Iterator[int]:
        """Iterate ways from MRU to LRU."""
        return iter(self._order)

    def order(self) -> List[int]:
        """Copy of the MRU→LRU ordering (for tests and introspection)."""
        return list(self._order)

    @property
    def mru_way(self) -> int:
        if not self._order:
            raise IndexError("empty recency stack")
        return self._order[0]

    @property
    def lru_way(self) -> int:
        if not self._order:
            raise IndexError("empty recency stack")
        return self._order[-1]

    def depth_from_mru(self, way: int) -> int:
        return self._order.index(way)

    def height_from_lru(self, way: int) -> int:
        return len(self._order) - 1 - self._order.index(way)

    def remove(self, way: int) -> None:
        self._order.remove(way)

    def touch(self, way: int) -> None:
        """Promote ``way`` to the MRU position (classic LRU update)."""
        self._order.remove(way)
        self._order.insert(0, way)

    def place_at_depth(self, way: int, depth: int) -> None:
        """Insert/move ``way`` to ``depth`` positions below MRU.

        Depth is clamped to the stack size, so ``depth >= len`` inserts at
        the LRU end.  All entries previously at or below that depth move one
        position toward LRU — the paper's step (4) stack update.
        """
        if way in self._order:
            self._order.remove(way)
        depth = max(0, min(depth, len(self._order)))
        self._order.insert(depth, way)

    def place_above_lru(self, way: int, height: int) -> None:
        """Insert/move ``way`` to ``height`` positions above the LRU end.

        ``height=0`` is the LRU position itself (next eviction candidate);
        this implements iTP's ``LRUpos + M`` data promotion.
        """
        if way in self._order:
            self._order.remove(way)
        index = len(self._order) - max(0, min(height, len(self._order)))
        self._order.insert(index, way)

    def ways_from_lru(self) -> Iterator[int]:
        """Iterate ways from LRU to MRU (victim-search order)."""
        return reversed(self._order)
