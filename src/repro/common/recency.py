"""Recency stack primitive.

Both the paper's policies are defined in terms of an LRU recency stack with
insertions/promotions at arbitrary depths (iTP: ``MRUpos - N`` and
``LRUpos + M``; xPTP: victim selection by distance from ``LRUpos``).  This
module provides that stack once, so every stack-based policy (LRU, iTP,
xPTP, PTP) shares the same, well-tested semantics.

Position conventions:

* *depth from MRU*: 0 is the most recently used slot.
* *height from LRU*: 0 is the least recently used slot (the eviction end).

Two implementations share the same API:

* :class:`RecencyStack` — the production structure: an intrusive doubly
  linked list over way indices.  ``touch``/``remove``/``mru_way``/
  ``lru_way`` are O(1); ``place_at_depth``/``place_above_lru`` are O(d) in
  the (small, constant) target depth rather than O(associativity) list
  scans, and a touch of the way that is already MRU — the common case on
  skewed workloads — is a single comparison.
* :class:`NaiveRecencyStack` — the original list-based model, kept as the
  executable specification.  The property tests drive both with random op
  interleavings and assert order-identical behaviour, and the golden
  bit-identity test runs a whole simulation cell on each.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Protocol, Sequence


class RecencyStack:
    """Ordered stack of way indices for a single set, MRU first.

    Implemented as a doubly linked list threaded through two dicts
    (``way -> neighbour``); ``None`` terminates both ends.  Membership,
    promotion to MRU, removal and end queries are O(1).
    """

    __slots__ = ("_prev", "_next", "_head", "_tail")

    def __init__(self) -> None:
        self._prev = {}  # way -> neighbour toward MRU (None at the head)
        self._next = {}  # way -> neighbour toward LRU (None at the tail)
        self._head = None  # MRU way
        self._tail = None  # LRU way

    def __len__(self) -> int:
        return len(self._next)

    def __contains__(self, way: int) -> bool:
        return way in self._next

    def __iter__(self) -> Iterator[int]:
        """Iterate ways from MRU to LRU."""
        nxt = self._next
        node = self._head
        while node is not None:
            yield node
            node = nxt[node]

    def order(self) -> List[int]:
        """Copy of the MRU→LRU ordering (for tests and introspection)."""
        return list(self)

    @property
    def mru_way(self) -> int:
        if self._head is None:
            raise IndexError("empty recency stack")
        return self._head

    @property
    def lru_way(self) -> int:
        if self._tail is None:
            raise IndexError("empty recency stack")
        return self._tail

    # ------------------------------------------------------------------ #
    # Link management
    # ------------------------------------------------------------------ #

    def _unlink(self, way: int) -> None:
        prev, nxt = self._prev, self._next
        p = prev.pop(way)
        n = nxt.pop(way)
        if p is None:
            self._head = n
        else:
            nxt[p] = n
        if n is None:
            self._tail = p
        else:
            prev[n] = p

    def _link_head(self, way: int) -> None:
        h = self._head
        self._prev[way] = None
        self._next[way] = h
        if h is None:
            self._tail = way
        else:
            self._prev[h] = way
        self._head = way

    def _link_tail(self, way: int) -> None:
        t = self._tail
        self._next[way] = None
        self._prev[way] = t
        if t is None:
            self._head = way
        else:
            self._next[t] = way
        self._tail = way

    def _link_before(self, way: int, ref: int) -> None:
        """Insert ``way`` immediately MRU-side of ``ref``."""
        p = self._prev[ref]
        self._prev[way] = p
        self._next[way] = ref
        self._prev[ref] = way
        if p is None:
            self._head = way
        else:
            self._next[p] = way

    # ------------------------------------------------------------------ #
    # Public operations
    # ------------------------------------------------------------------ #

    def depth_from_mru(self, way: int) -> int:
        if way not in self._next:
            raise ValueError(f"way {way} not in recency stack")
        nxt = self._next
        node = self._head
        depth = 0
        while node != way:
            node = nxt[node]
            depth += 1
        return depth

    def height_from_lru(self, way: int) -> int:
        if way not in self._next:
            raise ValueError(f"way {way} not in recency stack")
        prev = self._prev
        node = self._tail
        height = 0
        while node != way:
            node = prev[node]
            height += 1
        return height

    def discard(self, way: int) -> None:
        """Remove ``way`` if present (eviction cleanup)."""
        prev, nxt = self._prev, self._next
        if way not in nxt:
            return
        p = prev.pop(way)
        n = nxt.pop(way)
        if p is None:
            self._head = n
        else:
            nxt[p] = n
        if n is None:
            self._tail = p
        else:
            prev[n] = p

    def remove(self, way: int) -> None:
        # _unlink inlined, with the membership check folded in.
        prev, nxt = self._prev, self._next
        if way not in nxt:
            raise ValueError(f"way {way} not in recency stack")
        p = prev.pop(way)
        n = nxt.pop(way)
        if p is None:
            self._head = n
        else:
            nxt[p] = n
        if n is None:
            self._tail = p
        else:
            prev[n] = p

    def touch(self, way: int) -> None:
        """Promote ``way`` to the MRU position (classic LRU update)."""
        h = self._head
        if way == h:
            return
        # _unlink + _link_head inlined.  ``way != head`` implies its prev
        # neighbour exists, and the stack stays non-empty after the unlink.
        prev, nxt = self._prev, self._next
        if way not in nxt:
            raise ValueError(f"way {way} not in recency stack")
        p = prev.pop(way)
        n = nxt.pop(way)
        nxt[p] = n
        if n is None:
            self._tail = p
        else:
            prev[n] = p
        prev[way] = None
        nxt[way] = h
        prev[h] = way
        self._head = way

    def touch_many(self, ways: Iterable[int]) -> None:
        """Promote each way in ``ways`` to MRU, in order (bulk LRU update).

        Semantically identical to calling :meth:`touch` per way; exists so
        the batched engine can drain a deferred touch buffer without a
        method lookup per element.
        """
        touch = self.touch
        for way in ways:
            touch(way)

    def place_at_depth(self, way: int, depth: int) -> None:
        """Insert/move ``way`` to ``depth`` positions below MRU.

        Depth is clamped to the stack size, so ``depth >= len`` inserts at
        the LRU end.  All entries previously at or below that depth move one
        position toward LRU — the paper's step (4) stack update.
        """
        nxt = self._next
        if way in nxt:
            self._unlink(way)
        if depth <= 0:
            # _link_head inlined: the on-fill MRU insert is the hot case.
            prev = self._prev
            h = self._head
            prev[way] = None
            nxt[way] = h
            if h is None:
                self._tail = way
            else:
                prev[h] = way
            self._head = way
            return
        if depth >= len(nxt):
            self._link_tail(way)
            return
        ref = self._head
        for _ in range(depth):
            ref = nxt[ref]
        self._link_before(way, ref)

    def place_above_lru(self, way: int, height: int) -> None:
        """Insert/move ``way`` to ``height`` positions above the LRU end.

        ``height=0`` is the LRU position itself (next eviction candidate);
        this implements iTP's ``LRUpos + M`` data promotion.
        """
        if way in self._next:
            self._unlink(way)
        size = len(self._next)
        if height <= 0:
            self._link_tail(way)
            return
        if height >= size:
            self._link_head(way)
            return
        prev = self._prev
        ref = self._tail
        for _ in range(height - 1):
            ref = prev[ref]
        self._link_before(way, ref)

    def ways_from_lru(self) -> Iterator[int]:
        """Iterate ways from LRU to MRU (victim-search order)."""
        prev = self._prev
        node = self._tail
        while node is not None:
            yield node
            node = prev[node]


class NaiveRecencyStack:
    """Reference list-based recency stack (the original implementation).

    O(associativity) per operation; kept as the executable specification
    the O(1) :class:`RecencyStack` is property-tested against, and as the
    slow path of the golden bit-identity test.
    """

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: List[int] = []

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, way: int) -> bool:
        return way in self._order

    def __iter__(self) -> Iterator[int]:
        """Iterate ways from MRU to LRU."""
        return iter(self._order)

    def order(self) -> List[int]:
        """Copy of the MRU→LRU ordering (for tests and introspection)."""
        return list(self._order)

    @property
    def mru_way(self) -> int:
        if not self._order:
            raise IndexError("empty recency stack")
        return self._order[0]

    @property
    def lru_way(self) -> int:
        if not self._order:
            raise IndexError("empty recency stack")
        return self._order[-1]

    def depth_from_mru(self, way: int) -> int:
        return self._order.index(way)

    def height_from_lru(self, way: int) -> int:
        return len(self._order) - 1 - self._order.index(way)

    def discard(self, way: int) -> None:
        """Remove ``way`` if present (eviction cleanup)."""
        if way in self._order:
            self._order.remove(way)

    def remove(self, way: int) -> None:
        self._order.remove(way)

    def touch(self, way: int) -> None:
        """Promote ``way`` to the MRU position (classic LRU update)."""
        self._order.remove(way)
        self._order.insert(0, way)

    def touch_many(self, ways: Iterable[int]) -> None:
        """Promote each way in ``ways`` to MRU, in order (bulk LRU update)."""
        touch = self.touch
        for way in ways:
            touch(way)

    def place_at_depth(self, way: int, depth: int) -> None:
        """Insert/move ``way`` to ``depth`` positions below MRU."""
        if way in self._order:
            self._order.remove(way)
        depth = max(0, min(depth, len(self._order)))
        self._order.insert(depth, way)

    def place_above_lru(self, way: int, height: int) -> None:
        """Insert/move ``way`` to ``height`` positions above the LRU end."""
        if way in self._order:
            self._order.remove(way)
        index = len(self._order) - max(0, min(height, len(self._order)))
        self._order.insert(index, way)

    def ways_from_lru(self) -> Iterator[int]:
        """Iterate ways from LRU to MRU (victim-search order)."""
        return reversed(self._order)


class SupportsTouch(Protocol):
    """Anything with a recency ``touch`` — all three stack implementations."""

    def touch(self, way: int) -> None: ...  # pragma: no cover


def bulk_touch(
    stacks: Sequence[SupportsTouch],
    set_indices: Sequence[int],
    ways: Sequence[int],
) -> None:
    """Apply one deferred ``stacks[s].touch(w)`` per ``(s, w)`` pair, in order.

    The batched engine buffers fast-path recency bumps as parallel
    set-index/way lists and drains them here; order matters (touches are
    MRU promotions), and going through ``.touch`` keeps the bulk path
    transparently verified under ``REPRO_CHECK=1``.
    """
    for s, w in zip(set_indices, ways):
        stacks[s].touch(w)
