"""Declarative component-graph specifications.

A :class:`TopologySpec` describes the simulated machine as a graph of typed
nodes — caches, TLBs, page-table walkers, cores and a DRAM sink — joined by
two kinds of edges:

* ``next_level`` — where a cache forwards misses (another cache or DRAM),
  and where a walker issues its PTE reads (a cache);
* core *links* — which structures a core's front end, load/store path and
  MMU use (``l1i``, ``l1d``, ``itlb``, ``dtlb``, ``stlb``, optional
  ``istlb``, ``walker``).

Sharing is expressed by reference: two cores whose ``l2c`` chains point at
the same LLC node share that LLC; two cores linking the same ``l2c`` node
share the L2C itself (the ``shared-l2`` preset).  Nothing is wired by hand
anywhere else — :class:`repro.core.system.System`,
:class:`repro.core.multicore.MulticoreSystem` and every experiment driver
construct machines by building one of these specs (usually via
:mod:`repro.topology.presets`) and handing it to
:func:`repro.topology.builder.build`.

Specs are frozen, serializable (``to_dict``/``from_dict``) and carry a
stable :meth:`~TopologySpec.content_hash` used by the experiment result
cache: two jobs with identical :class:`SystemConfig` but different
topologies can never collide, because the hash covers every node and edge.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..common.params import CacheConfig, DRAMConfig, PSCConfig, TLBConfig

#: Node kinds and the config dataclass each carries (``core`` nodes carry
#: no config of their own — their behaviour comes from ``SystemConfig``).
KIND_CACHE = "cache"
KIND_TLB = "tlb"
KIND_DRAM = "dram"
KIND_WALKER = "walker"
KIND_CORE = "core"

CONFIG_TYPES = {
    KIND_CACHE: CacheConfig,
    KIND_TLB: TLBConfig,
    KIND_DRAM: DRAMConfig,
    KIND_WALKER: PSCConfig,
}

#: Links every core node must provide (``istlb`` is the optional seventh).
REQUIRED_CORE_LINKS = ("l1i", "l1d", "itlb", "dtlb", "stlb", "walker")
OPTIONAL_CORE_LINKS = ("istlb",)

NodeConfig = Union[CacheConfig, TLBConfig, DRAMConfig, PSCConfig, None]


class TopologyError(ValueError):
    """A topology spec is malformed (bad edge, cycle, missing node, ...)."""


@dataclass(frozen=True)
class NodeSpec:
    """One component of the machine graph.

    ``policy`` and ``prefetcher`` name registry entries
    (:data:`repro.replacement.registry.CACHE_POLICIES`,
    :data:`repro.tlb.policies.registry.TLB_POLICIES`,
    :func:`repro.cache.prefetch.make_prefetcher`); a ``None`` prefetcher
    falls back to the one named in the node's :class:`CacheConfig`.
    ``stats_name`` is the :class:`LevelStats` bucket the structure reports
    into — distinct nodes may share a bucket (both halves of a split STLB
    report as ``STLB``; per-core TLBs of a multicore aggregate likewise).
    ``links`` is only used by ``core`` nodes (role → node name).
    """

    name: str
    kind: str
    config: NodeConfig = None
    policy: Optional[str] = None
    prefetcher: Optional[str] = None
    next_level: Optional[str] = None
    stats_name: Optional[str] = None
    links: Tuple[Tuple[str, str], ...] = ()

    def link(self, role: str) -> Optional[str]:
        """Target node name for a core link role, or ``None``."""
        for key, value in self.links:
            if key == role:
                return value
        return None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.config is not None:
            data["config"] = asdict(self.config)
        if self.policy is not None:
            data["policy"] = self.policy
        if self.prefetcher is not None:
            data["prefetcher"] = self.prefetcher
        if self.next_level is not None:
            data["next_level"] = self.next_level
        if self.stats_name is not None:
            data["stats_name"] = self.stats_name
        if self.links:
            data["links"] = dict(self.links)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeSpec":
        kind = data["kind"]
        config: NodeConfig = None
        if "config" in data:
            config_type = CONFIG_TYPES.get(kind)
            if config_type is None:
                raise TopologyError(f"node kind {kind!r} does not take a config")
            config = config_type(**data["config"])
        links = data.get("links", {})
        return cls(
            name=data["name"],
            kind=kind,
            config=config,
            policy=data.get("policy"),
            prefetcher=data.get("prefetcher"),
            next_level=data.get("next_level"),
            stats_name=data.get("stats_name"),
            links=tuple(sorted(links.items())),
        )


def node(name: str, kind: str, links: Optional[Mapping[str, str]] = None, **kw: Any) -> NodeSpec:
    """Convenience constructor accepting ``links`` as a mapping."""
    return NodeSpec(
        name=name, kind=kind, links=tuple(sorted((links or {}).items())), **kw
    )


@dataclass(frozen=True)
class TopologySpec:
    """The full machine graph: a named, ordered collection of nodes.

    Node order is preserved (it fixes construction and stats-level creation
    order) but is *not* part of the content hash — two specs that differ
    only in node ordering or in their label hash identically.
    """

    name: str
    nodes: Tuple[NodeSpec, ...] = field(default=())

    # -- lookups -------------------------------------------------------- #

    def node(self, name: str) -> NodeSpec:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise TopologyError(f"topology {self.name!r} has no node {name!r}")

    def nodes_of_kind(self, kind: str) -> Tuple[NodeSpec, ...]:
        return tuple(n for n in self.nodes if n.kind == kind)

    def cores(self) -> Tuple[NodeSpec, ...]:
        return self.nodes_of_kind(KIND_CORE)

    @property
    def num_cores(self) -> int:
        return len(self.cores())

    def cache_path(self, start: str) -> List[NodeSpec]:
        """The ``next_level`` chain from ``start`` down to (excluding) DRAM."""
        path: List[NodeSpec] = []
        current: Optional[str] = start
        seen = set()
        while current is not None:
            if current in seen:
                raise TopologyError(
                    f"topology {self.name!r}: next_level cycle through {current!r}"
                )
            seen.add(current)
            spec = self.node(current)
            if spec.kind == KIND_DRAM:
                break
            path.append(spec)
            current = spec.next_level
        return path

    # -- serialization -------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "nodes": [n.to_dict() for n in self.nodes]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        return cls(
            name=data["name"],
            nodes=tuple(NodeSpec.from_dict(n) for n in data["nodes"]),
        )

    def content_hash(self) -> str:
        """Stable identity of the graph's *content* (nodes + edges).

        Nodes are canonicalized by name and keys are sorted, so the hash is
        insensitive to node ordering and to the spec's label — and therefore
        safe as a cache-key component: equal hash ⇒ identical machine.
        """
        canonical = sorted((n.to_dict() for n in self.nodes), key=lambda d: d["name"])
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- validation ----------------------------------------------------- #

    def validate(self) -> "TopologySpec":
        """Check graph well-formedness; returns ``self`` for chaining.

        Enforces: unique node names, known kinds with matching config
        types, exactly one DRAM sink, resolving edges of the right kinds,
        acyclic ``next_level`` chains that all terminate at the DRAM node,
        and complete core link sets.  Geometry (power-of-two sets, size
        divisibility) is enforced by the config dataclasses themselves at
        construction; policy/prefetcher names are resolved — with their own
        error messages — when the graph is built.
        """
        names = [n.name for n in self.nodes]
        if len(names) != len(set(names)):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise TopologyError(
                f"topology {self.name!r}: duplicate node names {duplicates}"
            )

        drams = self.nodes_of_kind(KIND_DRAM)
        if len(drams) != 1:
            raise TopologyError(
                f"topology {self.name!r}: expected exactly one DRAM sink, "
                f"found {len(drams)}"
            )
        dram_name = drams[0].name

        for spec in self.nodes:
            if spec.kind not in (KIND_CACHE, KIND_TLB, KIND_DRAM, KIND_WALKER, KIND_CORE):
                raise TopologyError(
                    f"topology {self.name!r}: node {spec.name!r} has unknown "
                    f"kind {spec.kind!r}"
                )
            expected = CONFIG_TYPES.get(spec.kind)
            if expected is not None and not isinstance(spec.config, expected):
                raise TopologyError(
                    f"topology {self.name!r}: node {spec.name!r} ({spec.kind}) "
                    f"needs a {expected.__name__} config"
                )
            if spec.kind == KIND_CORE and spec.config is not None:
                raise TopologyError(
                    f"topology {self.name!r}: core node {spec.name!r} takes no config"
                )

        for spec in self.nodes:
            if spec.kind == KIND_CACHE:
                self._check_edge(spec, spec.next_level, (KIND_CACHE, KIND_DRAM))
            elif spec.kind == KIND_WALKER:
                self._check_edge(spec, spec.next_level, (KIND_CACHE,))
            elif spec.next_level is not None:
                raise TopologyError(
                    f"topology {self.name!r}: {spec.kind} node {spec.name!r} "
                    "does not take a next_level edge"
                )

        # Acyclicity + single-sink: every cache chain must reach the DRAM.
        for spec in self.nodes_of_kind(KIND_CACHE):
            path = self.cache_path(spec.name)  # raises on cycles
            tail = path[-1].next_level
            if tail != dram_name:
                raise TopologyError(
                    f"topology {self.name!r}: cache {spec.name!r} does not "
                    f"drain into the DRAM sink {dram_name!r}"
                )

        cores = self.cores()
        if not cores:
            raise TopologyError(f"topology {self.name!r}: needs at least one core")
        link_kinds = {
            "l1i": KIND_CACHE,
            "l1d": KIND_CACHE,
            "itlb": KIND_TLB,
            "dtlb": KIND_TLB,
            "stlb": KIND_TLB,
            "istlb": KIND_TLB,
            "walker": KIND_WALKER,
        }
        for core in cores:
            roles = dict(core.links)
            for role in REQUIRED_CORE_LINKS:
                if role not in roles:
                    raise TopologyError(
                        f"topology {self.name!r}: core {core.name!r} is missing "
                        f"the {role!r} link"
                    )
            for role, target in roles.items():
                if role not in link_kinds:
                    raise TopologyError(
                        f"topology {self.name!r}: core {core.name!r} has unknown "
                        f"link role {role!r}"
                    )
                self._check_edge(core, target, (link_kinds[role],), role=role)
        return self

    def _check_edge(
        self,
        spec: NodeSpec,
        target: Optional[str],
        kinds: Tuple[str, ...],
        role: str = "next_level",
    ) -> None:
        if target is None:
            raise TopologyError(
                f"topology {self.name!r}: {spec.kind} node {spec.name!r} "
                f"needs a {role} edge"
            )
        try:
            target_spec = self.node(target)
        except TopologyError:
            raise TopologyError(
                f"topology {self.name!r}: node {spec.name!r} links {role} to "
                f"missing node {target!r}"
            ) from None
        if target_spec.kind not in kinds:
            raise TopologyError(
                f"topology {self.name!r}: node {spec.name!r} links {role} to "
                f"{target!r} ({target_spec.kind}); expected {' or '.join(kinds)}"
            )
