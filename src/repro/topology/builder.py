"""Realize a :class:`TopologySpec` into live simulator structures.

``build()`` validates the graph, then instantiates every node through the
sanctioned constructors in :mod:`repro.topology.structures` — which means
through the same policy registries, ``make_prefetcher``,
``make_mshr_file`` and ``stack_factory`` hooks the legacy hand wiring
used, so ``REPRO_CHECK=1`` invariant checking works unchanged on
builder-made machines.

Sharing falls out of the graph: nodes are realized once (memoized by
name), so two cores whose chains reference the same LLC node get the same
:class:`SetAssociativeCache` instance.

This module deliberately imports nothing from :mod:`repro.core` at module
level — ``repro.core.__init__`` transitively imports :mod:`repro.tlb`,
which needs :mod:`repro.topology.structures`; a module-level import here
would close that cycle.  The one core-side class the builder needs
(:class:`AdaptiveXPTPController`) is imported inside :func:`build`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..common.params import SystemConfig
from ..common.stats import SimStats
from ..common.types import PageSize
from ..ptw.page_table import PageTable
from ..ptw.walker import PageTableWalker
from ..replacement.xptp import XPTPPolicy
from .spec import KIND_CACHE, KIND_DRAM, KIND_TLB, KIND_WALKER, NodeSpec, TopologySpec
from .structures import MMUStructures, build_cache, build_dram, build_tlb

SizePolicy = Callable[[int], PageSize]


class BuiltCore:
    """One core's slice of a built topology.

    ``path`` is the core's data-side cache chain from L1D down to (but
    excluding) DRAM; ``l2c``/``llc`` are positional views of it kept for
    the legacy ``System`` surface (``llc`` is ``None`` on a two-level
    hierarchy such as the ``no-llc`` preset).
    """

    __slots__ = (
        "index", "name", "l1i", "l1d", "path", "mmu", "walker", "adaptive", "xptp",
    )

    def __init__(self, index, name, l1i, l1d, path, mmu, walker, adaptive, xptp):
        self.index = index
        self.name = name
        self.l1i = l1i
        self.l1d = l1d
        self.path = path
        self.mmu = mmu
        self.walker = walker
        self.adaptive = adaptive
        self.xptp = xptp

    @property
    def l2c(self):
        return self.path[1] if len(self.path) > 1 else None

    @property
    def llc(self):
        return self.path[2] if len(self.path) > 2 else None


class BuiltTopology:
    """Everything :func:`build` produced, addressable by spec node name."""

    def __init__(self, spec, config, stats, dram, caches, tlbs, walkers, cores, page_table):
        self.spec: TopologySpec = spec
        self.config: SystemConfig = config
        self.stats: SimStats = stats
        self.dram = dram
        #: name → SetAssociativeCache, in realization order.
        self.caches: Dict[str, object] = caches
        #: name → TLB.
        self.tlbs: Dict[str, object] = tlbs
        #: name → PageTableWalker.
        self.walkers: Dict[str, PageTableWalker] = walkers
        self.cores: Tuple[BuiltCore, ...] = cores
        self.page_table: PageTable = page_table

    def reset_stats(self) -> None:
        """Reset every statistic at the warmup/measurement boundary.

        Same contract as the legacy ``System.reset_stats``: counters go to
        zero, microarchitectural state (cache contents, recency stacks,
        outstanding MSHR entries) is kept.  Shared structures are reset
        once even when several cores reference them.
        """
        self.stats.reset()
        seen = set()
        for core in self.cores:
            for obj in (core.adaptive, core.mmu, core.walker):
                if id(obj) not in seen:
                    seen.add(id(obj))
                    obj.reset_stats()
        self.dram.reset_stats()
        for cache in self.caches.values():
            cache.reset_stats()


def build(
    spec: TopologySpec,
    config: SystemConfig,
    stats: Optional[SimStats] = None,
    size_policy: Optional[SizePolicy] = None,
) -> BuiltTopology:
    """Validate ``spec`` and instantiate it against ``config``.

    ``config`` supplies everything that is not per-node: core timing,
    policy context (iTP parameters, xPTP's K, problru's P), the adaptive
    controller's window, STLB MSHR sizing.  Per-node geometry and policy
    names come from the spec.
    """
    # Imported here, not at module level: repro.core <-> repro.topology
    # would otherwise form an import cycle (see module docstring).
    from ..core.adaptive import AdaptiveXPTPController
    from ..tlb.hierarchy import MMU

    spec.validate()
    stats = stats if stats is not None else SimStats()

    caches: Dict[str, object] = {}
    tlbs: Dict[str, object] = {}
    walkers: Dict[str, PageTableWalker] = {}
    dram = None

    def realize_memory(name: str):
        """Cache-or-DRAM lookup, building the next_level chain on demand."""
        nonlocal dram
        node = spec.node(name)
        if node.kind == KIND_DRAM:
            if dram is None:
                dram = build_dram(node, stats)
            return dram
        if name not in caches:
            next_level = realize_memory(node.next_level)
            caches[name] = build_cache(node, config, next_level, stats)
        return caches[name]

    # Realize DRAM and caches in spec order (recursing for dependencies)
    # so stats levels appear in the order the spec lists its nodes.
    for node in spec.nodes:
        if node.kind in (KIND_DRAM, KIND_CACHE):
            realize_memory(node.name)

    page_table = PageTable(size_policy)

    def realize_walker(name: str) -> PageTableWalker:
        if name not in walkers:
            node = spec.node(name)
            target = realize_memory(node.next_level)
            walkers[name] = PageTableWalker(page_table, node.config, target, stats)
        return walkers[name]

    def realize_tlb(name: str):
        if name not in tlbs:
            tlbs[name] = build_tlb(spec.node(name), config, stats)
        return tlbs[name]

    cores: List[BuiltCore] = []
    for index, core_node in enumerate(spec.cores()):
        walker = realize_walker(core_node.link("walker"))
        istlb_name = core_node.link("istlb")
        structures = MMUStructures(
            itlb=realize_tlb(core_node.link("itlb")),
            dtlb=realize_tlb(core_node.link("dtlb")),
            stlb=realize_tlb(core_node.link("stlb")),
            stlb_instr=realize_tlb(istlb_name) if istlb_name else None,
        )
        mmu = MMU(config, walker, stats, structures=structures)
        l1i = caches[core_node.link("l1i")]
        l1d = caches[core_node.link("l1d")]
        path = [caches[n.name] for n in spec.cache_path(core_node.link("l1d"))]
        xptp = next(
            (c.policy for c in path if isinstance(c.policy, XPTPPolicy)), None
        )
        adaptive = AdaptiveXPTPController(config.adaptive, mmu, xptp)
        cores.append(
            BuiltCore(index, core_node.name, l1i, l1d, path, mmu, walker, adaptive, xptp)
        )

    return BuiltTopology(
        spec, config, stats, dram, caches, tlbs, walkers, tuple(cores), page_table
    )
