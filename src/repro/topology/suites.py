"""Table 2 techniques as first-class policy suites.

A :class:`PolicySuite` names one column of the paper's Table 2: which
replacement policy runs at each structure (structures not listed use LRU).
The :data:`SUITES` registry is the single source of truth — the legacy
``POLICY_MATRIX`` mapping in :mod:`repro.experiments.runner` and the
``config_for`` technique lookup are both derived from it, so the technique
list, its ordering and the unknown-technique error message can never drift
apart.

Suites compose with topologies: a suite picks the policies, a
:class:`~repro.topology.spec.TopologySpec` preset picks the graph.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.params import SystemConfig
from ..common.registry import Registry
from dataclasses import dataclass


@dataclass(frozen=True)
class PolicySuite:
    """One Table 2 technique: a named set of per-structure policies."""

    name: str
    stlb: Optional[str] = None
    l2c: Optional[str] = None
    llc: Optional[str] = None
    description: str = ""

    def policies(self) -> Dict[str, str]:
        """The non-default structure → policy assignments."""
        return {
            key: value
            for key, value in (("stlb", self.stlb), ("l2c", self.l2c), ("llc", self.llc))
            if value is not None
        }

    def apply(self, config: SystemConfig) -> SystemConfig:
        """A copy of ``config`` with this suite's policies substituted."""
        return config.with_policies(stlb=self.stlb, l2c=self.l2c, llc=self.llc)

    def summary(self) -> str:
        """Short human-readable policy listing for ``--list`` output."""
        policies = self.policies()
        return ", ".join(f"{k}={v}" for k, v in policies.items()) or "all-LRU baseline"


#: The process-wide technique registry, in Table 2 order.
SUITES: Registry[PolicySuite] = Registry("technique")

for _suite in (
    PolicySuite("lru", description="all-LRU baseline"),
    PolicySuite("tdrrip", l2c="tdrrip", description="TLB-aware DRRIP at the L2C"),
    PolicySuite("ptp", l2c="ptp", description="PTE-priority insertion at the L2C"),
    PolicySuite("chirp", stlb="chirp", description="history-based instruction reuse STLB"),
    PolicySuite("chirp+tdrrip", stlb="chirp", l2c="tdrrip",
                description="CHiRP with TLB-aware DRRIP"),
    PolicySuite("chirp+ptp", stlb="chirp", l2c="ptp", description="CHiRP with PTP"),
    PolicySuite("itp", stlb="itp", description="instruction-aware STLB replacement"),
    PolicySuite("itp+tdrrip", stlb="itp", l2c="tdrrip", description="iTP with TLB-aware DRRIP"),
    PolicySuite("itp+ptp", stlb="itp", l2c="ptp", description="iTP with PTP"),
    PolicySuite("itp+xptp", stlb="itp", l2c="xptp",
                description="the paper's full cooperative proposal"),
):
    SUITES.register(_suite.name, _suite)


def suite_for(technique: str) -> PolicySuite:
    """Look up a Table 2 technique; unknown names list every known suite."""
    return SUITES.get(technique)
