"""Declarative machine topologies.

The one place the simulated machine's shape is defined: specs
(:mod:`.spec`), the builder that realizes them (:mod:`.builder`), the
named presets every CLI ``--topology`` flag accepts (:mod:`.presets`), the
sanctioned leaf-structure constructors (:mod:`.structures`) and the
Table 2 policy suites (:mod:`.suites`).  See ``docs/architecture.md``.
"""

from .builder import BuiltCore, BuiltTopology, build
from .presets import (
    PRESET_NAMES,
    from_system_config,
    make_topology,
    multicore,
    no_llc,
    resolve_topology,
    shared_l2,
    split_stlb,
    table1,
)
from .spec import NodeSpec, TopologyError, TopologySpec, node
from .structures import MMUStructures, mmu_structures
from .suites import SUITES, PolicySuite, suite_for

__all__ = [
    "BuiltCore",
    "BuiltTopology",
    "build",
    "PRESET_NAMES",
    "from_system_config",
    "make_topology",
    "multicore",
    "no_llc",
    "resolve_topology",
    "shared_l2",
    "split_stlb",
    "table1",
    "NodeSpec",
    "TopologyError",
    "TopologySpec",
    "node",
    "MMUStructures",
    "mmu_structures",
    "SUITES",
    "PolicySuite",
    "suite_for",
]
