"""Named topology presets.

Every machine the repo previously hard-wired is expressible as a preset:

* ``table1``       — the paper's Table 1 single-core hierarchy (what the
                     legacy ``System.__init__`` wired by hand);
* ``split-stlb``   — Section 6.6's split instruction/data STLB, each half
                     with half the unified entry count;
* ``multicore-N``  — N cores with private L1/L2/TLBs sharing LLC + DRAM
                     (the legacy ``MulticoreSystem`` graph);
* ``no-llc``       — two-level hierarchy, L2C drains straight to DRAM;
* ``shared-l2``    — cores share one L2C (and the walker PTE stream hits
                     the shared L2C), the Victima/Garibaldi-style shared
                     translation-capacity scenario; ``shared-l2-N`` for
                     N > 2 cores.

Preset functions take the :class:`SystemConfig` whose per-level configs
and policy names should populate the nodes, so ``--topology`` composes
with ``--techniques``: the technique picks the policies, the preset picks
the graph.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Union

from ..common.params import SystemConfig
from .spec import NodeSpec, TopologySpec, TopologyError, node

#: Names accepted by :func:`make_topology` (``multicore-N`` and
#: ``shared-l2-N`` generalize the listed forms).
PRESET_NAMES = ("table1", "split-stlb", "multicore-N", "no-llc", "shared-l2")


def _memory_nodes(config: SystemConfig, llc: bool = True) -> List[NodeSpec]:
    """DRAM + shared cache tail common to every preset."""
    nodes = [node("dram", "dram", config=config.dram, stats_name="DRAM")]
    if llc:
        nodes.append(
            node("llc", "cache", config=config.llc, policy=config.llc_policy,
                 next_level="dram")
        )
    return nodes


def _core_nodes(
    config: SystemConfig,
    suffix: str = "",
    l2_target: Optional[str] = None,
    stats_suffix: str = "",
    istlb: bool = False,
) -> List[NodeSpec]:
    """One core's private structures plus its core node.

    ``suffix`` disambiguates node names between cores; ``stats_suffix``
    mirrors the legacy multicore convention of suffixing *cache* stats
    buckets (``L2C_0``) while TLB/walker buckets stay shared (``STLB``).
    """
    l2_name = f"l2c{suffix}"
    nodes = [
        node(l2_name, "cache", config=config.l2c, policy=config.l2c_policy,
             next_level=l2_target or "llc",
             stats_name=f"L2C{stats_suffix}" if stats_suffix else None),
        node(f"l1i{suffix}", "cache", config=config.l1i, policy="lru",
             next_level=l2_name,
             stats_name=f"L1I{stats_suffix}" if stats_suffix else None),
        node(f"l1d{suffix}", "cache", config=config.l1d, policy="lru",
             next_level=l2_name,
             stats_name=f"L1D{stats_suffix}" if stats_suffix else None),
        node(f"walker{suffix}", "walker", config=config.psc, next_level=l2_name),
        node(f"itlb{suffix}", "tlb", config=config.itlb, policy="lru",
             stats_name="ITLB"),
        node(f"dtlb{suffix}", "tlb", config=config.dtlb, policy="lru",
             stats_name="DTLB"),
        node(f"stlb{suffix}", "tlb", config=config.stlb,
             policy=config.stlb_policy, stats_name="STLB"),
    ]
    links = {
        "l1i": f"l1i{suffix}",
        "l1d": f"l1d{suffix}",
        "itlb": f"itlb{suffix}",
        "dtlb": f"dtlb{suffix}",
        "stlb": f"stlb{suffix}",
        "walker": f"walker{suffix}",
    }
    if istlb:
        nodes.append(
            node(f"istlb{suffix}", "tlb", config=config.istlb,
                 policy=config.stlb_policy, stats_name="STLB")
        )
        links["istlb"] = f"istlb{suffix}"
    nodes.append(node(f"core{suffix or '0'}", "core", links=links))
    return nodes


def from_system_config(config: SystemConfig, name: str = "table1") -> TopologySpec:
    """The graph the legacy single-core ``System`` wired: the paper's
    Table 1 hierarchy, honouring ``config.istlb`` for split-STLB configs."""
    nodes = _memory_nodes(config) + _core_nodes(
        config, istlb=config.istlb is not None
    )
    return TopologySpec(name=name, nodes=tuple(nodes))


def table1(config: SystemConfig) -> TopologySpec:
    return from_system_config(config, name="table1")


def split_stlb(config: SystemConfig) -> TopologySpec:
    """Split STLB (Section 6.6): half the entries per half, same assoc.

    When ``config.istlb`` is already set the split is taken as-is;
    otherwise each half gets ``entries // 2`` of the unified STLB.
    """
    if config.istlb is None:
        half = replace(config.stlb, name="DSTLB", entries=config.stlb.entries // 2)
        config = replace(
            config,
            stlb=half,
            istlb=replace(half, name="ISTLB"),
        )
    return from_system_config(config, name="split-stlb")


def no_llc(config: SystemConfig) -> TopologySpec:
    """Two-level hierarchy: L2C drains straight to DRAM."""
    nodes = _memory_nodes(config, llc=False) + _core_nodes(config, l2_target="dram")
    return TopologySpec(name="no-llc", nodes=tuple(nodes))


def multicore(config: SystemConfig, num_cores: int) -> TopologySpec:
    """N cores, private L1/L2/TLB/walker, shared LLC + DRAM (the legacy
    ``MulticoreSystem`` graph; cache stats buckets suffixed per core)."""
    if num_cores < 1:
        raise TopologyError("multicore topology needs at least one core")
    nodes = _memory_nodes(config)
    for index in range(num_cores):
        nodes += _core_nodes(config, suffix=f"_{index}", stats_suffix=f"_{index}")
    return TopologySpec(name=f"multicore-{num_cores}", nodes=tuple(nodes))


def shared_l2(config: SystemConfig, num_cores: int = 2) -> TopologySpec:
    """N cores sharing one L2C (and its walker PTE stream) under the LLC."""
    if num_cores < 1:
        raise TopologyError("shared-l2 topology needs at least one core")
    nodes = _memory_nodes(config)
    nodes.append(
        node("l2c", "cache", config=config.l2c, policy=config.l2c_policy,
             next_level="llc")
    )
    for index in range(num_cores):
        suffix = f"_{index}"
        nodes += [
            node(f"l1i{suffix}", "cache", config=config.l1i, policy="lru",
                 next_level="l2c", stats_name=f"L1I{suffix}"),
            node(f"l1d{suffix}", "cache", config=config.l1d, policy="lru",
                 next_level="l2c", stats_name=f"L1D{suffix}"),
            node(f"walker{suffix}", "walker", config=config.psc, next_level="l2c"),
            node(f"itlb{suffix}", "tlb", config=config.itlb, policy="lru",
                 stats_name="ITLB"),
            node(f"dtlb{suffix}", "tlb", config=config.dtlb, policy="lru",
                 stats_name="DTLB"),
            node(f"stlb{suffix}", "tlb", config=config.stlb,
                 policy=config.stlb_policy, stats_name="STLB"),
            node(f"core{index}", "core", links={
                "l1i": f"l1i{suffix}", "l1d": f"l1d{suffix}",
                "itlb": f"itlb{suffix}", "dtlb": f"dtlb{suffix}",
                "stlb": f"stlb{suffix}", "walker": f"walker{suffix}",
            }),
        ]
    return TopologySpec(name=f"shared-l2-{num_cores}", nodes=tuple(nodes))


def make_topology(name: str, config: SystemConfig) -> TopologySpec:
    """Resolve a preset name (``table1``, ``split-stlb``, ``no-llc``,
    ``multicore-N``, ``shared-l2[-N]``) into a spec for ``config``."""
    if name == "table1":
        return table1(config)
    if name == "split-stlb":
        return split_stlb(config)
    if name == "no-llc":
        return no_llc(config)
    if name == "shared-l2":
        return shared_l2(config)
    for prefix, factory in (("multicore-", multicore), ("shared-l2-", shared_l2)):
        if name.startswith(prefix):
            count = name[len(prefix):]
            if not count.isdigit() or int(count) < 1:
                raise TopologyError(
                    f"bad core count in topology name {name!r} "
                    f"(expected e.g. {prefix}2)"
                )
            return factory(config, int(count))
    raise TopologyError(
        f"unknown topology {name!r}; available presets: {', '.join(PRESET_NAMES)}"
    )


def resolve_topology(
    topology: Union[None, str, TopologySpec], config: SystemConfig
) -> TopologySpec:
    """Normalize the ``--topology`` surface: ``None`` means the default
    Table 1 graph for ``config``, strings name presets, specs pass through."""
    if topology is None:
        return from_system_config(config)
    if isinstance(topology, str):
        return make_topology(topology, config)
    return topology
