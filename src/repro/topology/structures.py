"""Sanctioned constructors for the hardware leaf structures.

This module is the *only* place in ``src/repro`` that instantiates
:class:`SetAssociativeCache`, :class:`TLB` or :class:`DRAM` directly (lint
rule RPR006 enforces this).  Everything goes through the same registry
factories and the same ``make_mshr_file``/``stack_factory`` hooks the
legacy wiring used, so ``REPRO_CHECK=1`` keeps validating builder-made
machines exactly as it validated hand-wired ones.

The policy *context* convention lives here: every policy factory receives
the full set of :class:`SystemConfig`-derived keywords (``xptp_k``,
``itp_config``, ``p_evict_data``) and takes what it needs.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from ..cache.cache import SetAssociativeCache
from ..cache.prefetch import make_prefetcher
from ..common.params import SystemConfig
from ..common.stats import SimStats
from ..mem.dram import DRAM
from ..replacement.registry import make_cache_policy
from ..tlb.tlb import TLB
from ..tlb.policies.registry import make_tlb_policy
from .spec import NodeSpec


def build_dram(node: NodeSpec, stats: SimStats) -> DRAM:
    return DRAM(node.config, stats.level(node.stats_name or "DRAM"))


def build_cache(
    node: NodeSpec,
    config: SystemConfig,
    next_level: object,
    stats: SimStats,
) -> SetAssociativeCache:
    """Realize a cache node on top of its already-built ``next_level``."""
    cache_config = node.config
    policy = make_cache_policy(
        node.policy or "lru",
        cache_config.num_sets,
        cache_config.associativity,
        xptp_k=config.xptp.k,
    )
    prefetcher_name = (
        node.prefetcher if node.prefetcher is not None else cache_config.prefetcher
    )
    return SetAssociativeCache(
        cache_config,
        policy,
        next_level,
        stats.level(node.stats_name or cache_config.name),
        make_prefetcher(prefetcher_name),
    )


def build_tlb(node: NodeSpec, config: SystemConfig, stats: SimStats) -> TLB:
    """Realize a TLB node; policy context comes from the system config."""
    tlb_config = node.config
    policy = make_tlb_policy(
        node.policy or "lru",
        tlb_config.num_sets,
        tlb_config.associativity,
        itp_config=config.itp,
        p_evict_data=config.problru_p,
    )
    return TLB(
        tlb_config, policy, stats.level(node.stats_name or tlb_config.name)
    )


class MMUStructures(NamedTuple):
    """The TLB set handed to :class:`repro.tlb.hierarchy.MMU`.

    ``stlb_instr`` is ``None`` for a unified STLB; when set, ``stlb`` is the
    data half of a split design (Section 6.6).
    """

    itlb: TLB
    dtlb: TLB
    stlb: TLB
    stlb_instr: Optional[TLB] = None


def mmu_structures(config: SystemConfig, stats: SimStats) -> MMUStructures:
    """Build the TLB set the legacy ``MMU.__init__`` wired by hand.

    Compatibility path for direct ``MMU(config, walker, stats)``
    construction (tests and downstream code); topology builds inject
    per-node structures instead.
    """
    itlb = TLB(
        config.itlb,
        make_tlb_policy("lru", config.itlb.num_sets, config.itlb.associativity),
        stats.level("ITLB"),
    )
    dtlb = TLB(
        config.dtlb,
        make_tlb_policy("lru", config.dtlb.num_sets, config.dtlb.associativity),
        stats.level("DTLB"),
    )

    def stlb_half(tlb_config) -> TLB:
        return TLB(
            tlb_config,
            make_tlb_policy(
                config.stlb_policy,
                tlb_config.num_sets,
                tlb_config.associativity,
                itp_config=config.itp,
                p_evict_data=config.problru_p,
            ),
            stats.level("STLB"),
        )

    stlb = stlb_half(config.stlb)
    stlb_instr = stlb_half(config.istlb) if config.istlb is not None else None
    return MMUStructures(itlb, dtlb, stlb, stlb_instr)
