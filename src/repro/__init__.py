"""repro — reproduction of "Instruction-Aware Cooperative TLB and Cache
Replacement Policies" (Chasapis, Vavouliotis, Jiménez, Casas — ASPLOS 2025).

The package implements the paper's contributions — the iTP STLB replacement
policy, the xPTP L2C replacement policy and the adaptive iTP+xPTP scheme —
on top of a from-scratch trace-driven simulator: multi-level TLBs, a
5-level radix page table with split page structure caches and a hardware
walker, a three-level cache hierarchy with MSHRs and prefetchers, DRAM, and
single-thread/SMT core timing models.  Baseline policies (LRU, SRRIP,
DRRIP, TDRRIP, PTP, SHiP, Mockingjay, CHiRP, probabilistic LRU) are
included for the paper's comparisons.

Quickstart::

    from repro import make_config, simulate, ServerWorkload

    baseline = make_config()                                   # Table 1, LRU everywhere
    proposal = baseline.with_policies(stlb="itp", l2c="xptp")  # iTP+xPTP
    wl = ServerWorkload("demo", seed=1)
    print(simulate(proposal, wl).ipc / simulate(baseline, wl).ipc)
"""

from .common import (
    AccessType,
    EnergyModel,
    energy_report,
    CacheConfig,
    ITPConfig,
    MemoryRequest,
    PageSize,
    RequestType,
    SimStats,
    SystemConfig,
    TABLE1,
    TLBConfig,
    TraceRecord,
    XPTPConfig,
    make_config,
)
from .common.params import scaled_config
from .core import (
    SimulationResult,
    System,
    simulate,
    simulate_smt,
)
from .replacement import available_policies, make_cache_policy
from .tlb import available_tlb_policies, make_tlb_policy
from .workloads import (
    PhasedWorkload,
    ServerWorkload,
    SpecLikeWorkload,
    server_suite,
    smt_mixes,
    spec_suite,
)

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "CacheConfig",
    "ITPConfig",
    "MemoryRequest",
    "PageSize",
    "PhasedWorkload",
    "RequestType",
    "ServerWorkload",
    "SimStats",
    "SimulationResult",
    "SpecLikeWorkload",
    "System",
    "SystemConfig",
    "TABLE1",
    "TLBConfig",
    "TraceRecord",
    "XPTPConfig",
    "EnergyModel",
    "available_policies",
    "available_tlb_policies",
    "energy_report",
    "scaled_config",
    "make_cache_policy",
    "make_config",
    "make_tlb_policy",
    "server_suite",
    "simulate",
    "simulate_smt",
    "smt_mixes",
    "spec_suite",
]
