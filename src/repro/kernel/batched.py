"""Block-batched execution engine, differential-locked to the scalar spec.

The scalar path (``Core.execute`` → ``MMU.translate`` → cache ``access``)
pays full Python dispatch per record even when nothing interesting happens.
On the server workloads the overwhelming majority of records fully hit in
the first-level structures, where the only architectural effects are
recency bumps, hit counters, and prefetcher window advances.  This engine
exploits that:

1. **Block pull + precompute.**  Records are pulled from the trace stream
   in blocks (:data:`DEFAULT_BLOCK_RECORDS`) and the derived per-record
   indices — tagged PC, 4 KB VPN, instruction counts, base cycle cost —
   are precomputed as flat arrays.

2. **Three-tier loop.**  For each record, a side-effect-free *probe*
   classifies it:

   * **deferred tier** — every structure hits *and* every prefetcher probe
     target is already resident (the prefetchers would be pure no-ops).
     Hit counters are accumulated locally, recency bumps are buffered and
     later bulk-applied via :func:`repro.common.recency.bulk_touch`, and
     window bookkeeping (adaptive controller, DRAM bandwidth window) is
     kept in locals with provably identical arithmetic.
   * **issuing tier** — every structure hits but a prefetcher would issue
     (on sequential code the FDIP window advances one line per record, so
     this tier carries streaming fetch).  FDIP issues are replayed by a
     hand-inlined equivalent of ``cache.prefetch``: the prefetch-through
     recursion at L2C/LLC/DRAM touches no replacement policy, prefetcher,
     MSHR or adaptive state — only tag probes and counters — and the L1I
     fill itself runs under the engine's pinned exact-LRU policy, so the
     inline replay is bit-identical by construction.  Next-line (L1D)
     issues go through the real ``Prefetcher.on_access`` hook after the
     deferred window state is committed.
   * **scalar fallback** — anything else (any miss, or a machine whose L1
     policies/prefetchers are not the exact baseline types).  Deferred
     state is flushed and the untouched record runs through
     ``Core.execute``; all Figure 5/6/7 semantics live only there.

Bit-identity notes (each is load-bearing; see tests/test_kernel_diff.py):

* cycles accumulate per record in stream order; a full-hit record costs
  exactly ``num_instrs * base_cpi`` (front and data stalls are ``0.0`` by
  the overlap model), so the float sum matches the scalar loop bit-for-bit;
* probes never mutate, and hits never change set membership, so deciding
  whole-record eligibility before applying any effect cannot diverge;
* statistics counters are pure accumulators (nothing reads them before a
  quiescent point), so they are summed in locals for the whole block and
  committed once — even across scalar fallbacks, because integer addition
  commutes;
* TLB recency is never read by any prefetch path, so TLB touch buffers
  survive issuing-tier records; they are only drained before a scalar
  fallback or a ``Core._data_access`` re-run (which touch TLB state
  directly, where order matters);
* L1 cache recency *is* read by fills (victim selection), so the L1I
  buffer is drained before any FDIP issue and the L1D buffer before any
  next-line issue or data re-run;
* the DRAM bandwidth window is replayed inline per record with the exact
  ``note_instructions`` arithmetic; ``_window_accesses`` and
  ``_queue_delay`` are kept live on the DRAM object (inline prefetches
  bump the access count eagerly) and only ``_window_instructions`` is
  carried in a local, written back before any scalar fallback;
* the adaptive controller carries window overshoot, so one aggregate
  ``on_instructions`` call per commit closes windows at the same
  instruction boundaries with the same STLB-miss samples (misses only
  arise in scalar fallbacks and data re-runs, both of which commit
  first);
* CHiRP's history register dedups consecutive same-page observations, so
  the engine skips the call while the fetch page is unchanged; FDIP's
  last-line register is kept in a local and synchronised around every
  scalar fallback;
* the FDIP window spans ``depth`` *consecutive* lines, which map to
  ``depth`` *distinct* L1I sets whenever ``depth < num_sets``; a window
  fill therefore never evicts another window line, so after a sequential
  record is processed (either tier) lines ``la+1 .. la+depth`` are all
  resident and the next sequential record only needs to probe the one
  newly exposed target (``seq_clean`` induction);
* L1I lines are never dirty (only stores set the dirty bit and the L1I
  serves fetches exclusively), so inline L1I fills never write back; the
  engine still peeks the victim and defers to the real machinery if the
  invariant were ever broken;
* on the issuing tier, an L1D prefetch fill can evict a line a *later*
  memory op of the same record needs (the hierarchy is non-inclusive, so
  that is the only cross-structure hazard); once any L1D-mutating call
  has run, each remaining memop re-probes at apply time and routes
  through the real ``Core._data_access`` if its line disappeared.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple, Union

from ..cache.cache import SetAssociativeCache
from ..cache.prefetch.fdip import FDIPPrefetcher
from ..cache.prefetch.next_line import NextLinePrefetcher
from ..common.recency import bulk_touch
from ..common.types import LARGE_PAGE_BITS, PAGE_BITS, PageSize, RequestType, TraceRecord
from ..mem.dram import _FREE_RATE, _MAX_PRESSURE, DRAM
from ..replacement.lru import LRUPolicy
from ..tlb.policies.lru import TLBLRUPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..core.cpu import Core
    from ..core.system import System

_SIZE_2M = PageSize.SIZE_2M
_PAGE_OFFSET_MASK = (1 << PAGE_BITS) - 1
_LOAD = RequestType.LOAD
_STORE = RequestType.STORE
_NO_LIMIT = float("inf")

#: Records pulled (and precomputed) per block.
DEFAULT_BLOCK_RECORDS = 4096


class BatchedEngine:
    """Drives one :class:`Core` through its stream in precomputed blocks.

    The engine is bit-identical to the scalar loop by construction (see the
    module docstring); ``fast_records`` (deferred tier), ``issue_records``
    (issuing tier) and ``total_records`` expose fast-path coverage for the
    bench harness and ``tools/profile_hotpath.py`` without touching
    :class:`~repro.common.stats.SimStats`.
    """

    __slots__ = (
        "fast_records", "issue_records", "total_records",
        "_system", "_core", "_advance", "_execute", "_stats",
        "_block_records", "_fast_ok", "_exhausted",
        "_ttag", "_thread_id", "_base_cpi",
        "_chirp_observe", "_adaptive_on",
        "_core_data", "_data_req",
        "_itlb_km", "_itlb_sets", "_itlb_mask", "_itlb_stacks", "_itlb_stats",
        "_dtlb_km", "_dtlb_sets", "_dtlb_mask", "_dtlb_stacks", "_dtlb_stats",
        "_l1i", "_l1i_tm", "_l1i_sets", "_l1i_smask", "_l1i_sshift",
        "_l1i_lshift", "_l1i_pshift", "_l1i_stacks", "_l1i_stats", "_l1i_assoc",
        "_l1d", "_l1d_tm", "_l1d_sets", "_l1d_smask", "_l1d_sshift",
        "_l1d_lshift", "_l1d_pshift", "_l1d_stacks", "_l1d_stats",
        "_fdip", "_fdip_depth", "_fdip_seq_ok", "_nl", "_nl_degree",
        "_pf_inline", "_l2_tm", "_l2_smask", "_l2_sshift", "_l2_stats",
        "_llc_tm", "_llc_smask", "_llc_sshift", "_llc_stats",
        "_dram", "_dram_stats", "_contention",
        "_blk", "_idx",
        "_pcs", "_vpns", "_npis", "_cycs",
        "_it_s", "_it_w", "_dt_s", "_dt_w",
        "_ci_s", "_ci_w", "_cd_s", "_cd_w",
        "_ci_pend", "_cd_pend",
        "_scratch",
    )

    def __init__(
        self,
        system: "System",
        core: "Core",
        stream: Iterator[TraceRecord],
        block_records: int = DEFAULT_BLOCK_RECORDS,
    ) -> None:
        if block_records <= 0:
            raise ValueError("block_records must be positive")
        self._system = system
        self._core = core
        self._advance = stream.__next__
        self._execute = core.execute
        self._stats = system.stats
        self._block_records = block_records
        self._exhausted = False
        self.fast_records = 0
        self.issue_records = 0
        self.total_records = 0

        self._ttag = core._thread_tag
        self._thread_id = core.thread_id
        self._base_cpi = system.config.core.base_cpi
        self._core_data = core._data_access
        # Borrow the core's reusable data request for the issuing tier's
        # next-line on_access calls; the hierarchy is synchronous, so it is
        # never live outside the call it was rewritten for.
        self._data_req = core._data_req

        mmu = system.mmu
        itlb, dtlb = mmu.itlb, mmu.dtlb
        l1i, l1d = system.l1i, system.l1d
        self._itlb_km = itlb._key_maps
        self._itlb_sets = itlb.sets
        self._itlb_mask = itlb._set_mask
        self._itlb_stats = itlb.stats
        self._dtlb_km = dtlb._key_maps
        self._dtlb_sets = dtlb.sets
        self._dtlb_mask = dtlb._set_mask
        self._dtlb_stats = dtlb.stats
        self._l1i = l1i
        self._l1i_tm = l1i._tag_maps
        self._l1i_sets = l1i.sets
        self._l1i_smask = l1i._set_mask
        self._l1i_sshift = l1i._set_shift
        self._l1i_lshift = l1i.line_shift
        self._l1i_pshift = PAGE_BITS - l1i.line_shift
        self._l1i_stats = l1i.stats
        self._l1i_assoc = l1i.associativity
        self._l1d = l1d
        self._l1d_tm = l1d._tag_maps
        self._l1d_sets = l1d.sets
        self._l1d_smask = l1d._set_mask
        self._l1d_sshift = l1d._set_shift
        self._l1d_lshift = l1d.line_shift
        self._l1d_pshift = PAGE_BITS - l1d.line_shift
        self._l1d_stats = l1d.stats

        chirp = mmu._chirp
        self._chirp_observe = (
            chirp.observe_fetch_page if chirp is not None else None
        )
        self._adaptive_on = system.adaptive.on_instructions
        dram = system.dram
        self._dram = dram
        self._dram_stats = dram.stats
        self._contention = dram.config.contention_cycles

        fdip = l1i.prefetcher
        nl = l1d.prefetcher
        self._fdip = fdip if type(fdip) is FDIPPrefetcher else None
        self._fdip_depth = fdip.depth if type(fdip) is FDIPPrefetcher else 0
        self._nl = nl if type(nl) is NextLinePrefetcher else None
        self._nl_degree = nl.degree if type(nl) is NextLinePrefetcher else 0
        # seq_clean induction needs the window to span distinct L1I sets.
        self._fdip_seq_ok = 0 < self._fdip_depth < l1i.num_sets

        # The fast tiers replay only the exact baseline L1 behaviours: LRU
        # recency bumps and the baseline prefetcher windows.  Any other
        # policy/prefetcher type — subclasses included — runs whole-run
        # scalar, as does a topology whose L1 hit latency exceeds the
        # Table 1 figure the core's stall model subtracts.
        self._fast_ok = (
            type(itlb.policy) is TLBLRUPolicy
            and type(dtlb.policy) is TLBLRUPolicy
            and type(l1i.policy) is LRUPolicy
            and type(l1d.policy) is LRUPolicy
            and (fdip is None or type(fdip) is FDIPPrefetcher)
            and (nl is None or type(nl) is NextLinePrefetcher)
            and l1i.config.latency <= system.config.l1i.latency
            and l1d.config.latency <= system.config.l1d.latency
        )
        if self._fast_ok:
            self._itlb_stacks = itlb.policy.stacks
            self._dtlb_stacks = dtlb.policy.stacks
            self._l1i_stacks = l1i.policy.stacks
            self._l1d_stacks = l1d.policy.stacks
        else:
            self._itlb_stacks = self._dtlb_stacks = ()
            self._l1i_stacks = self._l1d_stacks = ()

        # Inline-prefetch eligibility for FDIP issues: the L1I must sit on
        # the plain L2C → LLC → DRAM chain (no analysis probes rewiring
        # next_level), all three cache levels must share one line size (so
        # line addresses transfer), and the DRAM must be the flat model
        # (the row-buffer model mutates open-row state per access).  When
        # the chain does not qualify, records that would issue an FDIP
        # prefetch simply run scalar.
        self._pf_inline = False
        self._l2_tm = self._llc_tm = ()
        self._l2_smask = self._llc_smask = 0
        self._l2_sshift = self._llc_sshift = 0
        self._l2_stats = self._llc_stats = None
        l2 = l1i.next_level
        if type(l2) is SetAssociativeCache:
            llc = l2.next_level
            if (
                type(llc) is SetAssociativeCache
                and llc.next_level is dram
                and type(dram) is DRAM
                and not dram.config.row_buffer
                and l2.line_shift == self._l1i_lshift
                and llc.line_shift == self._l1i_lshift
            ):
                self._pf_inline = True
                self._l2_tm = l2._tag_maps
                self._l2_smask = l2._set_mask
                self._l2_sshift = l2._set_shift
                self._l2_stats = l2.stats
                self._llc_tm = llc._tag_maps
                self._llc_smask = llc._set_mask
                self._llc_sshift = llc._set_shift
                self._llc_stats = llc.stats

        # Current block and its precomputed index arrays.
        self._blk: List[TraceRecord] = []
        self._idx = 0
        self._pcs: List[int] = []
        self._vpns: List[int] = []
        self._npis: List[int] = []
        self._cycs: List[float] = []
        # Deferred recency-touch buffers, one (sets, ways) pair per
        # structure, drained by bulk_touch at the commit points described
        # in the module docstring.
        self._it_s: List[int] = []
        self._it_w: List[int] = []
        self._dt_s: List[int] = []
        self._dt_w: List[int] = []
        self._ci_s: List[int] = []
        self._ci_w: List[int] = []
        self._cd_s: List[int] = []
        self._cd_w: List[int] = []
        # Set indices with pending buffered touches, per L1 cache.  Recency
        # stacks are per-set, so operations on *different* sets commute: an
        # inline fill only forces a drain when its victim set has pending
        # touches (rare — the prefetch windows span sets distinct from the
        # recently hit ones).
        self._ci_pend: set = set()
        self._cd_pend: set = set()
        # Per-record probe results for the current record's memory ops:
        # (dtlb_set, dtlb_way, l1d_set, l1d_way, line_addr, tagged_vaddr,
        #  is_store, nl_targets_resident).
        self._scratch: List[Tuple[int, int, int, int, int, int, bool, bool]] = []

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #

    @property
    def fast_path_coverage(self) -> float:
        """Fraction of processed records resolved above the scalar tier."""
        if self.total_records == 0:
            return 0.0
        return (self.fast_records + self.issue_records) / self.total_records

    def reset_stats(self) -> None:
        """Clear the coverage counters ``fast_records``, ``issue_records``
        and ``total_records`` (the bench harness resets them at the warmup
        boundary)."""
        self.fast_records = 0
        self.issue_records = 0
        self.total_records = 0

    def run_until(self, instruction_limit: Union[int, float]) -> float:
        """Execute records until ``stats.instructions >= instruction_limit``.

        Mirrors the scalar driver loop: the limit is checked *before* each
        record, so a multi-instruction record can carry the count past the
        limit and the next call (after ``reset_stats``) resumes with the
        first unexecuted record — blocks split exactly at the boundary.
        Returns the cycles accumulated by this call, in stream order.
        """
        stats = self._stats
        cycles = 0.0
        if not self._fast_ok:
            execute = self._execute
            advance = self._advance
            total = self.total_records
            while stats.instructions < instruction_limit:
                cycles += execute(advance())
                total += 1
            self.total_records = total
            return cycles
        while stats.instructions < instruction_limit:
            if self._idx >= len(self._blk):
                self._pull_block()
                if not self._blk:
                    raise StopIteration
            cycles = self._run_block(instruction_limit, len(self._blk), cycles)
        return cycles

    def run_records(self, record_count: int) -> float:
        """Execute exactly ``record_count`` records (bench windows are
        record-bounded); returns the cycles they cost, in stream order."""
        cycles = 0.0
        if not self._fast_ok:
            execute = self._execute
            advance = self._advance
            for _ in range(record_count):
                cycles += execute(advance())
            self.total_records += record_count
            return cycles
        remaining = record_count
        while remaining > 0:
            if self._idx >= len(self._blk):
                self._pull_block()
                if not self._blk:
                    raise StopIteration
            start = self._idx
            end = start + remaining
            blk_len = len(self._blk)
            if end > blk_len:
                end = blk_len
            cycles = self._run_block(_NO_LIMIT, end, cycles)
            remaining -= self._idx - start
        return cycles

    # ------------------------------------------------------------------ #
    # Block pull + precompute (cold relative to the per-record loop)
    # ------------------------------------------------------------------ #

    def _pull_block(self) -> None:
        """Pull up to ``block_records`` records and precompute flat index
        arrays for the whole block.

        Pulling runs ahead of execution; workload streams are pure
        generators (execution-independent), so read-ahead is unobservable.
        """
        blk = self._blk
        blk.clear()
        advance = self._advance
        try:
            for _ in range(self._block_records):
                blk.append(advance())
        except StopIteration:
            self._exhausted = True
        ttag = self._ttag
        if ttag:
            pcs = [r.pc | ttag for r in blk]
        else:
            pcs = [r.pc for r in blk]
        base_cpi = self._base_cpi
        npis = [r.num_instrs for r in blk]
        self._pcs = pcs
        self._vpns = [p >> PAGE_BITS for p in pcs]
        self._npis = npis
        self._cycs = [n * base_cpi for n in npis]
        self._idx = 0

    # ------------------------------------------------------------------ #
    # The batch loop (hot: see repro.lint manifest, RPR001)
    # ------------------------------------------------------------------ #

    def _run_block(
        self, limit: Union[int, float], end: int, cycles: float
    ) -> float:
        """Consume block records ``[idx, end)``; stop early at ``limit``.

        Probe-then-apply per record: the probe reads only the key/tag maps
        (no side effects) and classifies the record into a tier.  Deferred
        effects are committed before any state the spec machinery reads is
        reachable (see the module docstring), and always before returning,
        so statistics and structure state are exact at every return point.
        """
        blk = self._blk
        pcs = self._pcs
        vpns = self._vpns
        npis = self._npis
        cycs = self._cycs

        itlb_km = self._itlb_km
        itlb_sets = self._itlb_sets
        itlb_mask = self._itlb_mask
        itlb_stacks = self._itlb_stacks
        dtlb_km = self._dtlb_km
        dtlb_sets = self._dtlb_sets
        dtlb_mask = self._dtlb_mask
        dtlb_stacks = self._dtlb_stacks
        l1d = self._l1d
        l1i_tm = self._l1i_tm
        l1i_sets = self._l1i_sets
        l1i_smask = self._l1i_smask
        l1i_sshift = self._l1i_sshift
        l1i_lshift = self._l1i_lshift
        l1i_pshift = self._l1i_pshift
        l1i_stacks = self._l1i_stacks
        l1i_stats = self._l1i_stats
        l1i_assoc = self._l1i_assoc
        l1d_tm = self._l1d_tm
        l1d_sets = self._l1d_sets
        l1d_smask = self._l1d_smask
        l1d_sshift = self._l1d_sshift
        l1d_lshift = self._l1d_lshift
        l1d_pshift = self._l1d_pshift
        l1d_stacks = self._l1d_stacks
        fdip = self._fdip
        fdip_depth = self._fdip_depth
        seq_allowed = self._fdip_seq_ok
        nl = self._nl
        nl_degree = self._nl_degree
        pf_inline = self._pf_inline
        l2_tm = self._l2_tm
        l2_smask = self._l2_smask
        l2_sshift = self._l2_sshift
        l2_stats = self._l2_stats
        llc_tm = self._llc_tm
        llc_smask = self._llc_smask
        llc_sshift = self._llc_sshift
        llc_stats = self._llc_stats
        dram = self._dram
        dram_stats = self._dram_stats
        dram_cat = dram_stats.cat_accesses
        contention = self._contention
        free_rate = _FREE_RATE
        max_pressure = _MAX_PRESSURE
        chirp_observe = self._chirp_observe
        execute = self._execute
        core_data = self._core_data
        data_req = self._data_req
        adaptive_on = self._adaptive_on
        stats = self._stats
        per_thread = stats.per_thread_instructions
        tid = self._thread_id
        ttag = self._ttag
        it_s = self._it_s
        it_w = self._it_w
        dt_s = self._dt_s
        dt_w = self._dt_w
        ci_s = self._ci_s
        ci_w = self._ci_w
        cd_s = self._cd_s
        cd_w = self._cd_w
        ci_pend = self._ci_pend
        cd_pend = self._cd_pend
        sc = self._scratch
        size_2m = _SIZE_2M
        offmask = _PAGE_OFFSET_MASK
        lp_bits = LARGE_PAGE_BITS
        load_rt = _LOAD
        store_rt = _STORE

        acc_it = acc_dt = acc_ci = acc_cd = 0
        pf_i = pf_d = 0
        acc_inst = 0
        last_it_s = last_it_w = -1
        last_dt_s = last_dt_w = -1
        last_ci_s = last_ci_w = -1
        last_cd_s = last_cd_w = -1
        # Fetch/data translation caches (valid while no scalar machinery
        # can mutate TLB state) and the CHiRP same-page dedup register.
        last_vpn = -1
        last_ts = last_tw = last_pfn = 0
        last_dvpn = -1
        last_dts = last_dtw = last_dpfn = 0
        chirp_last = -1
        seq_clean = False
        fast = 0
        issued = 0
        # Inline-prefetch statistics accumulators (write-only counters;
        # committed once at return — see the module docstring).
        l2_pf = llc_pf = dram_n = 0
        pf_fill = evict_n = 0
        instructions = stats.instructions
        fdip_last = fdip._last_line if fdip is not None else -2
        wi = dram._window_instructions

        i = self._idx
        start = i
        while i < end:
            if instructions >= limit:
                break
            rec = blk[i]
            pc = pcs[i]
            vpn = vpns[i]
            loads = rec.loads
            stores = rec.stores
            # tier 0 = scalar fallback, 1 = deferred hits, 2 = hits + issue.
            tier = 0
            issue_i = False
            issue_d = False
            is_seq = False
            ts = tw = cs = cw = la = 0
            while True:  # single pass; break == stay on the chosen tier
                # Fetch probe: ITLB (4K key, then 2M key), then L1I.
                if vpn == last_vpn:
                    ts = last_ts
                    tw = last_tw
                    pfn = last_pfn
                else:
                    ts = vpn & itlb_mask
                    tw = itlb_km[ts].get(vpn << 1)
                    if tw is None:
                        vpn2 = pc >> lp_bits
                        ts = vpn2 & itlb_mask
                        tw = itlb_km[ts].get((vpn2 << 1) | 1)
                        if tw is None:
                            break
                    entry = itlb_sets[ts][tw]
                    pfn = entry.pfn
                    if entry.page_size is size_2m:
                        pfn += vpn & 0x1FF
                    last_vpn = vpn
                    last_ts = ts
                    last_tw = tw
                    last_pfn = pfn
                la = (pfn << l1i_pshift) | ((pc & offmask) >> l1i_lshift)
                cs = la & l1i_smask
                cw = l1i_tm[cs].get(la >> l1i_sshift)
                if cw is None:
                    break
                # FDIP window: an absent probe target means the prefetcher
                # would issue — still a full-hit record, but it must run on
                # the issuing tier.  After a sequential record, only the one
                # newly exposed line needs probing (seq_clean induction).
                is_seq = la == fdip_last + 1
                if fdip_depth:
                    if is_seq:
                        if seq_clean:
                            t = la + fdip_depth
                            if (t >> l1i_sshift) not in l1i_tm[t & l1i_smask]:
                                issue_i = True
                        else:
                            t = la + 1
                            tend = la + fdip_depth
                            while t <= tend:
                                if (t >> l1i_sshift) not in l1i_tm[t & l1i_smask]:
                                    issue_i = True
                                    break
                                t += 1
                    else:
                        t = la + 1
                        if (t >> l1i_sshift) not in l1i_tm[t & l1i_smask]:
                            issue_i = True
                    if issue_i and not pf_inline:
                        break
                # Data probes, loads before stores (scalar record order).
                if loads or stores:
                    sc.clear()
                    ok = True
                    for vaddr in loads:
                        va = vaddr | ttag
                        dvpn = va >> 12
                        if dvpn == last_dvpn:
                            dts = last_dts
                            dtw = last_dtw
                            dpfn = last_dpfn
                        else:
                            dts = dvpn & dtlb_mask
                            dtw = dtlb_km[dts].get(dvpn << 1)
                            if dtw is None:
                                dvpn2 = va >> lp_bits
                                dts = dvpn2 & dtlb_mask
                                dtw = dtlb_km[dts].get((dvpn2 << 1) | 1)
                                if dtw is None:
                                    ok = False
                                    break
                            de = dtlb_sets[dts][dtw]
                            dpfn = de.pfn
                            if de.page_size is size_2m:
                                dpfn += dvpn & 0x1FF
                            last_dvpn = dvpn
                            last_dts = dts
                            last_dtw = dtw
                            last_dpfn = dpfn
                        dla = (dpfn << l1d_pshift) | ((va & offmask) >> l1d_lshift)
                        dcs = dla & l1d_smask
                        dcw = l1d_tm[dcs].get(dla >> l1d_sshift)
                        if dcw is None:
                            ok = False
                            break
                        nl_ok = True
                        if nl_degree:
                            t2 = dla + 1
                            tend2 = dla + nl_degree
                            while t2 <= tend2:
                                if (t2 >> l1d_sshift) not in l1d_tm[t2 & l1d_smask]:
                                    nl_ok = False
                                    issue_d = True
                                    break
                                t2 += 1
                        sc.append((dts, dtw, dcs, dcw, dla, va, False, nl_ok))
                    if ok:
                        for vaddr in stores:
                            va = vaddr | ttag
                            dvpn = va >> 12
                            if dvpn == last_dvpn:
                                dts = last_dts
                                dtw = last_dtw
                                dpfn = last_dpfn
                            else:
                                dts = dvpn & dtlb_mask
                                dtw = dtlb_km[dts].get(dvpn << 1)
                                if dtw is None:
                                    dvpn2 = va >> lp_bits
                                    dts = dvpn2 & dtlb_mask
                                    dtw = dtlb_km[dts].get((dvpn2 << 1) | 1)
                                    if dtw is None:
                                        ok = False
                                        break
                                de = dtlb_sets[dts][dtw]
                                dpfn = de.pfn
                                if de.page_size is size_2m:
                                    dpfn += dvpn & 0x1FF
                                last_dvpn = dvpn
                                last_dts = dts
                                last_dtw = dtw
                                last_dpfn = dpfn
                            dla = (dpfn << l1d_pshift) | ((va & offmask) >> l1d_lshift)
                            dcs = dla & l1d_smask
                            dcw = l1d_tm[dcs].get(dla >> l1d_sshift)
                            if dcw is None:
                                ok = False
                                break
                            nl_ok = True
                            if nl_degree:
                                t2 = dla + 1
                                tend2 = dla + nl_degree
                                while t2 <= tend2:
                                    if (t2 >> l1d_sshift) not in l1d_tm[t2 & l1d_smask]:
                                        nl_ok = False
                                        issue_d = True
                                        break
                                    t2 += 1
                            sc.append((dts, dtw, dcs, dcw, dla, va, True, nl_ok))
                    if not ok:
                        break
                tier = 2 if (issue_i or issue_d) else 1
                break

            if tier == 1:
                # ---- deferred tier: buffer everything ------------------- #
                if chirp_observe is not None and vpn != chirp_last:
                    chirp_observe(vpn)
                    chirp_last = vpn
                if ts != last_it_s or tw != last_it_w:
                    it_s.append(ts)
                    it_w.append(tw)
                    last_it_s = ts
                    last_it_w = tw
                acc_it += 1
                line = l1i_sets[cs][cw]
                if line.prefetched:
                    line.prefetched = False
                    pf_i += 1
                if cs != last_ci_s or cw != last_ci_w:
                    ci_s.append(cs)
                    ci_w.append(cw)
                    ci_pend.add(cs)
                    last_ci_s = cs
                    last_ci_w = cw
                acc_ci += 1
                fdip_last = la
                if loads or stores:
                    for dts, dtw, dcs, dcw, dla, va, is_st, nl_ok in sc:
                        if dts != last_dt_s or dtw != last_dt_w:
                            dt_s.append(dts)
                            dt_w.append(dtw)
                            last_dt_s = dts
                            last_dt_w = dtw
                        acc_dt += 1
                        dline = l1d_sets[dcs][dcw]
                        if is_st:
                            dline.dirty = True
                        if dline.prefetched:
                            dline.prefetched = False
                            pf_d += 1
                        if dcs != last_cd_s or dcw != last_cd_w:
                            cd_s.append(dcs)
                            cd_w.append(dcw)
                            cd_pend.add(dcs)
                            last_cd_s = dcs
                            last_cd_w = dcw
                        acc_cd += 1
                n = npis[i]
                instructions += n
                acc_inst += n
                wi += n
                if wi >= 1000:
                    # note_instructions arithmetic, verbatim (wi >= 1000).
                    rate = dram._window_accesses * 1000 // wi
                    excess = rate - free_rate
                    if excess < 0:
                        excess = 0
                    pressure = excess / free_rate
                    if pressure > max_pressure:
                        pressure = max_pressure
                    dram._queue_delay = int(contention * pressure)
                    dram._window_accesses = 0
                    wi = 0
                cycles += cycs[i]
                fast += 1
                seq_clean = is_seq and seq_allowed
                i += 1
                continue

            if tier == 2:
                # ---- issuing tier: hits + prefetcher issues ------------- #
                if chirp_observe is not None and vpn != chirp_last:
                    chirp_observe(vpn)
                    chirp_last = vpn
                if ts != last_it_s or tw != last_it_w:
                    it_s.append(ts)
                    it_w.append(tw)
                    last_it_s = ts
                    last_it_w = tw
                acc_it += 1
                line = l1i_sets[cs][cw]
                if line.prefetched:
                    line.prefetched = False
                    pf_i += 1
                if cs != last_ci_s or cw != last_ci_w:
                    ci_s.append(cs)
                    ci_w.append(cw)
                    ci_pend.add(cs)
                    last_ci_s = cs
                    last_ci_w = cw
                acc_ci += 1
                if issue_i:
                    # FDIP issues: victim selection reads the target set's
                    # recency stack, so the touch buffer drains only when
                    # that set has pending touches (stacks are per-set, so
                    # touches on other sets commute past the fill); each
                    # absent window target is then brought in by the
                    # hand-inlined ``prefetch`` → ``_access_prefetch``
                    # chain (see the module docstring).
                    if is_seq:
                        tend = la + fdip_depth
                        t = tend if seq_clean else la + 1
                    else:
                        t = la + 1
                        tend = t
                    while t <= tend:
                        s2 = t & l1i_smask
                        tm = l1i_tm[s2]
                        tag = t >> l1i_sshift
                        if tag in tm:
                            t += 1
                            continue
                        if s2 in ci_pend:
                            bulk_touch(l1i_stacks, ci_s, ci_w)
                            ci_s.clear()
                            ci_w.clear()
                            ci_pend.clear()
                            last_ci_s = last_ci_w = -1
                        tlines = l1i_sets[s2]
                        if len(tm) < l1i_assoc:
                            way = 0
                            while tlines[way].valid:
                                way += 1
                            vline = tlines[way]
                        else:
                            stk = l1i_stacks[s2]
                            way = stk.lru_way
                            vline = tlines[way]
                            if vline.dirty:
                                # Unreachable for an L1I (never written);
                                # defer to the real machinery rather than
                                # replicate the writeback path inline.
                                self._l1i.prefetch(t, pc)
                                t += 1
                                continue
                            evict_n += 1
                            stk.discard(way)
                            del tm[vline.tag]
                        # Prefetch-through recursion: L2C and LLC probe and
                        # count but do not allocate; DRAM counts the access
                        # (category "d") and bumps the live bandwidth
                        # window; every latency is discarded off-demand.
                        l2_pf += 1
                        if (t >> l2_sshift) not in l2_tm[t & l2_smask]:
                            llc_pf += 1
                            if (t >> llc_sshift) not in llc_tm[t & llc_smask]:
                                dram_n += 1
                                dram._window_accesses += 1
                        # L1I fill (LRU pinned): overwrites every field the
                        # eviction's invalidate() would have reset.
                        vline.valid = True
                        vline.tag = tag
                        vline.dirty = False
                        vline.prefetched = True
                        vline.is_pte = False
                        vline.translation_type = None
                        tm[tag] = way
                        stk = l1i_stacks[s2]
                        stk.place_at_depth(way, 0)
                        pf_fill += 1
                        t += 1
                fdip_last = la
                data_stall = 0.0
                if issue_d:
                    # Next-line issues run through the real hook; STLB-miss
                    # events (data re-runs) and window arithmetic must see
                    # the committed instruction count first.
                    if acc_inst:
                        stats.instructions += acc_inst
                        per_thread[tid] = per_thread.get(tid, 0) + acc_inst
                        adaptive_on(acc_inst)
                        acc_inst = 0
                    clean = True
                    for dts, dtw, dcs, dcw, dla, va, is_st, nl_ok in sc:
                        if not clean:
                            # An earlier next-line fill may have evicted
                            # this op's line (or one of its targets):
                            # re-probe live state.
                            dcw2 = l1d_tm[dcs].get(dla >> l1d_sshift)
                            if dcw2 is None:
                                # Line gone: the op is a real miss now.
                                # Drain both L1D-side buffers (the re-run
                                # touches DTLB and L1D state directly) and
                                # hand the op to ``Core._data_access``,
                                # which translates — touch included — and
                                # runs the full miss machinery itself.
                                if dt_s:
                                    bulk_touch(dtlb_stacks, dt_s, dt_w)
                                    dt_s.clear()
                                    dt_w.clear()
                                    last_dt_s = last_dt_w = -1
                                if cd_s:
                                    bulk_touch(l1d_stacks, cd_s, cd_w)
                                    cd_s.clear()
                                    cd_w.clear()
                                    cd_pend.clear()
                                    last_cd_s = last_cd_w = -1
                                data_stall += core_data(va, pc, is_st)
                                last_dvpn = -1
                                continue
                            dcw = dcw2
                        if dts != last_dt_s or dtw != last_dt_w:
                            dt_s.append(dts)
                            dt_w.append(dtw)
                            last_dt_s = dts
                            last_dt_w = dtw
                        acc_dt += 1
                        dline = l1d_sets[dcs][dcw]
                        if is_st:
                            dline.dirty = True
                        if dline.prefetched:
                            dline.prefetched = False
                            pf_d += 1
                        if dcs != last_cd_s or dcw != last_cd_w:
                            cd_s.append(dcs)
                            cd_w.append(dcw)
                            cd_pend.add(dcs)
                            last_cd_s = dcs
                            last_cd_w = dcw
                        acc_cd += 1
                        if nl_ok and clean:
                            continue
                        # The hook probes live state itself, so calling it
                        # is exact whether or not targets remain absent;
                        # fills read the target sets' recency stacks, so
                        # the buffer drains only when one of them has
                        # pending touches (per-set commutativity again).
                        step = 1
                        while step <= nl_degree:
                            if ((dla + step) & l1d_smask) in cd_pend:
                                bulk_touch(l1d_stacks, cd_s, cd_w)
                                cd_s.clear()
                                cd_w.clear()
                                cd_pend.clear()
                                last_cd_s = last_cd_w = -1
                                break
                            step += 1
                        req = data_req
                        req.address = dla << l1d_lshift
                        req.req_type = store_rt if is_st else load_rt
                        req.pc = pc
                        nl.on_access(l1d, req, True)
                        clean = False
                elif loads or stores:
                    for dts, dtw, dcs, dcw, dla, va, is_st, nl_ok in sc:
                        if dts != last_dt_s or dtw != last_dt_w:
                            dt_s.append(dts)
                            dt_w.append(dtw)
                            last_dt_s = dts
                            last_dt_w = dtw
                        acc_dt += 1
                        dline = l1d_sets[dcs][dcw]
                        if is_st:
                            dline.dirty = True
                        if dline.prefetched:
                            dline.prefetched = False
                            pf_d += 1
                        if dcs != last_cd_s or dcw != last_cd_w:
                            cd_s.append(dcs)
                            cd_w.append(dcw)
                            cd_pend.add(dcs)
                            last_cd_s = dcs
                            last_cd_w = dcw
                        acc_cd += 1
                n = npis[i]
                instructions += n
                acc_inst += n
                wi += n
                if wi >= 1000:
                    rate = dram._window_accesses * 1000 // wi
                    excess = rate - free_rate
                    if excess < 0:
                        excess = 0
                    pressure = excess / free_rate
                    if pressure > max_pressure:
                        pressure = max_pressure
                    dram._queue_delay = int(contention * pressure)
                    dram._window_accesses = 0
                    wi = 0
                cycles += cycs[i] + data_stall
                issued += 1
                seq_clean = is_seq and seq_allowed
                i += 1
                continue

            # ---- scalar fallback: flush deferred state, run the spec ---- #
            if it_s:
                bulk_touch(itlb_stacks, it_s, it_w)
                it_s.clear()
                it_w.clear()
                last_it_s = last_it_w = -1
            if dt_s:
                bulk_touch(dtlb_stacks, dt_s, dt_w)
                dt_s.clear()
                dt_w.clear()
                last_dt_s = last_dt_w = -1
            if ci_s:
                bulk_touch(l1i_stacks, ci_s, ci_w)
                ci_s.clear()
                ci_w.clear()
                ci_pend.clear()
                last_ci_s = last_ci_w = -1
            if cd_s:
                bulk_touch(l1d_stacks, cd_s, cd_w)
                cd_s.clear()
                cd_w.clear()
                cd_pend.clear()
                last_cd_s = last_cd_w = -1
            if acc_inst:
                stats.instructions += acc_inst
                per_thread[tid] = per_thread.get(tid, 0) + acc_inst
                adaptive_on(acc_inst)
                acc_inst = 0
            dram._window_instructions = wi
            if fdip is not None:
                fdip._last_line = fdip_last
            cycles += execute(rec)
            instructions = stats.instructions
            wi = dram._window_instructions
            if fdip is not None:
                fdip_last = fdip._last_line
            last_vpn = -1
            last_dvpn = -1
            chirp_last = vpn
            seq_clean = False
            i += 1

        # ---- block epilogue: drain buffers, commit accumulators --------- #
        if it_s:
            bulk_touch(itlb_stacks, it_s, it_w)
            it_s.clear()
            it_w.clear()
        if dt_s:
            bulk_touch(dtlb_stacks, dt_s, dt_w)
            dt_s.clear()
            dt_w.clear()
        if ci_s:
            bulk_touch(l1i_stacks, ci_s, ci_w)
            ci_s.clear()
            ci_w.clear()
            ci_pend.clear()
        if cd_s:
            bulk_touch(l1d_stacks, cd_s, cd_w)
            cd_s.clear()
            cd_w.clear()
            cd_pend.clear()
        if acc_inst:
            stats.instructions += acc_inst
            per_thread[tid] = per_thread.get(tid, 0) + acc_inst
            adaptive_on(acc_inst)
        dram._window_instructions = wi
        if fdip is not None:
            fdip._last_line = fdip_last
        if acc_it:
            itlb_stats = self._itlb_stats
            itlb_stats.accesses += acc_it
            itlb_stats.hits += acc_it
            itlb_stats.cat_accesses["i"] += acc_it
        if acc_dt:
            dtlb_stats = self._dtlb_stats
            dtlb_stats.accesses += acc_dt
            dtlb_stats.hits += acc_dt
            dtlb_stats.cat_accesses["d"] += acc_dt
        if acc_ci:
            l1i_stats.accesses += acc_ci
            l1i_stats.hits += acc_ci
            l1i_stats.cat_accesses["i"] += acc_ci
        if pf_i:
            l1i_stats.prefetch_hits += pf_i
        if acc_cd:
            l1d_stats = self._l1d_stats
            l1d_stats.accesses += acc_cd
            l1d_stats.hits += acc_cd
            l1d_stats.cat_accesses["d"] += acc_cd
        if pf_d:
            l1d_stats.prefetch_hits += pf_d
        if pf_fill:
            l1i_stats.prefetch_fills += pf_fill
        if evict_n:
            l1i_stats.evictions += evict_n
        if l2_pf:
            l2_stats.prefetch_requests += l2_pf
        if llc_pf:
            llc_stats.prefetch_requests += llc_pf
        if dram_n:
            dram_stats.accesses += dram_n
            dram_cat["d"] += dram_n
        self._idx = i
        self.fast_records += fast
        self.issue_records += issued
        self.total_records += i - start
        return cycles
