"""Execution engines: how trace records are driven through the machine.

Two engines produce bit-identical :class:`~repro.common.stats.SimStats`:

* ``spec`` — the scalar reference path (``Core.execute`` per record), the
  executable specification and the default;
* ``batched`` — the block-batched kernel in :mod:`repro.kernel.batched`:
  records are pulled in blocks, derived indices are precomputed as flat
  arrays, and records that fully hit in the L1 TLBs and L1 caches are
  resolved on an allocation-free fast path with deferred (bulk-applied)
  recency bumps.  Every record with any other behaviour falls back to the
  scalar machinery, so all policy semantics stay in exactly one place.

Select an engine per call (``engine=`` on the simulation drivers, ``--engine``
on the CLIs) or process-wide with the ``REPRO_ENGINE`` environment variable;
an explicit argument wins over the environment.
"""

from __future__ import annotations

import os
from typing import Optional

from .batched import DEFAULT_BLOCK_RECORDS, BatchedEngine

#: Environment variable naming the default engine for this process.
ENGINE_ENV = "REPRO_ENGINE"

#: Available engine names; ``spec`` is the executable specification.
ENGINES = ("spec", "batched")

DEFAULT_ENGINE = "spec"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine name: explicit argument > ``REPRO_ENGINE`` > spec."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "").strip().lower() or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; available: {', '.join(ENGINES)}"
        )
    return engine


__all__ = [
    "BatchedEngine",
    "DEFAULT_BLOCK_RECORDS",
    "DEFAULT_ENGINE",
    "ENGINE_ENV",
    "ENGINES",
    "resolve_engine",
]
