"""Trace serialization.

The paper's artifact ships ``*.champsimtrace.xz`` files; our equivalent is
a compact binary format for captured synthetic traces, so experiments can
be replayed bit-identically without regenerating them.

Format: little-endian records of
``<pc:u64><num_instrs:u8><num_loads:u8><num_stores:u8>`` followed by
``num_loads + num_stores`` u64 addresses.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..common.types import TraceRecord
from .base import SyntheticWorkload

_HEADER = struct.Struct("<QBBB")
_ADDR = struct.Struct("<Q")
MAGIC = b"RPTR1\x00"


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records to ``path``; returns the number of records written."""
    count = 0
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        for record in records:
            if not 0 < record.num_instrs < 256:
                raise ValueError("num_instrs must fit in a byte and be positive")
            fh.write(
                _HEADER.pack(
                    record.pc, record.num_instrs, len(record.loads), len(record.stores)
                )
            )
            for addr in record.loads:
                fh.write(_ADDR.pack(addr))
            for addr in record.stores:
                fh.write(_ADDR.pack(addr))
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records back from a trace file."""
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path}: not a repro trace file")
        while True:
            header = fh.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                raise ValueError(f"{path}: truncated record header")
            pc, num_instrs, num_loads, num_stores = _HEADER.unpack(header)
            addrs: List[int] = []
            for _ in range(num_loads + num_stores):
                raw = fh.read(_ADDR.size)
                if len(raw) < _ADDR.size:
                    raise ValueError(f"{path}: truncated address list")
                addrs.append(_ADDR.unpack(raw)[0])
            yield TraceRecord(
                pc, num_instrs, tuple(addrs[:num_loads]), tuple(addrs[num_loads:])
            )


class FileTraceWorkload(SyntheticWorkload):
    """A workload replayed from a trace file written by :func:`write_trace`.

    The stream loops over the file so warmup + measurement windows longer
    than the capture are still serviceable.
    """

    def __init__(
        self, name: str, path: Union[str, Path], large_page_percent: int = 0, seed: int = 0
    ) -> None:
        super().__init__(name, seed, large_page_percent)
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(self.path)

    def record_stream(self) -> Iterator[TraceRecord]:
        while True:
            empty = True
            for record in read_trace(self.path):
                empty = False
                yield record
            if empty:
                raise ValueError(f"{self.path}: trace contains no records")


def capture(workload: SyntheticWorkload, path: Union[str, Path], records: int) -> int:
    """Capture the first ``records`` records of ``workload`` to ``path``."""
    stream = workload.record_stream()
    return write_trace(path, (next(stream) for _ in range(records)))
