"""Phase-alternating workload for the adaptive xPTP ablation (Section 4.3.1).

Alternates between a high-STLB-pressure server phase and a low-pressure
phase whose working set fits the TLB hierarchy, so a fixed-on xPTP hurts
the quiet phases and the adaptive switch should recover the loss.
"""

from __future__ import annotations

from typing import Iterator

from ..common.types import TraceRecord
from .base import SyntheticWorkload
from .server import ServerWorkload
from .speclike import SpecLikeWorkload


class PhasedWorkload(SyntheticWorkload):
    """Interleaves phases of two sub-workloads at a fixed record period."""

    def __init__(
        self,
        name: str,
        seed: int,
        phase_records: int = 20000,
        large_page_percent: int = 0,
    ) -> None:
        super().__init__(name, seed, large_page_percent)
        self.phase_records = phase_records
        self.pressure = ServerWorkload(
            f"{name}_hi", seed, large_page_percent=large_page_percent,
        )
        # The quiet phase's working set is sized to *just* fit the scaled
        # L2C: if stale data-PTE lines from the pressure phase stay pinned
        # (xPTP always-on), it overflows — exactly the situation the
        # adaptive switch exists to avoid.
        self.quiet = SpecLikeWorkload(
            f"{name}_lo", seed + 7, code_pages=28, loop_lines=192,
            data_pages=256, hot_data_pages=26, hot_fraction=0.92,
            large_page_percent=large_page_percent,
        )

    def record_stream(self) -> Iterator[TraceRecord]:
        high = self.pressure.record_stream()
        low = self.quiet.record_stream()
        while True:
            for _ in range(self.phase_records):
                yield next(high)
            for _ in range(self.phase_records):
                yield next(low)
