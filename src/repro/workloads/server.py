"""Qualcomm-Server-like synthetic workloads (DESIGN.md §3 substitution).

The CVP-1/IPC-1 server traces the paper uses are characterised by:

* instruction footprints of several MB — thousands of 4 KB code pages with
  Zipf-distributed function popularity and sequential intra-function fetch
  (BOLT/AsmDB-style behaviour [14, 61]);
* data footprints of tens of thousands of pages mixing a hot set, streaming
  scans and per-function locals;
* STLB MPKI ≥ 1 with instruction STLB MPKI up to ≈0.9 (Figure 2).

The generator below reproduces those distributional properties.  Code is
partitioned into functions (contiguous runs of fetch lines); execution
repeatedly samples a function from a Zipf-permuted popularity distribution,
optionally loops over its body, and issues loads/stores against hot,
streaming and local data regions.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..common.types import CACHE_LINE_BYTES, PAGE_BYTES, TraceRecord
from ._rand import BatchedChoice, BatchedInts, BatchedUniform
from .base import (
    CODE_BASE,
    DATA_BASE,
    LOCAL_BASE,
    STREAM_BASE,
    WARM_BASE,
    SyntheticWorkload,
    sparse_vaddr,
)

LINES_PER_PAGE = PAGE_BYTES // CACHE_LINE_BYTES


class ServerWorkload(SyntheticWorkload):
    """Big-code server workload generator."""

    def __init__(
        self,
        name: str,
        seed: int,
        code_pages: int = 640,
        data_pages: int = 16000,
        hot_data_pages: int = 192,
        zipf_alpha: float = 1.05,
        hot_zipf_alpha: float = 1.4,
        instrs_per_line: int = 4,
        load_probability: float = 0.35,
        store_probability: float = 0.15,
        hot_fraction: float = 0.68,
        local_fraction: float = 0.15,
        warm_fraction: float = 0.08,
        warm_pages: int = 4800,
        page_reuse_probability: float = 0.8,
        lines_per_hot_page: int = 4,
        local_pages: int = 64,
        loop_probability: float = 0.5,
        min_function_lines: int = 4,
        max_function_lines: int = 48,
        large_page_percent: int = 0,
    ) -> None:
        super().__init__(name, seed, large_page_percent)
        if code_pages <= 0 or data_pages <= 0:
            raise ValueError("footprints must be positive")
        if hot_data_pages > data_pages:
            raise ValueError("hot set cannot exceed the data footprint")
        if warm_pages > data_pages - hot_data_pages:
            raise ValueError("warm set cannot exceed the non-hot data footprint")
        if hot_fraction + local_fraction + warm_fraction > 1.0:
            raise ValueError("access-mix fractions must sum to at most 1")
        self.code_pages = code_pages
        self.data_pages = data_pages
        self.hot_data_pages = hot_data_pages
        self.zipf_alpha = zipf_alpha
        self.hot_zipf_alpha = hot_zipf_alpha
        self.instrs_per_line = instrs_per_line
        self.load_probability = load_probability
        self.store_probability = store_probability
        self.hot_fraction = hot_fraction
        self.local_fraction = local_fraction
        self.warm_fraction = warm_fraction
        self.warm_pages = warm_pages
        self.page_reuse_probability = page_reuse_probability
        self.lines_per_hot_page = lines_per_hot_page
        self.local_pages = local_pages
        self.loop_probability = loop_probability
        self.min_function_lines = min_function_lines
        self.max_function_lines = max_function_lines
        self._functions = self._build_functions()

    # ------------------------------------------------------------------ #

    def _build_functions(self) -> List[Tuple[int, int]]:
        """Partition the code region into (start_line, num_lines) functions."""
        rng = np.random.default_rng(self.seed)
        total_lines = self.code_pages * LINES_PER_PAGE
        functions: List[Tuple[int, int]] = []
        line = 0
        while line < total_lines:
            length = int(rng.integers(self.min_function_lines, self.max_function_lines + 1))
            length = min(length, total_lines - line)
            functions.append((line, length))
            line += length
        return functions

    def _zipf_weights(self, rng: np.random.Generator) -> np.ndarray:
        count = len(self._functions)
        ranks = rng.permutation(count) + 1
        weights = 1.0 / np.power(ranks, self.zipf_alpha)
        return weights / weights.sum()

    # ------------------------------------------------------------------ #

    def record_stream(self) -> Iterator[TraceRecord]:
        rng = np.random.default_rng(self.seed + 1)
        weights = self._zipf_weights(rng)
        func_count = len(self._functions)
        stream_bytes = (
            self.data_pages - self.hot_data_pages - self.warm_pages
        ) * PAGE_BYTES
        stream_cursor = 0

        # Hot-page popularity is itself skewed so a subset is STLB-resident.
        hot_ranks = rng.permutation(self.hot_data_pages) + 1
        hot_weights = 1.0 / np.power(hot_ranks, self.hot_zipf_alpha)
        hot_weights /= hot_weights.sum()

        coin = BatchedUniform(rng)
        pick_function = BatchedChoice(rng, func_count, weights)
        pick_hot_page = BatchedChoice(rng, self.hot_data_pages, hot_weights)
        # Hot structures occupy the first lines of their page: page-level
        # footprint for the TLB, line-level locality for the caches.
        pick_offset = BatchedInts(rng, self.lines_per_hot_page * CACHE_LINE_BYTES // 8)
        pick_local = BatchedInts(rng, 64)
        # Warm region: a large page working set with near-uniform reuse —
        # these are the data pages whose walks dominate STLB miss latency.
        pick_warm_page = BatchedInts(rng, self.warm_pages)
        current_hot_page = 0

        # Hot-loop bindings: one record per iteration, so every attribute
        # lookup in here is paid tens of thousands of times per cell.
        coin_next = coin.next
        pick_function_next = pick_function.next
        pick_hot_page_next = pick_hot_page.next
        pick_offset_next = pick_offset.next
        pick_local_next = pick_local.next
        pick_warm_page_next = pick_warm_page.next
        functions = self._functions
        instrs_per_line = self.instrs_per_line
        load_probability = self.load_probability
        store_probability = self.store_probability
        hot_fraction = self.hot_fraction
        hot_local_fraction = self.hot_fraction + self.local_fraction
        hot_local_warm_fraction = hot_local_fraction + self.warm_fraction
        page_reuse_probability = self.page_reuse_probability
        loop_probability = self.loop_probability
        local_pages = self.local_pages

        while True:
            func_id = pick_function_next()
            start_line, num_lines = functions[func_id]
            repeats = 1
            if coin_next() < loop_probability:
                repeats = 2 if coin_next() < 0.7 else 3
            local_page = func_id % local_pages
            for _ in range(repeats):
                for line in range(start_line, start_line + num_lines):
                    # Code is densely laid out: binaries are contiguous, so
                    # instruction leaf-PTE lines are shared by 8 neighbouring
                    # pages and PSCL2 covers the whole text segment.
                    pc = CODE_BASE + line * CACHE_LINE_BYTES
                    loads: Tuple[int, ...] = ()
                    stores: Tuple[int, ...] = ()
                    if coin_next() < load_probability:
                        select = coin_next()
                        if select < hot_fraction:
                            # Page-burst behaviour: consecutive hot accesses
                            # tend to stay on the same data page.
                            if coin_next() >= page_reuse_probability:
                                current_hot_page = pick_hot_page_next()
                            addr = sparse_vaddr(
                                DATA_BASE, current_hot_page, pick_offset_next() * 8
                            )
                        elif select < hot_local_fraction:
                            addr = sparse_vaddr(
                                LOCAL_BASE, local_page, pick_local_next() * 8
                            )
                        elif select < hot_local_warm_fraction:
                            addr = sparse_vaddr(
                                WARM_BASE, pick_warm_page_next(), pick_offset_next() * 8
                            )
                        else:
                            addr = STREAM_BASE + stream_cursor
                            stream_cursor = (stream_cursor + CACHE_LINE_BYTES) % stream_bytes
                        loads = (addr,)
                    if coin_next() < store_probability:
                        stores = (
                            sparse_vaddr(LOCAL_BASE, local_page, pick_local_next() * 8),
                        )
                    yield TraceRecord(pc, instrs_per_line, loads, stores)


def server_suite(
    count: int = 8, *, large_page_percent: int = 0, base_seed: int = 100
) -> List[ServerWorkload]:
    """A spread of server workloads with varying footprints and pressure.

    Stands in for the paper's 120 Qualcomm Server traces (DESIGN.md §3):
    seeds and footprints vary so the distribution of results has spread,
    and all workloads exercise heavy STLB pressure (the paper's selection
    criterion is STLB MPKI ≥ 1 under the LRU baseline).  Parameters are
    sized for the 1/4-scale system of ``scaled_config()``.
    """
    workloads: List[ServerWorkload] = []
    for i in range(count):
        workloads.append(
            ServerWorkload(
                name=f"srv_{i:02d}",
                seed=base_seed + i,
                code_pages=512 + 64 * (i % 5),
                data_pages=14000 + 2000 * (i % 3),
                hot_data_pages=160 + 32 * (i % 3),
                zipf_alpha=1.0 + 0.05 * (i % 3),
                warm_pages=4000 + 400 * (i % 4),
                warm_fraction=0.07 + 0.01 * (i % 3),
                large_page_percent=large_page_percent,
            )
        )
    return workloads
