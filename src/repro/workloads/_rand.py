"""Batched deterministic random sources for trace generators.

Drawing one NumPy random per record is slow; these helpers draw large
batches and hand out values one at a time.  Each batch is converted to a
plain Python list up front (``ndarray.tolist``), so ``next`` is a list
index instead of a NumPy scalar extraction plus an int()/float() cast —
the values are bit-identical either way.
"""

from __future__ import annotations

import numpy as np


class BatchedUniform:
    """Stream of U[0,1) floats drawn in batches."""

    def __init__(self, rng: np.random.Generator, batch: int = 65536) -> None:
        self._rng = rng
        self._batch = batch
        self._values = rng.random(batch).tolist()
        self._pos = 0

    def next(self) -> float:
        pos = self._pos
        if pos >= self._batch:
            self._values = self._rng.random(self._batch).tolist()
            pos = 0
        self._pos = pos + 1
        return self._values[pos]


class BatchedChoice:
    """Stream of weighted integer choices drawn in batches."""

    def __init__(
        self, rng: np.random.Generator, count: int, weights, batch: int = 16384
    ) -> None:
        self._rng = rng
        self._count = count
        self._weights = weights
        self._batch = batch
        self._values = rng.choice(count, size=batch, p=weights).tolist()
        self._pos = 0

    def next(self) -> int:
        pos = self._pos
        if pos >= self._batch:
            self._values = self._rng.choice(
                self._count, size=self._batch, p=self._weights
            ).tolist()
            pos = 0
        self._pos = pos + 1
        return self._values[pos]


class BatchedInts:
    """Stream of uniform integers in [0, high)."""

    def __init__(self, rng: np.random.Generator, high: int, batch: int = 65536) -> None:
        self._rng = rng
        self._high = high
        self._batch = batch
        self._values = rng.integers(0, high, size=batch).tolist()
        self._pos = 0

    def next(self) -> int:
        pos = self._pos
        if pos >= self._batch:
            self._values = self._rng.integers(0, self._high, size=self._batch).tolist()
            pos = 0
        self._pos = pos + 1
        return self._values[pos]
