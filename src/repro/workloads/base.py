"""Workload abstraction.

A workload supplies a restartable stream of :class:`TraceRecord` fetch
groups plus the page-size policy for its address space (which fraction of
the code/data footprint lives on 2 MB pages — Section 6.5).

Virtual address layout (per thread; the simulator adds a per-thread tag in
high bits for SMT co-location):

* code:   ``CODE_BASE``  + byte offset
* data:   ``DATA_BASE``  + byte offset
* locals: ``LOCAL_BASE`` + byte offset (per-function scratch)
"""

from __future__ import annotations

import abc
from typing import Iterator

from ..common.types import PAGE_BYTES, PageSize, TraceRecord

CODE_BASE = 0x0040_0000_0000
DATA_BASE = 0x0080_0000_0000    # hot set
WARM_BASE = 0x00A0_0000_0000
STREAM_BASE = 0x00C0_0000_0000
LOCAL_BASE = 0x00E0_0000_0000

#: Used pages per 2 MB virtual region in the sparse layout (see sparse_vaddr).
PAGES_PER_REGION = 8
_REGION_BYTES = 2 * 1024 * 1024


def sparse_vaddr(base: int, page_index: int, offset: int = 0) -> int:
    """Virtual address of ``offset`` within the ``page_index``-th page of a
    sparsely laid-out region.

    Server heaps sprawl: allocations land in many distinct 2 MB regions
    rather than one dense range.  We model this by placing only
    ``PAGES_PER_REGION`` consecutive 4 KB pages in each 2 MB region.  This
    matters for two paper-relevant behaviours: (i) page-structure caches
    stop short-circuiting every walk (a PSCL2 entry covers one 2 MB region,
    so footprints spanning many regions miss the 32-entry PSCL2 and walks
    need 2+ memory references); (ii) a 2 MB page allocation (Section 6.5)
    still collapses the region's pages into one TLB entry.
    """
    region, slot = divmod(page_index, PAGES_PER_REGION)
    # The cluster of used pages sits at a per-region hashed position inside
    # the 2 MB region, so leaf-PTE lines spread across cache sets instead of
    # aliasing at table index 0 (real heap clusters start anywhere).
    start = (region * _HASH_MULT >> 8) % (512 - PAGES_PER_REGION)
    return base + region * _REGION_BYTES + (start + slot) * PAGE_BYTES + offset

#: Knuth multiplicative hash constant for the deterministic large-page lottery.
_HASH_MULT = 2654435761


def region_is_large(vaddr: int, percent: int, salt: int = 0) -> bool:
    """Deterministically decide if the 2 MB region of ``vaddr`` uses a 2 MB page.

    The lottery is per 2 MB-aligned region so a region is either entirely
    backed by one large page or entirely by 4 KB pages, matching how the
    multi-page-size methodology of prior work [37, 82] assigns footprint
    portions.
    """
    if percent <= 0:
        return False
    if percent >= 100:
        return True
    region = vaddr >> 21
    return ((region + salt) * _HASH_MULT >> 16) % 100 < percent


class SyntheticWorkload(abc.ABC):
    """Base class for generated workloads."""

    def __init__(self, name: str, seed: int, large_page_percent: int = 0) -> None:
        self.name = name
        self.seed = seed
        if not 0 <= large_page_percent <= 100:
            raise ValueError("large_page_percent must be in [0, 100]")
        self.large_page_percent = large_page_percent

    @abc.abstractmethod
    def record_stream(self) -> Iterator[TraceRecord]:
        """Fresh, deterministic iterator over trace records."""

    def size_policy(self, vaddr: int) -> PageSize:
        """Page size backing ``vaddr`` (the simulator passes this to the page table)."""
        if region_is_large(vaddr, self.large_page_percent, salt=self.seed):
            return PageSize.SIZE_2M
        return PageSize.SIZE_4K

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} seed={self.seed}>"
