"""SPEC-CPU-like synthetic workloads (DESIGN.md §3 substitution).

SPEC 2006/2017 binaries have instruction footprints of tens of KB — they
fit comfortably in a 64-entry ITLB (Figures 1–2 measure ≈0.03 % of cycles
in instruction translation and near-zero instruction STLB MPKI).  Their
memory behaviour is data-dominated: loops over large arrays with strided
and hot-set access.

The generator runs a small set of tight loops (a handful of code pages)
against a large data footprint, giving exactly that contrast with
:class:`ServerWorkload`.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..common.types import CACHE_LINE_BYTES, PAGE_BYTES, TraceRecord
from ._rand import BatchedInts, BatchedUniform
from .base import CODE_BASE, DATA_BASE, SyntheticWorkload


class SpecLikeWorkload(SyntheticWorkload):
    """Small-code, data-dominated workload generator."""

    def __init__(
        self,
        name: str,
        seed: int,
        code_pages: int = 6,
        data_pages: int = 4000,
        hot_data_pages: int = 128,
        loop_lines: int = 24,
        instrs_per_line: int = 4,
        load_probability: float = 0.5,
        store_probability: float = 0.12,
        hot_fraction: float = 0.5,
        stride_lines: int = 1,
        large_page_percent: int = 0,
    ) -> None:
        super().__init__(name, seed, large_page_percent)
        if hot_data_pages > data_pages:
            raise ValueError("hot set cannot exceed the data footprint")
        self.code_pages = code_pages
        self.data_pages = data_pages
        self.hot_data_pages = hot_data_pages
        self.loop_lines = loop_lines
        self.instrs_per_line = instrs_per_line
        self.load_probability = load_probability
        self.store_probability = store_probability
        self.hot_fraction = hot_fraction
        self.stride_lines = stride_lines

    def record_stream(self) -> Iterator[TraceRecord]:
        rng = np.random.default_rng(self.seed + 1)
        lines_total = self.code_pages * (PAGE_BYTES // CACHE_LINE_BYTES)
        coin = BatchedUniform(rng)
        pick_hot = BatchedInts(rng, self.hot_data_pages)
        pick_offset = BatchedInts(rng, PAGE_BYTES // 8)
        pick_loop_start = BatchedInts(rng, max(1, lines_total - self.loop_lines))
        pick_trip = BatchedInts(rng, 48)

        hot_bytes = self.hot_data_pages * PAGE_BYTES
        stream_bytes = (self.data_pages - self.hot_data_pages) * PAGE_BYTES
        cursor = 0

        while True:
            start = pick_loop_start.next()
            trip_count = 8 + pick_trip.next()
            for _ in range(trip_count):
                for line in range(start, start + self.loop_lines):
                    pc = CODE_BASE + (line % lines_total) * CACHE_LINE_BYTES
                    loads: Tuple[int, ...] = ()
                    stores: Tuple[int, ...] = ()
                    if coin.next() < self.load_probability:
                        if coin.next() < self.hot_fraction:
                            addr = (
                                DATA_BASE
                                + pick_hot.next() * PAGE_BYTES
                                + pick_offset.next() * 8
                            )
                        else:
                            addr = DATA_BASE + hot_bytes + cursor
                            cursor = (
                                cursor + self.stride_lines * CACHE_LINE_BYTES
                            ) % stream_bytes
                        loads = (addr,)
                    if coin.next() < self.store_probability:
                        stores = (
                            DATA_BASE + pick_hot.next() * PAGE_BYTES + pick_offset.next() * 8,
                        )
                    yield TraceRecord(pc, self.instrs_per_line, loads, stores)


def spec_suite(count: int = 5, *, base_seed: int = 500) -> list:
    """A spread of SPEC-like workloads for the motivation studies."""
    suite = []
    for i in range(count):
        suite.append(
            SpecLikeWorkload(
                name=f"spec_{i:02d}",
                seed=base_seed + i,
                code_pages=4 + 2 * (i % 3),
                data_pages=3000 + 1500 * (i % 3),
                hot_data_pages=96 + 32 * (i % 4),
                loop_lines=16 + 8 * (i % 3),
            )
        )
    return suite
