"""SMT workload mixes (Section 5.2).

The paper builds 75 two-thread pairs in three categories:

* **Intense**: two workloads with high STLB MPKI (> 1.5 each);
* **Medium**: one high- plus one medium-pressure workload;
* **Relaxed**: one high- plus one low-pressure workload.

Pressure here is controlled by construction (footprint sizes) rather than
measured post-hoc, which keeps the categories deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .base import SyntheticWorkload
from .server import ServerWorkload
from .speclike import SpecLikeWorkload


@dataclass(frozen=True)
class SMTMix:
    name: str
    category: str
    thread0: SyntheticWorkload
    thread1: SyntheticWorkload

    @property
    def workloads(self) -> Tuple[SyntheticWorkload, SyntheticWorkload]:
        return (self.thread0, self.thread1)


def _high(seed: int, large_page_percent: int = 0) -> ServerWorkload:
    return ServerWorkload(
        f"hi_{seed}", seed, code_pages=704, data_pages=18000, warm_pages=5200,
        warm_fraction=0.07, large_page_percent=large_page_percent,
    )


def _medium(seed: int, large_page_percent: int = 0) -> ServerWorkload:
    return ServerWorkload(
        f"md_{seed}", seed, code_pages=320, data_pages=8000, warm_pages=2000,
        warm_fraction=0.04, large_page_percent=large_page_percent,
    )


def _low(seed: int, large_page_percent: int = 0) -> SpecLikeWorkload:
    return SpecLikeWorkload(
        f"lo_{seed}", seed, code_pages=4, data_pages=1500, hot_data_pages=96,
        large_page_percent=large_page_percent,
    )


def smt_mixes(
    per_category: int = 3, *, base_seed: int = 900, large_page_percent: int = 0
) -> List[SMTMix]:
    """Build the three mix categories; stands in for the paper's 75 pairs."""
    mixes: List[SMTMix] = []
    for i in range(per_category):
        s = base_seed + 10 * i
        mixes.append(
            SMTMix(
                f"intense_{i}", "intense",
                _high(s, large_page_percent), _high(s + 1, large_page_percent),
            )
        )
        mixes.append(
            SMTMix(
                f"medium_{i}", "medium",
                _high(s + 2, large_page_percent), _medium(s + 3, large_page_percent),
            )
        )
        mixes.append(
            SMTMix(
                f"relaxed_{i}", "relaxed",
                _high(s + 4, large_page_percent), _low(s + 5, large_page_percent),
            )
        )
    return mixes
