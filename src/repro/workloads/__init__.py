"""Synthetic workload generators and trace I/O.

These stand in for the Qualcomm Server (CVP-1/IPC-1) and SPEC CPU 2006/2017
traces of the paper — see DESIGN.md §3 for the substitution rationale.
"""

from .base import CODE_BASE, DATA_BASE, LOCAL_BASE, SyntheticWorkload, region_is_large
from .mixes import SMTMix, smt_mixes
from .phased import PhasedWorkload
from .server import ServerWorkload, server_suite
from .speclike import SpecLikeWorkload, spec_suite
from .trace_io import FileTraceWorkload, capture, read_trace, write_trace

__all__ = [
    "CODE_BASE",
    "DATA_BASE",
    "FileTraceWorkload",
    "LOCAL_BASE",
    "PhasedWorkload",
    "SMTMix",
    "ServerWorkload",
    "SpecLikeWorkload",
    "SyntheticWorkload",
    "capture",
    "read_trace",
    "region_is_large",
    "server_suite",
    "smt_mixes",
    "spec_suite",
    "write_trace",
]
