"""The execution fabric: jobs, store, backends, scheduler, facade API.

The fabric decomposes experiment execution into four seams (see
``docs/fabric.md``):

* :mod:`repro.fabric.jobs` — what a cell *is*: :class:`SimJob`,
  content-addressed :func:`job_key` identity, workload fingerprints;
* :mod:`repro.fabric.store` — the shared artifact store: the
  integrity-checked on-disk :class:`ResultCache`;
* :mod:`repro.fabric.backends` — where attempts run: the
  :class:`Backend` protocol with serial / thread / process-pool
  implementations (``Backend.execute`` anchors lint rule RPR008's
  worker-determinism closure);
* :mod:`repro.fabric.scheduler` — the submission queue: many concurrent
  matrices deduplicated by ``job_key``, retry/timeout/failure policy per
  unique cell, streaming delivery via ``Submission.iter_results``.

:mod:`repro.fabric.api` keeps the historical ``ParallelRunner`` /
``run_jobs`` surface as thin facades; ``repro.experiments.parallel``
re-exports everything here for backward compatibility.
"""

from .api import (
    ParallelRunner,
    configure_default_runner,
    get_default_runner,
    run_iter,
    run_jobs,
    set_default_runner,
)
from .backends import (
    BACKENDS,
    Backend,
    BackendBroken,
    CellCompletion,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    execute_cell,
    make_backend,
)
from .jobs import (
    CACHE_VERSION,
    CONTINUE,
    FAIL_FAST,
    FAILURE_POLICIES,
    CellTimeout,
    ConfigurationError,
    SimJob,
    SimulationError,
    job_key,
    single,
    smt,
    workload_fingerprint,
)
from .scheduler import (
    CellReport,
    MatrixError,
    MatrixReport,
    Scheduler,
    SchedulerConfig,
    Submission,
)
from .store import STALE_TMP_SECONDS, ResultCache

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendBroken",
    "CACHE_VERSION",
    "CONTINUE",
    "CellCompletion",
    "CellReport",
    "CellTimeout",
    "ConfigurationError",
    "FAILURE_POLICIES",
    "FAIL_FAST",
    "MatrixError",
    "MatrixReport",
    "ParallelRunner",
    "ProcessPoolBackend",
    "ResultCache",
    "STALE_TMP_SECONDS",
    "Scheduler",
    "SchedulerConfig",
    "SerialBackend",
    "SimJob",
    "SimulationError",
    "Submission",
    "ThreadPoolBackend",
    "configure_default_runner",
    "execute_cell",
    "get_default_runner",
    "job_key",
    "make_backend",
    "run_iter",
    "run_jobs",
    "set_default_runner",
    "single",
    "smt",
    "workload_fingerprint",
]
