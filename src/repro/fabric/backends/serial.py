"""Serial backend: attempts run inline on the scheduler's driving thread.

Bit-identical to the pre-fabric serial code path — no pool, no threads, no
pickling.  Because the attempt runs on the caller's thread (the process's
main thread in CLI runs and tests), :func:`~.base._cell_deadline` can arm
SIGALRM, so per-cell timeouts work exactly as they did in the serial
``ParallelRunner``.
"""

from __future__ import annotations

from typing import List, Optional

from ..jobs import SimJob
from .base import Backend, CellCompletion


class SerialBackend(Backend):
    """Run every attempt inline, one at a time, on the calling thread."""

    capacity = 1

    def __init__(self) -> None:
        self._queued: List[CellCompletion] = []

    def submit(
        self, token: object, job: SimJob, attempt: int, timeout: Optional[float]
    ) -> None:
        # Execute immediately: the drain() that follows just hands the
        # completion back.  Exceptions (including CellTimeout from the
        # SIGALRM deadline and InjectedWorkerCrash from armed fault plans)
        # become failure completions for the scheduler's retry machinery.
        try:
            outcome = self.execute(job, attempt, timeout)
        except Exception as exc:
            self._queued.append(CellCompletion(token, error=exc))
        else:
            self._queued.append(CellCompletion(token, outcome=outcome))

    def drain(self) -> List[CellCompletion]:
        finished, self._queued = self._queued, []
        return finished

    def close(self) -> None:
        self._queued.clear()
