"""Process-pool backend: attempts run in worker processes.

The port of the legacy ``ParallelRunner._run_pool`` substrate.  Worker
crashes (an OS kill, an injected ``worker.crash``) surface as
``BrokenProcessPool``; the backend discards the broken pool and raises
:class:`~.base.BackendBroken` naming the interrupted attempts, carrying
any completions that finished before the break so no result is lost.  The
scheduler decides what to requeue; the next :meth:`submit` builds a fresh
pool.  Explicit fault plans reach the workers through a pool initializer
(env-armed plans get there for free — workers inherit the environment).
Per-cell SIGALRM deadlines work: a pool worker's task thread is its
process's main thread.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from ...core.simulator import SimulationResult
from ...faults import plan as fault_plans
from ..jobs import SimJob
from .base import Backend, BackendBroken, CellCompletion, execute_cell


class ProcessPoolBackend(Backend):
    """Fan attempts out over a ``ProcessPoolExecutor``, rebuilt on breakage."""

    def __init__(
        self,
        workers: int,
        fault_plan: Optional["fault_plans.FaultPlan"] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.capacity = self.workers
        self._fault_plan = fault_plan
        self._hint = self.workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[
            "Future[Tuple[SimulationResult, float]]", object
        ] = {}

    def open(self, hint: int) -> None:
        """Size hint: expected pending cells (the pool never needs more)."""
        self._hint = max(1, int(hint))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            kwargs: Dict[str, object] = {}
            if self._fault_plan is not None:
                # Explicit plans must reach the workers; env-armed plans get
                # there for free because workers inherit the environment.
                kwargs.update(
                    initializer=fault_plans.install_plan,
                    initargs=(self._fault_plan.spec_string(),),
                )
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.workers, self._hint), **kwargs
            )
        return self._pool

    def _discard_pool(self) -> List[object]:
        """Drop the broken substrate; returns the interrupted tokens."""
        interrupted = list(self._futures.values())
        self._futures.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        return interrupted

    def submit(
        self, token: object, job: SimJob, attempt: int, timeout: Optional[float]
    ) -> None:
        pool = self._ensure_pool()
        try:
            future = pool.submit(execute_cell, job, attempt, timeout)
        except (BrokenProcessPool, RuntimeError):
            # The pool broke between harvest and submit; this attempt never
            # started, so the cell keeps its attempt count (``unstarted``),
            # while in-flight attempts are consumed (``interrupted``).
            raise BackendBroken(
                self._discard_pool(), unstarted=[token]
            ) from None
        self._futures[future] = token

    def drain(self) -> List[CellCompletion]:
        if not self._futures:
            return []
        ready, _ = wait(set(self._futures), return_when=FIRST_COMPLETED)
        broken = False
        completions: List[CellCompletion] = []
        for future in ready:
            if isinstance(future.exception(), BrokenProcessPool):
                # Leave the future in place: its token is reported as
                # interrupted below, alongside the still-running attempts.
                broken = True
                continue
            completion_token = self._futures.pop(future)
            error = future.exception()
            if error is not None:
                completions.append(CellCompletion(completion_token, error=error))
            else:
                completions.append(
                    CellCompletion(completion_token, outcome=future.result())
                )
        if broken:
            raise BackendBroken(self._discard_pool(), completions=completions)
        return completions

    def close(self) -> None:
        if self._pool is not None:
            # Cancel queued cells on failure so a bad matrix fails fast
            # instead of draining the whole backlog first.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._futures.clear()
