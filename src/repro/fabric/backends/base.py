"""The :class:`Backend` protocol — the fabric's execution seam.

A backend owns *where* cell attempts run (inline, a thread pool, a process
pool, ...) and nothing else: no retry policy, no caching, no ordering.
The scheduler hands a backend ``(token, job, attempt, timeout)`` tuples
and collects :class:`CellCompletion` records; everything above that line
— dedup, retries, backoff, failure policy, report bookkeeping — is
backend-independent.

All backends funnel through :func:`execute_cell`, the one function that
actually runs a simulation.  It is the anchor of lint rule RPR008
(worker determinism): everything reachable from it must be free of
unseeded randomness, wall-clock dependence and module-global writes, so a
cell's result depends only on the job description — never on the backend,
the worker, or the attempt number.  Keep it module-level picklable: it is
the callable shipped to process-pool workers.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ...core.multicore import simulate_multicore
from ...core.simulator import SimulationResult, simulate, simulate_smt
from ...faults import inject as fault_inject
from ..jobs import CellTimeout, SimJob


@contextmanager
def _cell_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Enforce a wall-clock limit on the enclosed cell via ``SIGALRM``.

    Armed in the process that executes the cell (a pool worker's task
    thread is its process's main thread), so a genuinely hung simulation —
    or an injected ``worker.hang`` — is interrupted even though
    ``concurrent.futures`` cannot cancel a running task.  No-op without a
    limit, off POSIX, or off the main thread (where signals cannot arm).
    """
    if (
        not seconds
        or os.name != "posix"
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise CellTimeout(f"cell exceeded its {seconds:g}s wall-clock limit")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_cell(
    job: SimJob, attempt: int = 0, timeout: Optional[float] = None
) -> Tuple[SimulationResult, float]:
    """Run one cell; returns (result, wall seconds).  Must stay module-level
    picklable — it is the function shipped to pool workers."""
    start = time.perf_counter()
    with _cell_deadline(timeout):
        if attempt == 0:
            # Worker faults arm only a cell's first attempt, so retried and
            # requeued cells run clean and every chaos run converges.
            fault_inject.maybe_crash(job.cell)
            fault_inject.maybe_hang(job.cell)
        topology = job.resolved_topology() if job.topology is not None else None
        if topology is not None and topology.num_cores > 1:
            result = simulate_multicore(
                job.config, list(job.workloads), job.warmup, job.measure,
                config_label=job.label, topology=topology, engine=job.engine,
            )
        elif len(job.workloads) == 1:
            result = simulate(
                job.config, job.workloads[0], job.warmup, job.measure,
                config_label=job.label, topology=topology, engine=job.engine,
            )
        else:
            result = simulate_smt(
                job.config, list(job.workloads), job.warmup, job.measure,
                config_label=job.label, topology=topology, engine=job.engine,
            )
    return result, time.perf_counter() - start


class CellCompletion(NamedTuple):
    """One finished cell attempt, success or failure.

    ``token`` echoes whatever the scheduler passed to :meth:`Backend.submit`
    (the fabric uses job-key strings).  Exactly one of ``outcome`` /
    ``error`` is set: ``outcome`` is the ``(result, elapsed)`` pair from
    :func:`execute_cell`, ``error`` the exception the attempt raised.
    """

    token: object
    outcome: Optional[Tuple[SimulationResult, float]] = None
    error: Optional[BaseException] = None


class BackendBroken(RuntimeError):
    """The backend's worker substrate died (e.g. ``BrokenProcessPool``).

    ``interrupted`` lists the tokens of attempts that were in flight when
    the substrate broke (their attempt was consumed — a crashed worker may
    have been mid-simulation); ``unstarted`` lists tokens whose submit was
    refused (their attempt was *not* consumed).  ``completions`` carries
    any attempts that did finish before the break was noticed, so no
    result is lost to a crash elsewhere in the pool.  After raising, the
    backend has discarded its substrate; the next :meth:`Backend.submit`
    builds a fresh one.
    """

    def __init__(
        self,
        interrupted: Sequence[object],
        unstarted: Sequence[object] = (),
        completions: Sequence[CellCompletion] = (),
    ) -> None:
        super().__init__("execution backend broke")
        self.interrupted = list(interrupted)
        self.unstarted = list(unstarted)
        self.completions = list(completions)


class Backend(ABC):
    """Where cell attempts run.  Implementations: serial, threads, processes.

    The contract the scheduler relies on:

    * :attr:`capacity` — how many attempts may usefully be in flight at
      once; the scheduler keeps the backend topped up to this depth.
    * :meth:`submit` — accept one attempt.  May raise
      :class:`BackendBroken` if the substrate died; the attempt is then in
      the exception's ``unstarted`` list and was not consumed.
    * :meth:`drain` — block until at least one in-flight attempt finishes
      and return all finished completions.  Raises :class:`BackendBroken`
      when the substrate died with attempts in flight.
    * :meth:`close` — release the substrate (idempotent).

    Backends never retry, reorder, or interpret results — determinism and
    policy live in the scheduler, bit-identity in :func:`execute_cell`.
    """

    #: Maximum useful in-flight attempts (1 for serial execution).
    capacity: int = 1

    @abstractmethod
    def submit(
        self, token: object, job: SimJob, attempt: int, timeout: Optional[float]
    ) -> None:
        """Accept one cell attempt for execution."""

    @abstractmethod
    def drain(self) -> List[CellCompletion]:
        """Block until ≥1 in-flight attempt finishes; return all finished."""

    @abstractmethod
    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def execute(
        self, job: SimJob, attempt: int = 0, timeout: Optional[float] = None
    ) -> Tuple[SimulationResult, float]:
        """Run one cell attempt to completion on the calling thread.

        The shared execution path every backend funnels through (pool
        backends ship this module's :func:`execute_cell` to their workers,
        which is the same code path).  Lint rule RPR008 anchors its
        worker-determinism closure here.
        """
        return execute_cell(job, attempt, timeout)
