"""Thread-pool backend: cheap concurrency for scheduler tests.

Threads share the interpreter, so this backend exists for concurrency
*semantics* (interleaved submissions, dedup races, streaming order), not
throughput — the GIL serialises the simulation work.  Two contract gaps
versus the process backend, both inherent to threads:

* per-cell SIGALRM deadlines cannot arm off the main thread, so
  ``timeout`` is best-effort only (:func:`~.base._cell_deadline` no-ops);
* a programmatic fault plan is only visible to worker threads while it is
  installed process-wide (``repro.faults.plan.install_plan`` or the
  ``REPRO_FAULTS`` environment) — there is no per-thread initializer.

Injected ``worker.crash`` faults raise ``InjectedWorkerCrash`` here (the
calling process is the main process), feeding the scheduler's retry path
rather than breaking the substrate — threads cannot break the way a
killed process does, so this backend never raises ``BackendBroken``.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Tuple

from ...core.simulator import SimulationResult
from ..jobs import SimJob
from .base import Backend, CellCompletion, execute_cell


class ThreadPoolBackend(Backend):
    """Fan attempts out over a ``ThreadPoolExecutor``."""

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self.capacity = self.workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._futures: Dict[
            "Future[Tuple[SimulationResult, float]]", object
        ] = {}

    def submit(
        self, token: object, job: SimJob, attempt: int, timeout: Optional[float]
    ) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        future = self._pool.submit(execute_cell, job, attempt, timeout)
        self._futures[future] = token

    def drain(self) -> List[CellCompletion]:
        if not self._futures:
            return []
        ready, _ = wait(set(self._futures), return_when=FIRST_COMPLETED)
        completions: List[CellCompletion] = []
        for future in ready:
            token = self._futures.pop(future)
            error = future.exception()
            if error is not None:
                completions.append(CellCompletion(token, error=error))
            else:
                completions.append(CellCompletion(token, outcome=future.result()))
        return completions

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._futures.clear()
