"""Execution backends: where cell attempts run.

The :class:`~.base.Backend` protocol is the fabric's execution seam —
see ``docs/fabric.md``.  Three implementations ship:

* ``serial`` — inline on the scheduler's driving thread (bit-identical to
  the pre-fabric serial path; SIGALRM deadlines work);
* ``process`` — a ``ProcessPoolExecutor`` with broken-pool recovery and
  fault-plan initializers (the legacy pool path);
* ``thread`` — a ``ThreadPoolExecutor`` for cheap concurrency tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...common.registry import Registry
from ...faults import plan as fault_plans
from .base import (
    Backend,
    BackendBroken,
    CellCompletion,
    _cell_deadline,
    execute_cell,
)
from .pool import ProcessPoolBackend
from .serial import SerialBackend
from .threads import ThreadPoolBackend

#: Backend registry: name -> factory(workers, fault_plan).  Registered like
#: the policy/prefetcher registries so alternative substrates (a remote
#: dispatch backend, an async queue) plug in without touching the scheduler.
BACKENDS: Registry[Callable[..., Backend]] = Registry("backend")
BACKENDS.register("serial", lambda workers, fault_plan=None: SerialBackend())
BACKENDS.register("thread", lambda workers, fault_plan=None: ThreadPoolBackend(workers))
BACKENDS.register(
    "process", lambda workers, fault_plan=None: ProcessPoolBackend(workers, fault_plan)
)


def make_backend(
    name: str,
    workers: int,
    fault_plan: Optional["fault_plans.FaultPlan"] = None,
) -> Backend:
    """Build a registered backend (``serial`` / ``thread`` / ``process``)."""
    return BACKENDS.get(name)(workers, fault_plan=fault_plan)


__all__ = [
    "BACKENDS",
    "Backend",
    "BackendBroken",
    "CellCompletion",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "_cell_deadline",
    "execute_cell",
    "make_backend",
]
