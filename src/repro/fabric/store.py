"""Shared artifact store: the integrity-checked on-disk result cache.

The cache is keyed by :func:`repro.fabric.jobs.job_key` content addresses,
so any number of concurrent schedulers, figure drivers or hosts can share
one directory — a cell simulated by one submission is a hit for every
other submission that names the same job.  Entries are checksummed and
atomically written; a torn or corrupt entry is quarantined and reads as a
miss, never served.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from pathlib import Path
from typing import Optional, Union

from ..core.simulator import SimulationResult
from ..faults import inject as fault_inject
from ..faults import plan as fault_plans

#: Entry layout: magic, then sha256(payload), then the pickled payload.
#: The digest is verified on every load — a mismatch (torn write, bit rot,
#: a pre-checksum cache) quarantines the file and reads as a miss.
_CACHE_MAGIC = b"repro-result-cache-v1\n"
_DIGEST_LEN = 32

#: Temp files from writers that died mid-store are swept at cache startup
#: once they are older than this (seconds) — young ones may be live writes.
STALE_TMP_SECONDS = 3600.0


class ResultCache:
    """On-disk :class:`SimulationResult` store, one checksummed file per cell.

    Writes are atomic (temp file + ``os.replace``; the temp file is removed
    even when the write fails), so concurrent workers or concurrent figure
    drivers can share one cache directory.  Loads verify a sha256 trailer
    over the payload: an entry that fails verification is moved to a
    ``quarantine/`` subdirectory — kept for forensics, never served — and
    the cell is transparently re-simulated.  Delete the directory (or bump
    :data:`repro.fabric.jobs.CACHE_VERSION`) to invalidate.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.directory / "quarantine"
        # Observability for the scheduler's MatrixReport and for tests.
        self.quarantined = 0
        self.last_quarantined: Optional[str] = None
        self.store_failures = 0
        self.sweep_stale_tmp()

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def sweep_stale_tmp(self, max_age_seconds: float = STALE_TMP_SECONDS) -> int:
        """Remove temp files abandoned by dead writers; returns the count."""
        removed = 0
        cutoff = time.time() - max_age_seconds
        for tmp in self.directory.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def load(self, key: str) -> Optional[SimulationResult]:
        self.last_quarantined = None
        path = self.path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if not data.startswith(_CACHE_MAGIC):
            self._quarantine(path, "bad magic (foreign or pre-checksum format)")
            return None
        digest = data[len(_CACHE_MAGIC):len(_CACHE_MAGIC) + _DIGEST_LEN]
        payload = data[len(_CACHE_MAGIC) + _DIGEST_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            self._quarantine(path, "sha256 mismatch (torn or corrupt write)")
            return None
        try:
            result = pickle.loads(payload)
        except Exception:
            # Checksum-valid but unreadable: the bytes are what the writer
            # stored, the *code* moved underneath them (stale class layout).
            # A plain miss — re-simulation will overwrite with fresh bytes.
            return None
        return result if isinstance(result, SimulationResult) else None

    def store(self, key: str, result: SimulationResult) -> None:
        path = self.path(key)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        data = _CACHE_MAGIC + hashlib.sha256(payload).digest() + payload
        # Fault-injection sites: corrupt the bytes *after* the digest was
        # computed, exactly like bit rot or a torn write would.
        if fault_inject.should_fire(fault_plans.CACHE_CORRUPT_WRITE, key):
            data = data[:-1] + bytes([data[-1] ^ 0xFF])
        if fault_inject.should_fire(fault_plans.CACHE_TORN_WRITE, key):
            data = data[: max(len(_CACHE_MAGIC) + _DIGEST_LEN + 1, len(data) // 2)]
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            # On a failed write (disk full, replace error) the temp file
            # must not leak; after a successful replace this is a no-op.
            try:
                tmp.unlink()
            except OSError:
                pass

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside so it is never loaded again."""
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
            os.replace(path, self.quarantine_dir / f"{path.name}.{os.getpid()}")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1
        self.last_quarantined = reason

    def clear(self) -> int:
        """Remove every cached result; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
