"""The submission scheduler: many matrices in, each unique cell once.

A :class:`Scheduler` accepts any number of concurrent submissions
(:meth:`Scheduler.submit` is thread-safe), deduplicates cells by
:func:`repro.fabric.jobs.job_key` across submissions — overlapping sweeps
simulate each unique cell exactly once — applies the retry / timeout /
failure-policy machinery per unique cell, and delivers results to every
subscribed submission incrementally, as cells finish, via
:meth:`Submission.iter_results`.

Execution uses a **cooperative driver** model: there is no scheduler
thread.  Whichever consumer blocks on a result first becomes the driver —
it fills the backend to capacity, blocks in ``Backend.drain()`` with the
scheduler lock released, and hands results to every waiting submission.
When it leaves, the next blocked consumer takes over.  A single-threaded
caller therefore behaves exactly like the legacy ``ParallelRunner.run``
loop (same thread executes serial cells, so SIGALRM deadlines arm), while
concurrent callers share one backend and one in-flight set.

Failure semantics are the legacy runner's, per unique cell: ``fail-fast``
aborts the whole scheduler at the first permanently failed cell (every
consumer raises :class:`~repro.fabric.jobs.SimulationError`); ``continue``
finishes everything and each submission raises a :class:`MatrixError`
carrying its report and partial results at exhaustion.  Event strings,
log lines and report shapes are unchanged from the monolith — CI greps
and the chaos acceptance tests run against this code through the facade.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.simulator import SimulationResult
from ..faults import plan as fault_plans
from .backends import Backend, BackendBroken, CellCompletion, make_backend
from .jobs import (
    CONTINUE,
    FAIL_FAST,
    FAILURE_POLICIES,
    CellTimeout,
    ConfigurationError,
    SimJob,
    SimulationError,
    _env_float,
    _env_int,
    _jitter,
    job_key,
)
from .store import ResultCache

__all__ = [
    "CellReport",
    "MatrixError",
    "MatrixReport",
    "Scheduler",
    "SchedulerConfig",
    "Submission",
]


# --------------------------------------------------------------------- #
# Matrix report
# --------------------------------------------------------------------- #


@dataclass
class CellReport:
    """Outcome of one matrix cell across all its attempts."""

    index: int
    cell: str
    status: str = "pending"  # pending | ok | cached | failed | timeout
    attempts: int = 0
    elapsed: float = 0.0
    error: Optional[str] = None
    #: Recovery events in order: retries, requeues after pool restarts,
    #: quarantined cache entries.
    events: List[str] = field(default_factory=list)
    #: Fault sites the active :class:`repro.faults.FaultPlan` arms for this
    #: cell (a pure function of the plan, so attribution is exact even for
    #: crashes that leave no exception behind).
    injected: Tuple[str, ...] = ()

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class MatrixReport:
    """Per-cell outcomes of one submission (one ``run``/``run_iter`` call)."""

    cells: List[CellReport]
    pool_restarts: int = 0

    @property
    def ok(self) -> bool:
        return all(cell.succeeded for cell in self.cells)

    def failures(self) -> List[CellReport]:
        return [cell for cell in self.cells if not cell.succeeded]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts

    def summary(self) -> str:
        """Multi-line human-readable report (drivers print this)."""
        counts = self.counts()
        parts = [
            f"{counts[status]} {status}"
            for status in ("ok", "cached", "failed", "timeout", "pending")
            if counts.get(status)
        ]
        head = f"matrix: {len(self.cells)} cell(s) — {', '.join(parts) or 'empty'}"
        if self.pool_restarts:
            head += f"; {self.pool_restarts} pool restart(s)"
        lines = [head]
        for cell in self.cells:
            notes = list(cell.events)
            if cell.injected:
                notes.insert(0, "injected: " + "+".join(cell.injected))
            if cell.succeeded and not notes:
                continue
            detail = f"  [{cell.status}] {cell.cell} (attempts={cell.attempts})"
            if cell.error:
                detail += f": {cell.error}"
            if notes:
                detail += " — " + "; ".join(notes)
            lines.append(detail)
        return "\n".join(lines)


class MatrixError(SimulationError):
    """Collect-and-continue run finished with failed cells.

    Carries the full :class:`MatrixReport` (``.report``) and the partial
    result list in job order with ``None`` for failed cells (``.results``),
    so callers can salvage the completed work.
    """

    def __init__(
        self, report: MatrixReport, results: List[Optional[SimulationResult]]
    ) -> None:
        failures = report.failures()
        names = ", ".join(cell.cell for cell in failures[:5])
        more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
        super().__init__(
            f"{len(failures)} of {len(report.cells)} matrix cell(s) failed: "
            f"{names}{more}"
        )
        self.report = report
        self.results = results


# --------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------- #


@dataclass
class SchedulerConfig:
    """Resolved execution knobs, shared by every submission of a scheduler.

    Build with :meth:`from_knobs` to get the legacy knob resolution —
    env-variable fallbacks (``REPRO_FAILURE_POLICY``, ``REPRO_MAX_RETRIES``,
    ``REPRO_CELL_TIMEOUT``, ``REPRO_POOL_RESTARTS``, ``REPRO_PROGRESS``,
    ``REPRO_FAULTS``) and the historical validation messages.
    """

    workers: int = 1
    progress: bool = False
    policy: str = FAIL_FAST
    max_retries: int = 0
    timeout: Optional[float] = None
    backoff_base: float = 0.25
    max_pool_restarts: int = 2
    fault_plan: Optional["fault_plans.FaultPlan"] = None
    #: Force a backend by registry name; ``None`` auto-selects serial for
    #: one worker (or one pending cell) and the process pool otherwise.
    backend: Optional[str] = None

    @classmethod
    def from_knobs(
        cls,
        workers: Union[int, str, None] = 1,
        progress: Optional[bool] = None,
        *,
        policy: Optional[str] = None,
        max_retries: Optional[int] = None,
        timeout: Optional[float] = None,
        backoff_base: float = 0.25,
        max_pool_restarts: Optional[int] = None,
        faults: Union["fault_plans.FaultPlan", str, None] = None,
        backend: Optional[str] = None,
    ) -> "SchedulerConfig":
        import os

        if workers is None or workers == "auto":
            workers = os.cpu_count() or 1
        try:
            workers = max(1, int(workers))
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            ) from None
        if progress is None:
            progress = os.environ.get("REPRO_PROGRESS", "") == "1"
        if policy is None:
            policy = os.environ.get("REPRO_FAILURE_POLICY", "").strip() or FAIL_FAST
        if policy not in FAILURE_POLICIES:
            raise ConfigurationError(
                f"failure policy must be one of {FAILURE_POLICIES}, got {policy!r} "
                "(set via policy= or REPRO_FAILURE_POLICY)"
            )
        if max_retries is None:
            max_retries = _env_int("REPRO_MAX_RETRIES", 0)
        if timeout is None:
            timeout = _env_float("REPRO_CELL_TIMEOUT", None)
        if max_pool_restarts is None:
            max_pool_restarts = _env_int("REPRO_POOL_RESTARTS", 2)
        if isinstance(faults, str):
            faults = fault_plans.FaultPlan.parse(faults)
        fault_plan = faults or None
        if fault_plan is None:
            # Surface a malformed REPRO_FAULTS now, as a configuration
            # error, rather than as a traceback mid-matrix.
            try:
                fault_plans.active_plan()
            except fault_plans.FaultSpecError as exc:
                raise ConfigurationError(f"{fault_plans.ENV_VAR}: {exc}") from exc
        return cls(
            workers=workers,
            progress=bool(progress),
            policy=policy,
            max_retries=max(0, int(max_retries)),
            timeout=timeout if timeout and timeout > 0 else None,
            backoff_base=max(0.0, float(backoff_base)),
            max_pool_restarts=max(0, int(max_pool_restarts)),
            fault_plan=fault_plan,
            backend=backend,
        )


# --------------------------------------------------------------------- #
# Cell state and submissions
# --------------------------------------------------------------------- #


class _CellState:
    """Scheduler-side state of one unique cell (one ``job_key``).

    The first submission to name a key owns the canonical
    :class:`CellReport` (``report_cell``) — status, attempts and events are
    maintained there in place, exactly like the legacy runner.  Later
    submissions attach as watchers and receive a field-by-field copy when
    the cell settles.
    """

    __slots__ = (
        "key", "job", "order", "report_cell", "cache_key",
        "result", "settled", "watchers",
    )

    def __init__(
        self, key: str, job: SimJob, order: int, report_cell: CellReport
    ) -> None:
        self.key = key
        self.job = job
        self.order = order
        self.report_cell = report_cell
        self.cache_key: Optional[str] = None
        self.result: Optional[SimulationResult] = None
        self.settled = False
        self.watchers: List[Tuple["Submission", int]] = []


class Submission:
    """One submitted matrix: a job list plus its streaming result channel.

    Results arrive via :meth:`iter_results` as ``(index, CellReport,
    result)`` tuples in completion order (``result`` is ``None`` for a
    failed cell under the ``continue`` policy).  ``results`` fills in
    job-index order as cells settle, so after exhaustion it is the
    order-preserved result list regardless of yield order.
    """

    def __init__(self, scheduler: "Scheduler", jobs: Sequence[SimJob]) -> None:
        self.jobs: List[SimJob] = list(jobs)
        self.report = MatrixReport(
            [CellReport(i, job.cell) for i, job in enumerate(self.jobs)]
        )
        self.results: List[Optional[SimulationResult]] = [None] * len(self.jobs)
        self._scheduler = scheduler
        self._ready: Deque[int] = deque()
        self._delivered = 0

    def iter_results(
        self,
    ) -> Iterator[Tuple[int, CellReport, Optional[SimulationResult]]]:
        """Yield ``(index, CellReport, result)`` as cells finish.

        Cached and deduplicated cells yield immediately (in job order,
        before any simulation starts); simulated cells yield in completion
        order.  At exhaustion, failed cells raise :class:`MatrixError`
        (carrying the report and partial results) and an unfilled result
        slot raises :class:`SimulationError` — identical to the legacy
        ``ParallelRunner.run`` contract.
        """
        while True:
            item = self._scheduler._next(self)
            if item is None:
                break
            yield item
        if self.report.failures():
            raise MatrixError(self.report, list(self.results))
        missing = [
            self.report.cells[i].cell
            for i, r in enumerate(self.results)
            if r is None
        ]
        if missing:
            # Every slot must be filled or accounted for as a failure above;
            # anything else is a scheduler bug and must fail loudly, never
            # be silently dropped from the result list.
            raise SimulationError(
                f"internal error: {len(missing)} matrix cell(s) finished without a "
                f"result or a recorded failure: {', '.join(missing)}"
            )

    def __iter__(
        self,
    ) -> Iterator[Tuple[int, CellReport, Optional[SimulationResult]]]:
        return self.iter_results()

    def collect(self) -> List[SimulationResult]:
        """Drain the stream; return the order-preserved result list."""
        for _ in self.iter_results():
            pass
        return [r for r in self.results if r is not None]


# --------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------- #


class Scheduler:
    """Cross-submission deduplicating cell scheduler (see module docstring).

    ``cache`` is the shared artifact store (``None`` disables caching).
    ``sink`` receives counters and per-cell hooks — any object with the
    runner counter attributes (``cache_hits``, ``cache_misses``,
    ``simulations``, ``failed_cells``) plus ``_finish(job, key, outcome,
    done, total)`` and ``_log(message)``; the facade ``ParallelRunner``
    passes itself so its historical counters and monkeypatch seams keep
    working.  By default the scheduler is its own sink.
    """

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        cache: Optional[ResultCache] = None,
        sink: Optional[object] = None,
    ) -> None:
        self.config = config or SchedulerConfig()
        self.cache = cache
        self.sink = sink if sink is not None else self
        # Own counters (used when the scheduler is its own sink; the
        # dedup counter is always scheduler-level).
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0
        self.failed_cells = 0
        self.dedup_hits = 0
        #: Unique cells seen / completed successfully (drives "done/total"
        #: progress lines; grows as submissions attach).
        self.total = 0
        self.done = 0
        self._cond = threading.Condition()
        self._states: Dict[str, _CellState] = {}
        self._queue: Deque[str] = deque()
        self._inflight: set = set()
        self._order = 0
        self._backend: Optional[Backend] = None
        self._driving = False
        self._restarts = 0
        self._abort: Optional[BaseException] = None
        self._submissions: List[Submission] = []

    # ------------------------------------------------------------- #
    # Default sink implementation (legacy runner bodies)
    # ------------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.config.progress:
            print(f"[runner] {message}", file=sys.stderr, flush=True)

    def _finish(
        self,
        job: SimJob,
        key: Optional[str],
        outcome: Tuple[SimulationResult, float],
        done: int,
        total: int,
    ) -> SimulationResult:
        result, elapsed = outcome
        self.simulations += 1
        if self.cache is not None and key is not None:
            try:
                self.cache.store(key, result)
            except Exception as exc:
                # A result that cannot be cached is still a result; surface
                # the problem without failing the cell.
                self.cache.store_failures += 1
                self.sink._log(f"cache store failed for {job.cell}: {exc}")
        self.sink._log(f"{done}/{total} {job.cell}: {elapsed:.1f}s")
        return result

    # ------------------------------------------------------------- #
    # Submission
    # ------------------------------------------------------------- #

    def submit(self, jobs: Iterable[SimJob]) -> Submission:
        """Register a matrix; cells already known to the scheduler attach
        to the existing state instead of executing again."""
        sub = Submission(self, jobs)
        with fault_plans.plan_scope(self.config.fault_plan):
            with self._cond:
                if self._abort is not None:
                    raise self._abort
                self._submissions.append(sub)
                sub.report.pool_restarts = self._restarts
                keys = [job_key(job) for job in sub.jobs]
                # Fix the progress denominator before logging any cell so
                # "done/total" lines always show this submission's full
                # contribution (matches the legacy upfront `total`).
                self.total += sum(
                    1 for k in dict.fromkeys(keys) if k not in self._states
                )
                fresh: List[str] = []
                for index, (job, key) in enumerate(zip(sub.jobs, keys)):
                    cell = sub.report.cells[index]
                    state = self._states.get(key)
                    if state is not None:
                        self.dedup_hits += 1
                        state.watchers.append((sub, index))
                        if state.settled:
                            self._deliver(sub, index, state)
                        else:
                            cell.injected = state.report_cell.injected
                        continue
                    state = _CellState(key, job, self._order, cell)
                    self._order += 1
                    self._states[key] = state
                    state.watchers.append((sub, index))
                    if self.cache is not None:
                        state.cache_key = key
                        cached = self.cache.load(key)
                        if self.cache.last_quarantined:
                            cell.events.append(
                                "quarantined corrupt cache entry "
                                f"({self.cache.last_quarantined}); re-simulating"
                            )
                        if cached is not None:
                            self.sink.cache_hits += 1
                            self.done += 1
                            state.result = cached
                            cell.status = "cached"
                            self.sink._log(
                                f"{self.done}/{self.total} {job.cell}: cached"
                            )
                            self._settle(state)
                            continue
                        self.sink.cache_misses += 1
                    fresh.append(key)

                plan = fault_plans.active_plan()
                if plan is not None:
                    for key in fresh:
                        state = self._states[key]
                        injected = [
                            site for site in fault_plans.WORKER_SITES
                            if plan.would_fire(site, state.job.cell)
                        ]
                        if state.cache_key is not None:
                            injected.extend(
                                site for site in fault_plans.CACHE_SITES
                                if plan.would_fire(site, state.cache_key)
                            )
                        state.report_cell.injected = tuple(injected)
                        for watcher, index in state.watchers[1:]:
                            watcher.report.cells[index].injected = (
                                state.report_cell.injected
                            )

                self._queue.extend(fresh)
                self._cond.notify_all()
        return sub

    # ------------------------------------------------------------- #
    # Consumption (cooperative driving)
    # ------------------------------------------------------------- #

    def _next(
        self, sub: Submission
    ) -> Optional[Tuple[int, CellReport, Optional[SimulationResult]]]:
        """Block until ``sub`` has a finished cell; drive execution if idle.

        Returns ``None`` when every cell of ``sub`` has been delivered.
        """
        with self._cond:
            while True:
                if self._abort is not None:
                    raise self._abort
                if sub._ready:
                    index = sub._ready.popleft()
                    return index, sub.report.cells[index], sub.results[index]
                if sub._delivered == len(sub.jobs):
                    return None
                if not self._driving and (self._queue or self._inflight):
                    self._driving = True
                    self._cond.release()
                    error: Optional[BaseException] = None
                    try:
                        try:
                            self._drive()
                        except BaseException as exc:
                            error = exc
                            self._shutdown_backend()
                    finally:
                        self._cond.acquire()
                        self._driving = False
                        if error is not None and self._abort is None:
                            self._abort = error
                        self._cond.notify_all()
                    continue
                if not self._driving:
                    # Nothing queued, nothing in flight, nobody driving, yet
                    # this submission is incomplete: a scheduler bug.
                    stalled = len(sub.jobs) - sub._delivered
                    raise SimulationError(
                        f"internal error: scheduler stalled with {stalled} "
                        "undelivered cell(s)"
                    )
                self._cond.wait()

    # ------------------------------------------------------------- #
    # Driving
    # ------------------------------------------------------------- #

    def _ensure_backend(self) -> Backend:
        with self._cond:
            if self._backend is None:
                name = self.config.backend
                if name is None:
                    # Legacy selection: serial when one worker or only one
                    # pending cell; otherwise the process pool.
                    name = (
                        "serial"
                        if self.config.workers == 1 or len(self._queue) == 1
                        else "process"
                    )
                self._backend = make_backend(
                    name, self.config.workers, self.config.fault_plan
                )
                opener = getattr(self._backend, "open", None)
                if opener is not None:
                    opener(len(self._queue))
            return self._backend

    def _drive(self) -> None:
        """One fill + drain cycle.  Runs WITHOUT the scheduler lock held
        (takes it briefly to mutate state); exactly one thread is in here
        at a time (the ``_driving`` flag)."""
        with fault_plans.plan_scope(self.config.fault_plan):
            backend = self._ensure_backend()
            while True:
                with self._cond:
                    if not self._queue or len(self._inflight) >= backend.capacity:
                        break
                    key = self._queue.popleft()
                    state = self._states[key]
                    attempt = state.report_cell.attempts
                    self._inflight.add(key)
                try:
                    backend.submit(key, state.job, attempt, self.config.timeout)
                except BackendBroken as broken:
                    self._on_broken(broken)
                    return
            with self._cond:
                idle = not self._inflight
            if idle:
                self._close_if_idle()
                return
            try:
                completions = backend.drain()
            except BackendBroken as broken:
                self._on_broken(broken)
                return
            retries = self._process_completions(completions)
            self._requeue_with_backoff(retries)
            self._close_if_idle()

    def _process_completions(
        self, completions: Sequence[CellCompletion]
    ) -> List[Tuple[str, int]]:
        """Record finished attempts; returns ``(key, attempt)`` retries."""
        retries: List[Tuple[str, int]] = []
        with self._cond:
            for completion in completions:
                key = completion.token
                self._inflight.discard(key)
                state = self._states[key]
                cell = state.report_cell
                cell.attempts += 1
                if completion.error is not None:
                    exc = completion.error
                    if cell.attempts <= self.config.max_retries:
                        cell.events.append(
                            f"retry after {type(exc).__name__}: {exc}"
                        )
                        retries.append((key, cell.attempts))
                        continue
                    self._fail_state(
                        state, f"{type(exc).__name__}: {exc}",
                        isinstance(exc, CellTimeout),
                    )
                    if self.config.policy == FAIL_FAST:
                        error = SimulationError(
                            f"simulation failed for cell ({state.job.cell}): {exc}"
                        )
                        error.__cause__ = exc
                        raise error
                    continue
                assert completion.outcome is not None
                self.done += 1
                cell.elapsed = completion.outcome[1]
                state.result = self.sink._finish(
                    state.job, state.cache_key, completion.outcome,
                    self.done, self.total,
                )
                cell.status = "ok"
                self._settle(state)
        return retries

    def _requeue_with_backoff(self, retries: Sequence[Tuple[str, int]]) -> None:
        for key, attempt in retries:
            self._backoff(self._states[key].job.cell, attempt)
            with self._cond:
                self._queue.append(key)

    def _on_broken(self, broken: BackendBroken) -> None:
        """Legacy broken-pool recovery: count the restart, requeue the
        interrupted cells (their in-flight attempt was consumed by the
        crash, so first-attempt-only injected faults cannot re-fire and
        the matrix converges), fail everything once the budget is out."""
        retries = self._process_completions(broken.completions)
        self._requeue_with_backoff(retries)
        with self._cond:
            self._restarts += 1
            for sub in self._submissions:
                sub.report.pool_restarts = self._restarts
            exhausted = self._restarts > self.config.max_pool_restarts
            for key in reversed(list(broken.unstarted)):
                # Never started: keeps its attempt count, stays at the head.
                self._inflight.discard(key)
                self._queue.appendleft(key)
            interrupted = sorted(
                broken.interrupted, key=lambda k: self._states[k].order
            )
            requeued: List[str] = []
            for key in interrupted:
                self._inflight.discard(key)
                cell = self._states[key].report_cell
                cell.attempts += 1
                if exhausted:
                    cell.events.append(
                        f"worker crash (pool restart {self._restarts} exceeds "
                        f"budget {self.config.max_pool_restarts})"
                    )
                else:
                    cell.events.append(
                        "interrupted by worker crash; requeued "
                        f"(pool restart {self._restarts})"
                    )
                    requeued.append(key)
            if exhausted:
                stranded = interrupted + [
                    k for k in self._queue if k not in interrupted
                ]
                self._queue.clear()
                for key in stranded:
                    self._fail_state(
                        self._states[key],
                        f"worker pool broke {self._restarts} times "
                        f"(max_pool_restarts={self.config.max_pool_restarts})",
                        False,
                    )
                if self.config.policy == FAIL_FAST:
                    names = ", ".join(
                        self._states[k].job.cell for k in stranded[:5]
                    )
                    raise SimulationError(
                        f"worker pool broke {self._restarts} times "
                        f"(max_pool_restarts={self.config.max_pool_restarts}); "
                        f"stranded cells: {names}"
                    )
            else:
                self._queue.extend(requeued)
                self.sink._log(
                    f"worker pool broken; rebuilding "
                    f"(restart {self._restarts}/{self.config.max_pool_restarts}, "
                    f"{len(interrupted)} cell(s) requeued)"
                )

    # ------------------------------------------------------------- #
    # Settlement and delivery
    # ------------------------------------------------------------- #

    def _fail_state(self, state: _CellState, error: str, timed_out: bool) -> None:
        cell = state.report_cell
        cell.status = "timeout" if timed_out else "failed"
        cell.error = error
        self.sink.failed_cells += 1
        self.sink._log(
            f"{cell.cell}: {cell.status} after {cell.attempts} attempt(s): {error}"
        )
        self._settle(state)

    def _backoff(self, cell: str, attempt: int) -> None:
        if self.config.backoff_base <= 0:
            return
        delay = (
            self.config.backoff_base * (2.0 ** (attempt - 1))
            * _jitter(cell, attempt)
        )
        self.sink._log(
            f"{cell}: backing off {delay:.2f}s before attempt {attempt + 1}"
        )
        time.sleep(delay)

    def _settle(self, state: _CellState) -> None:
        """Mark terminal and deliver to every watcher (lock held)."""
        state.settled = True
        for sub, index in state.watchers:
            self._deliver(sub, index, state)
        self._cond.notify_all()

    def _deliver(self, sub: Submission, index: int, state: _CellState) -> None:
        cell = sub.report.cells[index]
        if cell is not state.report_cell:
            source = state.report_cell
            cell.status = source.status
            cell.attempts = source.attempts
            cell.elapsed = source.elapsed
            cell.error = source.error
            cell.events = list(source.events)
            cell.injected = source.injected
        sub.results[index] = state.result
        sub._ready.append(index)
        sub._delivered += 1

    # ------------------------------------------------------------- #
    # Backend lifecycle
    # ------------------------------------------------------------- #

    def _close_if_idle(self) -> None:
        backend: Optional[Backend] = None
        with self._cond:
            if not self._queue and not self._inflight:
                backend, self._backend = self._backend, None
        if backend is not None:
            backend.close()

    def _shutdown_backend(self) -> None:
        with self._cond:
            backend, self._backend = self._backend, None
        if backend is not None:
            backend.close()

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        self._shutdown_backend()
