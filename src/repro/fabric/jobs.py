"""Job identity: what a simulation cell *is*, independent of how it runs.

A :class:`SimJob` describes one independent simulation — a configuration,
an optional topology, one workload (or two for SMT, or one per core for a
multicore graph), the warmup/measure windows and a technique label.  The
description is pure data: two jobs with equal descriptions produce
bit-identical results on any backend, which is the invariant the whole
fabric rests on.

:func:`job_key` collapses a job to a stable content address.  It is the
unit of deduplication (the scheduler simulates each unique key exactly
once across concurrent submissions) and the key of the shared artifact
store (:class:`repro.fabric.store.ResultCache`).

This module also owns the fabric's shared vocabulary — failure policies,
error types, and the ``REPRO_*`` environment-knob parsers — so the other
fabric modules never need to import each other for basics.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path  # noqa: F401 - re-exported type alias convenience
from typing import Optional, Sequence, Tuple, Union

from ..common.params import SystemConfig
from ..kernel import resolve_engine
from ..topology.presets import resolve_topology
from ..topology.spec import TopologySpec
from ..workloads.base import SyntheticWorkload

#: Bump to invalidate every cached result (e.g. after a simulator behaviour
#: change that job descriptions cannot see).  4: checksummed entry format.
#: 5: MSHR structural retirement preserves Type bits (and exports
#: ``*.mshr_retirements``), so cells simulated before the fix are stale.
#: 6: jobs carry an execution engine; pre-engine entries predate the
#: ``engine=`` key part and must not be served for either engine.
CACHE_VERSION = 6

#: Failure policies: fail-fast preserves the historical behaviour (first
#: failed cell raises :class:`SimulationError` and cancels the backlog);
#: collect-and-continue finishes every cell, caches the successes, and
#: raises a ``MatrixError`` summarising the failures at the end.
FAIL_FAST = "fail-fast"
CONTINUE = "continue"
FAILURE_POLICIES = (FAIL_FAST, CONTINUE)


class SimulationError(RuntimeError):
    """A cell of the experiment matrix failed; names the failing cell."""


class ConfigurationError(ValueError):
    """A fabric knob (flag or ``REPRO_*`` variable) could not be parsed."""


class CellTimeout(RuntimeError):
    """A cell exceeded the per-cell wall-clock ``timeout`` and was cancelled."""


@dataclass(frozen=True)
class SimJob:
    """One independent simulation: a ``(technique, workload)`` cell.

    ``workloads`` holds one workload for a single-thread run or two for an
    SMT co-location (dispatching to :func:`repro.core.simulator.simulate` /
    :func:`repro.core.simulator.simulate_smt`).  ``topology`` selects the
    machine graph — ``None`` for the default Table 1 hierarchy, a preset
    name (``"split-stlb"``, ``"multicore-2"``, ...) or a full
    :class:`TopologySpec`.  A multi-core topology dispatches to
    :func:`repro.core.multicore.simulate_multicore` and takes one workload
    per core.  ``engine`` selects the execution engine
    (:mod:`repro.kernel`): ``None`` defers to ``REPRO_ENGINE`` then the
    default, so the choice resolves on the executing worker and is pinned
    into the cache key.
    """

    config: SystemConfig
    workloads: Tuple[SyntheticWorkload, ...]
    warmup: int
    measure: int
    label: str = ""
    topology: Union[None, str, TopologySpec] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("SimJob needs at least one workload")
        resolve_engine(self.engine)  # validate eagerly, at job-build time
        if self.topology is None and len(self.workloads) > 2:
            raise ValueError("SimJob takes one workload (1T) or two (SMT)")

    def resolved_topology(self) -> TopologySpec:
        """The job's machine graph as a spec (default graph when ``None``)."""
        return resolve_topology(self.topology, self.config)

    @property
    def workload_name(self) -> str:
        return "+".join(w.name for w in self.workloads)

    @property
    def cell(self) -> str:
        """Human-readable cell name for logs, errors and fault-plan keys."""
        return f"{self.label or 'default'} x {self.workload_name}"


def single(
    config: SystemConfig,
    workload: SyntheticWorkload,
    warmup: int,
    measure: int,
    label: str = "",
    topology: Union[None, str, TopologySpec] = None,
    engine: Optional[str] = None,
) -> SimJob:
    """Convenience constructor for a single-thread job."""
    return SimJob(config, (workload,), warmup, measure, label, topology, engine)


def smt(
    config: SystemConfig,
    workloads: Sequence[SyntheticWorkload],
    warmup: int,
    measure: int,
    label: str = "",
    topology: Union[None, str, TopologySpec] = None,
    engine: Optional[str] = None,
) -> SimJob:
    """Convenience constructor for a two-thread SMT job."""
    return SimJob(config, tuple(workloads), warmup, measure, label, topology, engine)


# --------------------------------------------------------------------- #
# Content addressing
# --------------------------------------------------------------------- #


def workload_fingerprint(workload: SyntheticWorkload) -> str:
    """Deterministic identity of a workload's generated stream.

    Workload generators are pure functions of their constructor parameters
    (all public attributes; derived state like pre-built function tables is
    underscore-prefixed), so class + public attributes pin the trace.
    """
    public = sorted(
        (k, v) for k, v in vars(workload).items() if not k.startswith("_")
    )
    return f"{type(workload).__module__}.{type(workload).__qualname__}{public!r}"


def job_key(job: SimJob) -> str:
    """Stable content address for a job.

    ``SystemConfig`` is a tree of frozen dataclasses whose ``repr`` lists
    every field, so it serves as a canonical config hash input.  The
    topology is always resolved to a spec and keyed by its content hash —
    so a preset name and the equivalent explicit spec share cache entries,
    while jobs differing only in machine graph never collide.  The engine
    is keyed *resolved* (both engines are bit-identical, but separate keys
    keep a per-engine provenance trail and make cross-engine cache hits an
    explicit non-goal); a job deferring to ``REPRO_ENGINE`` therefore maps
    to the same entry as one pinning that engine explicitly.
    """
    parts = [
        f"cache-version={CACHE_VERSION}",
        f"label={job.label}",
        f"warmup={job.warmup}",
        f"measure={job.measure}",
        f"engine={resolve_engine(job.engine)}",
        f"config={job.config!r}",
        f"topology={job.resolved_topology().content_hash()}",
    ]
    parts.extend(workload_fingerprint(w) for w in job.workloads)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Environment knobs
# --------------------------------------------------------------------- #


def _env_workers() -> int:
    value = os.environ.get("REPRO_WORKERS", "").strip()
    if not value:
        return 1
    if value.lower() == "auto":
        return os.cpu_count() or 1
    try:
        count = int(value)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_WORKERS must be a positive integer or 'auto', got {value!r}"
        ) from None
    return max(1, count)


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    return max(minimum, value)


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None


def _jitter(cell: str, attempt: int) -> float:
    """Deterministic retry jitter in [0.5, 1) — seeded by cell and attempt,
    so backoff schedules are reproducible run to run."""
    digest = hashlib.sha256(f"backoff|{cell}|{attempt}".encode("utf-8")).digest()
    return 0.5 + 0.5 * (int.from_bytes(digest[:8], "big") / 2.0**64)
