"""Facade API: the historical ``ParallelRunner`` surface over the fabric.

``ParallelRunner`` keeps its constructor, knobs, counters, reports and
error contract bit-for-bit — it is now a thin shell that builds a fresh
:class:`~repro.fabric.scheduler.Scheduler` per ``run()``/``run_iter()``
call (so every run re-probes the shared cache, exactly like the legacy
loop did) and passes itself as the scheduler's sink, so the historical
counters (``cache_hits``, ``simulations``, ...) and the ``_finish`` /
``_log`` seams keep working, including for tests that monkeypatch them.

New in the fabric: :meth:`ParallelRunner.run_iter` (and the module-level
:func:`run_iter`) streams ``(index, CellReport, result)`` tuples as cells
finish instead of blocking until the whole matrix drains.  For long-lived
multi-submission scheduling — many concurrent matrices deduplicated
against each other — construct a :class:`Scheduler` directly.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..core.simulator import SimulationResult
from ..faults import plan as fault_plans
from .jobs import SimJob, _env_workers
from .scheduler import CellReport, MatrixReport, Scheduler, SchedulerConfig, Submission
from .store import ResultCache

__all__ = [
    "ParallelRunner",
    "configure_default_runner",
    "get_default_runner",
    "run_iter",
    "run_jobs",
    "set_default_runner",
]


class ParallelRunner:
    """Fans a :class:`SimJob` list out over worker processes.

    * ``workers`` — process count; ``1`` (default) runs serially in-process,
      ``None``/``"auto"`` uses every core.
    * ``cache_dir`` — enable the on-disk result cache at this directory.
    * ``progress`` — per-cell completion/timing lines on stderr.
    * ``policy`` — ``FAIL_FAST`` (default; unchanged historical behaviour)
      or ``CONTINUE`` (finish every cell, raise
      :class:`~repro.fabric.scheduler.MatrixError` at the end if any
      failed).
    * ``max_retries`` — extra attempts per failed/timed-out cell (default
      0), with exponential backoff ``backoff_base * 2**(attempt-1)`` times
      a deterministic jitter.
    * ``timeout`` — per-cell wall-clock seconds; a cell over budget raises
      :class:`~repro.fabric.jobs.CellTimeout` in its process and is retried
      like any failure.
    * ``max_pool_restarts`` — how many times a ``BrokenProcessPool`` (a
      worker killed by the OS) may be rebuilt, requeuing the in-flight
      cells (default 2; a separate budget from per-cell retries).
    * ``faults`` — a programmatic :class:`repro.faults.FaultPlan` (or spec
      string) for this runner; default: the ambient ``REPRO_FAULTS`` plan.
    * ``backend`` — force an execution backend by registry name
      (``serial`` / ``thread`` / ``process``); default: auto-selection
      (serial for one worker or one pending cell, process pool otherwise).

    Unset knobs fall back to ``REPRO_FAILURE_POLICY``, ``REPRO_MAX_RETRIES``,
    ``REPRO_CELL_TIMEOUT`` and ``REPRO_POOL_RESTARTS``.  ``run`` preserves
    job order in its result list, independent of worker scheduling, so
    callers can zip results back onto their matrix; each run also fills in
    a :class:`~repro.fabric.scheduler.MatrixReport` at
    ``runner.last_report``.
    """

    def __init__(
        self,
        workers: Union[int, str, None] = 1,
        cache_dir: Union[str, Path, None] = None,
        progress: Optional[bool] = None,
        *,
        policy: Optional[str] = None,
        max_retries: Optional[int] = None,
        timeout: Optional[float] = None,
        backoff_base: float = 0.25,
        max_pool_restarts: Optional[int] = None,
        faults: Union["fault_plans.FaultPlan", str, None] = None,
        backend: Optional[str] = None,
    ) -> None:
        config = SchedulerConfig.from_knobs(
            workers, progress, policy=policy, max_retries=max_retries,
            timeout=timeout, backoff_base=backoff_base,
            max_pool_restarts=max_pool_restarts, faults=faults,
            backend=backend,
        )
        self._config = config
        self.cache = ResultCache(cache_dir) if cache_dir else None
        # Historical knob attributes (tests and callers read these).
        self.workers = config.workers
        self.progress = config.progress
        self.policy = config.policy
        self.max_retries = config.max_retries
        self.timeout = config.timeout
        self.backoff_base = config.backoff_base
        self.max_pool_restarts = config.max_pool_restarts
        self.fault_plan = config.fault_plan
        self.backend = config.backend
        # Lifetime counters (tests and progress summaries read these).
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0
        self.failed_cells = 0
        self.last_report: Optional[MatrixReport] = None
        self.reports: List[MatrixReport] = []

    # ----------------------------------------------------------------- #
    # Scheduler sink hooks (legacy bodies; tests monkeypatch these)
    # ----------------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.progress:
            print(f"[runner] {message}", file=sys.stderr, flush=True)

    def _finish(
        self,
        job: SimJob,
        key: Optional[str],
        outcome: Tuple[SimulationResult, float],
        done: int,
        total: int,
    ) -> SimulationResult:
        result, elapsed = outcome
        self.simulations += 1
        if self.cache is not None and key is not None:
            try:
                self.cache.store(key, result)
            except Exception as exc:
                # A result that cannot be cached is still a result; surface
                # the problem without failing the cell.
                self.cache.store_failures += 1
                self._log(f"cache store failed for {job.cell}: {exc}")
        self._log(f"{done}/{total} {job.cell}: {elapsed:.1f}s")
        return result

    # ----------------------------------------------------------------- #

    def _submit(self, jobs: Iterable[SimJob]) -> Submission:
        """Fresh scheduler per call: every run re-probes the shared cache,
        preserving the legacy per-run hit/miss accounting."""
        scheduler = Scheduler(self._config, cache=self.cache, sink=self)
        submission = scheduler.submit(jobs)
        self.last_report = submission.report
        self.reports.append(submission.report)
        return submission

    def run(self, jobs: Iterable[SimJob]) -> List[SimulationResult]:
        """Execute all jobs; results come back in job order.

        Under ``FAIL_FAST`` (default) the first permanently failed cell
        raises :class:`~repro.fabric.jobs.SimulationError`; under
        ``CONTINUE`` every cell runs and a
        :class:`~repro.fabric.scheduler.MatrixError` carrying the report
        and partial results is raised at the end if any cell failed.
        """
        return self._submit(jobs).collect()

    def run_iter(
        self, jobs: Iterable[SimJob]
    ) -> Iterator[Tuple[int, CellReport, Optional[SimulationResult]]]:
        """Stream ``(index, CellReport, result)`` as cells finish.

        Cached cells yield immediately in job order; simulated cells in
        completion order.  Same terminal error contract as :meth:`run`.
        """
        return self._submit(jobs).iter_results()


# --------------------------------------------------------------------- #
# Process-wide default runner
# --------------------------------------------------------------------- #

_default_runner: Optional[ParallelRunner] = None

#: Sentinel: distinguishes "caller did not choose a worker count" (fall
#: back to ``REPRO_WORKERS``) from an explicit ``workers=1``.
_UNSET_WORKERS = object()


def get_default_runner() -> ParallelRunner:
    """The runner used when an experiment API is called without one.

    First use builds it from the environment: ``REPRO_WORKERS`` (a count or
    ``auto``; default 1, keeping library calls serial and deterministic),
    ``REPRO_CACHE_DIR`` (default: no cache), ``REPRO_PROGRESS=1``, plus the
    resilience knobs ``REPRO_FAILURE_POLICY``, ``REPRO_MAX_RETRIES``,
    ``REPRO_CELL_TIMEOUT`` and ``REPRO_POOL_RESTARTS``.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = ParallelRunner(
            workers=_env_workers(),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        )
    return _default_runner


def set_default_runner(runner: Optional[ParallelRunner]) -> Optional[ParallelRunner]:
    """Install (or, with ``None``, reset) the process-wide default runner.

    Returns the previously installed runner so callers can restore it.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


def configure_default_runner(
    workers: Union[int, str, None, object] = _UNSET_WORKERS,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[bool] = None,
    *,
    policy: Optional[str] = None,
    max_retries: Optional[int] = None,
    timeout: Optional[float] = None,
    backoff_base: float = 0.25,
    max_pool_restarts: Optional[int] = None,
    faults: Union["fault_plans.FaultPlan", str, None] = None,
    backend: Optional[str] = None,
) -> ParallelRunner:
    """Build and install the default runner; returns it.

    An unset ``workers`` falls back to ``REPRO_WORKERS`` exactly like the
    lazy :func:`get_default_runner` path — historically it silently
    defaulted to 1, so ``configure_default_runner(cache_dir=...)`` dropped
    the ambient worker count.  Pass ``workers=1`` explicitly to force a
    serial runner.
    """
    if workers is _UNSET_WORKERS:
        workers = _env_workers()
    runner = ParallelRunner(
        workers=workers, cache_dir=cache_dir, progress=progress,
        policy=policy, max_retries=max_retries, timeout=timeout,
        backoff_base=backoff_base, max_pool_restarts=max_pool_restarts,
        faults=faults, backend=backend,
    )
    set_default_runner(runner)
    return runner


def run_jobs(
    jobs: Iterable[SimJob], runner: Optional[ParallelRunner] = None
) -> List[SimulationResult]:
    """Run jobs on ``runner`` (or the process-wide default)."""
    return (runner or get_default_runner()).run(jobs)


def run_iter(
    jobs: Iterable[SimJob], runner: Optional[ParallelRunner] = None
) -> Iterator[Tuple[int, CellReport, Optional[SimulationResult]]]:
    """Stream jobs on ``runner`` (or the process-wide default) as they
    finish; yields ``(index, CellReport, result)``."""
    return (runner or get_default_runner()).run_iter(jobs)
