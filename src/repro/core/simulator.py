"""Top-level simulation drivers.

``simulate`` runs a single-thread workload; ``simulate_smt`` co-locates two
workloads on an SMT core (Section 5.1): records are fetched round-robin,
one fetch group per thread per turn, with all caches, TLBs, the walker and
DRAM shared.  Cycle accounting overlaps the two threads' record costs —
the longer record hides most of the shorter one, modelling latency hiding
across hardware threads while shared-structure contention emerges naturally
from the shared state.

Both drivers follow the paper's methodology: a warmup window that touches
state but not statistics, then a measurement window (Section 5.2 uses 50 M
warmup + 100 M measured; defaults here are scaled down for Python speed —
DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from typing import Union

from ..common.params import SystemConfig
from ..common.stats import SimStats
from ..common.types import PageSize
from ..kernel import BatchedEngine, resolve_engine
from ..topology.spec import TopologySpec
from ..workloads.base import SyntheticWorkload
from .cpu import Core, THREAD_TAG_SHIFT
from .system import System

DEFAULT_WARMUP = 50_000
DEFAULT_MEASURE = 200_000


@dataclass
class SimulationResult:
    """Measurement-window statistics plus convenience accessors."""

    workload: str
    config_label: str
    stats: SimStats
    metrics: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.metrics:
            self.metrics = self.stats.report()

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def get(self, key: str, default: float = 0.0) -> float:
        return self.metrics.get(key, default)


def _export_adaptive(system: System, stats: SimStats) -> None:
    """Surface adaptive-controller counters in the metric report."""
    if not system.adaptive.active:
        return
    stats.counters["adaptive.windows_total"] = system.adaptive.windows_total
    stats.counters["adaptive.windows_enabled"] = system.adaptive.windows_enabled
    stats.counters["adaptive.switches"] = system.adaptive.switches


def _export_structures(system: System, stats: SimStats) -> None:
    """Surface structure-owned counters (xPTP, MSHRs) in the metric report.

    These live on the hardware objects rather than in :class:`SimStats`, so
    they are cleared by :meth:`System.reset_stats` at the warmup boundary and
    exported here at the end of the measurement window.
    """
    xptp = system.xptp_policy
    if xptp is not None:
        stats.counters["xptp.protected_evictions_avoided"] = (
            xptp.protected_evictions_avoided
        )
    for cache in system.caches:
        key = cache.config.name.lower()
        stats.counters[f"{key}.mshr_allocations"] = cache.mshrs.allocations
        stats.counters[f"{key}.mshr_merges"] = cache.mshrs.merges
        stats.counters[f"{key}.mshr_full_events"] = cache.mshrs.full_events
        stats.counters[f"{key}.mshr_retirements"] = cache.mshrs.retirements
    stats.counters["stlb.mshr_allocations"] = system.mmu.stlb_mshrs.allocations
    if system.config.dram.row_buffer:
        stats.counters["dram.row_hits"] = system.dram.row_hits
        stats.counters["dram.row_misses"] = system.dram.row_misses


def _tagged_size_policy(workloads: Sequence[SyntheticWorkload]):
    """Dispatch page-size decisions by the SMT thread tag in high bits."""
    mask = (1 << THREAD_TAG_SHIFT) - 1

    def policy(vaddr: int) -> PageSize:
        thread = vaddr >> THREAD_TAG_SHIFT
        if thread >= len(workloads):
            thread = 0
        return workloads[thread].size_policy(vaddr & mask)

    return policy


def simulate(
    config: SystemConfig,
    workload: SyntheticWorkload,
    warmup_instructions: int = DEFAULT_WARMUP,
    measure_instructions: int = DEFAULT_MEASURE,
    config_label: str = "",
    topology: Union[None, str, TopologySpec] = None,
    engine: Union[None, str] = None,
) -> SimulationResult:
    """Run one workload on one hardware thread.

    ``engine`` selects the execution engine (``spec`` or ``batched``; see
    :mod:`repro.kernel`); ``None`` defers to ``REPRO_ENGINE`` then the
    default.  Both engines produce bit-identical statistics.
    """
    system = System(config, workload.size_policy, topology=topology)
    core = Core(system, thread_id=0)
    stream = workload.record_stream()
    stats = system.stats

    if resolve_engine(engine) == "batched":
        kernel = BatchedEngine(system, core, stream)
        kernel.run_until(warmup_instructions)
        system.reset_stats()
        stats.cycles = kernel.run_until(measure_instructions)
        _export_adaptive(system, stats)
        _export_structures(system, stats)
        return SimulationResult(workload.name, config_label, stats)

    while stats.instructions < warmup_instructions:
        core.execute(next(stream))
    system.reset_stats()

    cycles = 0.0
    while stats.instructions < measure_instructions:
        cycles += core.execute(next(stream))
    stats.cycles = cycles
    _export_adaptive(system, stats)
    _export_structures(system, stats)
    return SimulationResult(workload.name, config_label, stats)


def simulate_smt(
    config: SystemConfig,
    workloads: Sequence[SyntheticWorkload],
    warmup_instructions: int = DEFAULT_WARMUP,
    measure_instructions: int = DEFAULT_MEASURE,
    config_label: str = "",
    overlap_residual: float = 0.25,
    topology: Union[None, str, TopologySpec] = None,
    engine: Union[None, str] = None,
) -> SimulationResult:
    """Co-locate two workloads on an SMT core with shared structures.

    ``overlap_residual`` is the fraction of the shorter thread's record
    cost that still contributes to elapsed cycles (shared issue bandwidth).
    ``engine`` is accepted for interface symmetry and validated, but SMT
    always runs the scalar spec path: the round-robin step interleaves two
    streams record-by-record, which the block-batched kernel does not model.
    """
    resolve_engine(engine)
    if len(workloads) != 2:
        raise ValueError("SMT simulation takes exactly two workloads")
    system = System(config, _tagged_size_policy(workloads), topology=topology)
    cores = [Core(system, thread_id=i) for i in range(2)]
    streams = [w.record_stream() for w in workloads]
    stats = system.stats

    def step() -> float:
        c0 = cores[0].execute(next(streams[0]))
        c1 = cores[1].execute(next(streams[1]))
        return max(c0, c1) + overlap_residual * min(c0, c1)

    while stats.instructions < warmup_instructions:
        step()
    system.reset_stats()

    cycles = 0.0
    while stats.instructions < measure_instructions:
        cycles += step()
    stats.cycles = cycles
    _export_adaptive(system, stats)
    _export_structures(system, stats)
    name = "+".join(w.name for w in workloads)
    return SimulationResult(name, config_label, stats)
