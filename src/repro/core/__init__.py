"""Core models: system wiring, CPU timing, adaptive controller, simulators."""

from .adaptive import AdaptiveXPTPController
from .cpu import Core, THREAD_TAG_SHIFT
from .multicore import MulticoreSystem, simulate_multicore
from .simulator import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    SimulationResult,
    simulate,
    simulate_smt,
)
from .system import System

__all__ = [
    "AdaptiveXPTPController",
    "Core",
    "DEFAULT_MEASURE",
    "MulticoreSystem",
    "simulate_multicore",
    "DEFAULT_WARMUP",
    "SimulationResult",
    "System",
    "THREAD_TAG_SHIFT",
    "simulate",
    "simulate_smt",
]
