"""System facade: the single-core machine, built by the topology layer.

Before the :mod:`repro.topology` package this module wired the Table 1
hierarchy by hand; it is now a thin facade over
:func:`repro.topology.builder.build` — the default graph is the
``table1`` preset derived from the :class:`SystemConfig`, and any other
single-core :class:`~repro.topology.spec.TopologySpec` (``split-stlb``,
``no-llc``, custom graphs) drops in via the ``topology`` argument.  The
legacy attribute surface (``l1i``/``l1d``/``l2c``/``llc``/``dram``/
``mmu``/``walker``/``adaptive``) is preserved, so :class:`repro.core.cpu.Core`
and every existing caller see exactly the machine they always did.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..common import invariants
from ..common.params import SystemConfig
from ..common.types import PageSize
from ..replacement.xptp import XPTPPolicy
from ..topology.builder import build
from ..topology.presets import resolve_topology
from ..topology.spec import TopologySpec

SizePolicy = Callable[[int], PageSize]


class System:
    """The full memory system shared by one core (or two SMT threads)."""

    def __init__(
        self,
        config: SystemConfig,
        size_policy: Optional[SizePolicy] = None,
        topology: Union[None, str, TopologySpec] = None,
    ) -> None:
        self.config = config
        spec = resolve_topology(topology, config)
        if spec.num_cores != 1:
            raise ValueError(
                f"System is single-core; topology {spec.name!r} has "
                f"{spec.num_cores} cores (use MulticoreSystem)"
            )
        built = build(spec, config, size_policy=size_policy)
        self.topology = built
        self.stats = built.stats
        self.dram = built.dram
        self.page_table = built.page_table

        core = built.cores[0]
        self.l1i = core.l1i
        self.l1d = core.l1d
        self.l2c = core.l2c
        self.llc = core.llc
        #: Every cache of the machine, in build order (L2C/LLC views above
        #: are positional conveniences; exports and invariants iterate this).
        self.caches = tuple(built.caches.values())
        self.walker = core.walker
        self.mmu = core.mmu
        self.adaptive = core.adaptive

    def reset_stats(self) -> None:
        """Reset every statistic at the warmup/measurement boundary.

        Covers :class:`SimStats` plus the counters that live on hardware
        structures themselves (MSHR files, xPTP's protected-eviction count,
        the adaptive controller's window counters) so warmup activity never
        leaks into measurement-window numbers.  Microarchitectural *state*
        (cache contents, recency stacks, outstanding MSHR entries) is kept —
        warming that state is the point of the warmup window.
        """
        self.topology.reset_stats()
        if invariants.enabled():
            invariants.check_no_leaked_mshr_entries(self)

    @property
    def xptp_policy(self) -> Optional[XPTPPolicy]:
        if self.l2c is not None and isinstance(self.l2c.policy, XPTPPolicy):
            return self.l2c.policy
        return self.topology.cores[0].xptp
