"""System wiring: build the full simulated machine from a SystemConfig.

Topology (Table 1): L1I and L1D feed a unified L2C, which feeds a private
LLC, which feeds DRAM.  The page-table walker issues its PTE reads to the
L2C; the MMU sits in front of everything.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cache.cache import SetAssociativeCache
from ..cache.prefetch import make_prefetcher
from ..common import invariants
from ..common.params import SystemConfig
from ..common.stats import SimStats
from ..common.types import PageSize
from ..mem.dram import DRAM
from ..ptw.page_table import PageTable
from ..ptw.walker import PageTableWalker
from ..replacement.registry import make_cache_policy
from ..replacement.xptp import XPTPPolicy
from ..tlb.hierarchy import MMU
from .adaptive import AdaptiveXPTPController

SizePolicy = Callable[[int], PageSize]


class System:
    """The full memory system shared by one core (or two SMT threads)."""

    def __init__(self, config: SystemConfig, size_policy: Optional[SizePolicy] = None) -> None:
        self.config = config
        self.stats = SimStats()

        self.dram = DRAM(config.dram, self.stats.level("DRAM"))
        self.llc = SetAssociativeCache(
            config.llc,
            make_cache_policy(config.llc_policy, config.llc.num_sets, config.llc.associativity),
            self.dram,
            self.stats.level("LLC"),
            make_prefetcher(config.llc.prefetcher),
        )
        self.l2c = SetAssociativeCache(
            config.l2c,
            make_cache_policy(
                config.l2c_policy, config.l2c.num_sets, config.l2c.associativity,
                xptp_k=config.xptp.k,
            ),
            self.llc,
            self.stats.level("L2C"),
            make_prefetcher(config.l2c.prefetcher),
        )
        self.l1i = SetAssociativeCache(
            config.l1i,
            make_cache_policy("lru", config.l1i.num_sets, config.l1i.associativity),
            self.l2c,
            self.stats.level("L1I"),
            make_prefetcher(config.l1i.prefetcher),
        )
        self.l1d = SetAssociativeCache(
            config.l1d,
            make_cache_policy("lru", config.l1d.num_sets, config.l1d.associativity),
            self.l2c,
            self.stats.level("L1D"),
            make_prefetcher(config.l1d.prefetcher),
        )

        self.page_table = PageTable(size_policy)
        self.walker = PageTableWalker(self.page_table, config.psc, self.l2c, self.stats)
        self.mmu = MMU(config, self.walker, self.stats)

        xptp = self.l2c.policy if isinstance(self.l2c.policy, XPTPPolicy) else None
        self.adaptive = AdaptiveXPTPController(config.adaptive, self.mmu, xptp)

    def reset_stats(self) -> None:
        """Reset every statistic at the warmup/measurement boundary.

        Covers :class:`SimStats` plus the counters that live on hardware
        structures themselves (MSHR files, xPTP's protected-eviction count,
        the adaptive controller's window counters) so warmup activity never
        leaks into measurement-window numbers.  Microarchitectural *state*
        (cache contents, recency stacks, outstanding MSHR entries) is kept —
        warming that state is the point of the warmup window.
        """
        self.stats.reset()
        self.adaptive.reset_stats()
        self.mmu.reset_stats()
        self.walker.reset_stats()
        self.dram.reset_stats()
        for cache in (self.l1i, self.l1d, self.l2c, self.llc):
            cache.reset_stats()
        if invariants.enabled():
            invariants.check_no_leaked_mshr_entries(self)

    @property
    def xptp_policy(self) -> Optional[XPTPPolicy]:
        policy = self.l2c.policy
        return policy if isinstance(policy, XPTPPolicy) else None
