"""Adaptive xPTP/LRU selection — Section 4.3.1.

The mechanism is two counters and a 1-bit status register: one counter
counts committed instructions, the other STLB misses.  When the instruction
counter reaches the window size (1000), the miss counter is compared with
the threshold ``T1``; the status register enables xPTP iff the miss count
exceeds it, and both counters reset.  Disabling xPTP makes its eviction
steps a–d no-ops, degenerating the L2C to exact LRU — no second policy
implementation is needed.
"""

from __future__ import annotations

from typing import Optional

from ..common.params import AdaptiveConfig
from ..replacement.xptp import XPTPPolicy
from ..tlb.hierarchy import MMU


class AdaptiveXPTPController:
    """Drives :attr:`XPTPPolicy.enabled` from windowed STLB miss counts."""

    def __init__(
        self,
        config: AdaptiveConfig,
        mmu: MMU,
        xptp_policy: Optional[XPTPPolicy],
    ) -> None:
        self.config = config
        self.mmu = mmu
        self.xptp_policy = xptp_policy
        self._window_instructions = 0
        self.switches = 0
        self.windows_enabled = 0
        self.windows_total = 0
        # Both operands are fixed after construction (config is frozen).
        self._active = xptp_policy is not None and config.enabled
        self._window_size = config.window_instructions
        self._t1 = config.t1_misses
        if self._active:
            # Start disabled: the first window must demonstrate STLB pressure.
            xptp_policy.enabled = False

    @property
    def active(self) -> bool:
        return self._active

    def on_instructions(self, count: int) -> None:
        """Account ``count`` committed instructions; maybe close a window."""
        if not self._active:
            return
        self._window_instructions += count
        # Carry the overshoot across windows: a multi-instruction record can
        # land past the boundary, and dropping the remainder would let every
        # window drift beyond the architected 1000 committed instructions.
        while self._window_instructions >= self._window_size:
            self._window_instructions -= self._window_size
            misses = self.mmu.take_stlb_miss_events()
            enable = misses > self._t1
            self.windows_total += 1
            if enable:
                self.windows_enabled += 1
            if enable != self.xptp_policy.enabled:
                self.switches += 1
                self.xptp_policy.enabled = enable

    def reset_stats(self) -> None:
        """Clear window counters (warmup/measurement boundary)."""
        self.switches = 0
        self.windows_enabled = 0
        self.windows_total = 0
