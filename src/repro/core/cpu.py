"""Simplified core timing model (DESIGN.md §4).

Each trace record is a fetch group of ``num_instrs`` instructions from one
L1I line.  The cycle cost of a record is:

* a base pipeline cost (``num_instrs * base_cpi``);
* the *full* front-end stall: instruction translation latency beyond an
  ITLB hit plus the un-hidden part of the L1I miss latency — instruction
  references are on the critical path of the pipeline (Section 3.2), so
  nothing hides them except the decoupled front end's prefetching;
* the *partially hidden* data stall: per memory operation, translation +
  cache latency is filtered through an overlap model in which the ROB
  hides short latencies entirely and a fraction of long ones.

This asymmetry — instruction stalls full price, data stalls discounted —
is the paper's central premise and what makes trading data STLB misses for
instruction STLB hits profitable.

Hot-path notes: model parameters and structure references are bound to
instance fields at construction, and each core owns one reusable fetch
request and one reusable data request whose scalar fields are rewritten per
reference (the hierarchy is synchronous, so a request is never live after
its ``access`` call returns).
"""

from __future__ import annotations

from ..common.types import AccessType, MemoryRequest, PAGE_BITS, RequestType, TraceRecord
from .system import System

#: High-bit tag separating SMT thread address spaces (above the 45-bit VPN).
THREAD_TAG_SHIFT = 58

_INSTRUCTION = AccessType.INSTRUCTION
_DATA = AccessType.DATA
_LOAD = RequestType.LOAD
_STORE = RequestType.STORE


class Core:
    """Executes trace records against a :class:`System` and returns cycles."""

    def __init__(self, system: System, thread_id: int = 0) -> None:
        self.system = system
        self.thread_id = thread_id
        self.cfg = system.config.core
        self._l1i_latency = system.config.l1i.latency
        self._l1d_latency = system.config.l1d.latency
        self._offset_mask = (1 << PAGE_BITS) - 1
        self._thread_tag = thread_id << THREAD_TAG_SHIFT
        # Hot-path bindings (the wiring never changes after construction).
        cfg = self.cfg
        self._base_cpi = cfg.base_cpi
        self._rob_hide_cycles = cfg.rob_hide_cycles
        self._data_overlap_factor = cfg.data_overlap_factor
        self._store_overlap_scale = cfg.store_overlap_scale
        self._fdip_keep = 1.0 - cfg.fdip_hide_factor
        self._fetch_resteer_penalty = cfg.fetch_resteer_penalty
        # Reusable request objects (one in flight at a time each).
        self._fetch_req = MemoryRequest(
            address=0, req_type=RequestType.IFETCH, thread_id=thread_id
        )
        self._data_req = MemoryRequest(
            address=0, req_type=_LOAD, thread_id=thread_id
        )
        # Structure bindings (System wiring is fixed, and SimStats/stats
        # objects survive reset_stats() as the same instances).
        self._translate = system.mmu.translate
        self._l1i_access = system.l1i.access
        self._l1d_access = system.l1d.access
        self._stats = system.stats
        self._adaptive_on_instructions = system.adaptive.on_instructions
        self._dram_note_instructions = system.dram.note_instructions

    # ------------------------------------------------------------------ #

    def _overlap(self, latency: float) -> float:
        """Data-side latency the ROB cannot hide."""
        exposed = latency - self._rob_hide_cycles
        if exposed <= 0:
            return 0.0
        return exposed * self._data_overlap_factor

    def _data_access(self, vaddr: int, pc: int, is_store: bool) -> float:
        tr = self._translate(vaddr, _DATA, self.thread_id)
        req = self._data_req
        req.address = (tr.pfn << PAGE_BITS) | (vaddr & self._offset_mask)
        req.req_type = _STORE if is_store else _LOAD
        req.pc = pc
        req.stlb_miss = tr.stlb_miss
        cache_latency = self._l1d_access(req)
        total = tr.latency + max(0, cache_latency - self._l1d_latency)
        exposed = total - self._rob_hide_cycles
        if exposed <= 0:
            return 0.0
        stall = exposed * self._data_overlap_factor
        if is_store:
            stall *= self._store_overlap_scale
        return stall

    # ------------------------------------------------------------------ #

    def execute(self, record: TraceRecord) -> float:
        """Run one fetch group; returns its cycle cost and updates stats."""
        thread_id = self.thread_id
        pc = record.pc | self._thread_tag

        # Front end: translate the fetch address, then fetch the line.
        tr = self._translate(pc, _INSTRUCTION, thread_id)
        req = self._fetch_req
        req.address = (tr.pfn << PAGE_BITS) | (pc & self._offset_mask)
        req.pc = pc
        req.stlb_miss = tr.stlb_miss
        icache_latency = self._l1i_access(req)
        icache_stall = max(0, icache_latency - self._l1i_latency) * self._fdip_keep
        front_stall = tr.latency + icache_stall
        if tr.stlb_miss:
            front_stall += self._fetch_resteer_penalty

        data_stall = 0.0
        loads = record.loads
        if loads:
            thread_tag = self._thread_tag
            for vaddr in loads:
                data_stall += self._data_access(vaddr | thread_tag, pc, is_store=False)
        stores = record.stores
        if stores:
            thread_tag = self._thread_tag
            for vaddr in stores:
                data_stall += self._data_access(vaddr | thread_tag, pc, is_store=True)

        num_instrs = record.num_instrs
        cycles = num_instrs * self._base_cpi + front_stall + data_stall

        stats = self._stats
        stats.instructions += num_instrs
        per_thread = stats.per_thread_instructions
        per_thread[thread_id] = per_thread.get(thread_id, 0) + num_instrs
        stats.front_stall_cycles += int(front_stall)
        self._adaptive_on_instructions(num_instrs)
        self._dram_note_instructions(num_instrs)
        return cycles
