"""Simplified core timing model (DESIGN.md §4).

Each trace record is a fetch group of ``num_instrs`` instructions from one
L1I line.  The cycle cost of a record is:

* a base pipeline cost (``num_instrs * base_cpi``);
* the *full* front-end stall: instruction translation latency beyond an
  ITLB hit plus the un-hidden part of the L1I miss latency — instruction
  references are on the critical path of the pipeline (Section 3.2), so
  nothing hides them except the decoupled front end's prefetching;
* the *partially hidden* data stall: per memory operation, translation +
  cache latency is filtered through an overlap model in which the ROB
  hides short latencies entirely and a fraction of long ones.

This asymmetry — instruction stalls full price, data stalls discounted —
is the paper's central premise and what makes trading data STLB misses for
instruction STLB hits profitable.
"""

from __future__ import annotations

from ..common.types import AccessType, MemoryRequest, PAGE_BITS, RequestType, TraceRecord
from .system import System

#: High-bit tag separating SMT thread address spaces (above the 45-bit VPN).
THREAD_TAG_SHIFT = 58


class Core:
    """Executes trace records against a :class:`System` and returns cycles."""

    def __init__(self, system: System, thread_id: int = 0) -> None:
        self.system = system
        self.thread_id = thread_id
        self.cfg = system.config.core
        self._l1i_latency = system.config.l1i.latency
        self._l1d_latency = system.config.l1d.latency
        self._offset_mask = (1 << PAGE_BITS) - 1
        self._thread_tag = thread_id << THREAD_TAG_SHIFT

    # ------------------------------------------------------------------ #

    def _overlap(self, latency: float) -> float:
        """Data-side latency the ROB cannot hide."""
        exposed = latency - self.cfg.rob_hide_cycles
        if exposed <= 0:
            return 0.0
        return exposed * self.cfg.data_overlap_factor

    def _data_access(self, vaddr: int, pc: int, is_store: bool) -> float:
        mmu = self.system.mmu
        tr = mmu.translate(vaddr, AccessType.DATA, self.thread_id)
        paddr = (tr.pfn << PAGE_BITS) | (vaddr & self._offset_mask)
        req = MemoryRequest(
            address=paddr,
            req_type=RequestType.STORE if is_store else RequestType.LOAD,
            pc=pc,
            thread_id=self.thread_id,
            stlb_miss=tr.stlb_miss,
        )
        cache_latency = self.system.l1d.access(req)
        total = tr.latency + max(0, cache_latency - self._l1d_latency)
        stall = self._overlap(total)
        if is_store:
            stall *= self.cfg.store_overlap_scale
        return stall

    # ------------------------------------------------------------------ #

    def execute(self, record: TraceRecord) -> float:
        """Run one fetch group; returns its cycle cost and updates stats."""
        system = self.system
        pc = record.pc | self._thread_tag

        # Front end: translate the fetch address, then fetch the line.
        tr = system.mmu.translate(pc, AccessType.INSTRUCTION, self.thread_id)
        phys_pc = (tr.pfn << PAGE_BITS) | (pc & self._offset_mask)
        fetch_req = MemoryRequest(
            address=phys_pc,
            req_type=RequestType.IFETCH,
            pc=pc,
            thread_id=self.thread_id,
            stlb_miss=tr.stlb_miss,
        )
        icache_latency = system.l1i.access(fetch_req)
        icache_stall = max(0, icache_latency - self._l1i_latency) * (
            1.0 - self.cfg.fdip_hide_factor
        )
        front_stall = tr.latency + icache_stall
        if tr.stlb_miss:
            front_stall += self.cfg.fetch_resteer_penalty

        data_stall = 0.0
        for vaddr in record.loads:
            data_stall += self._data_access(vaddr | self._thread_tag, pc, is_store=False)
        for vaddr in record.stores:
            data_stall += self._data_access(vaddr | self._thread_tag, pc, is_store=True)

        cycles = record.num_instrs * self.cfg.base_cpi + front_stall + data_stall

        stats = system.stats
        stats.instructions += record.num_instrs
        stats.per_thread_instructions[self.thread_id] = (
            stats.per_thread_instructions.get(self.thread_id, 0) + record.num_instrs
        )
        stats.bump("core.front_stall_cycles", int(front_stall))
        system.adaptive.on_instructions(record.num_instrs)
        system.dram.note_instructions(record.num_instrs)
        return cycles
