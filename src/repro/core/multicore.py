"""Multi-programmed multicore simulation (extension).

The paper evaluates single-core and SMT co-location; the other standard
server-consolidation configuration is multi-programmed cores with private
L1/L2/TLB hierarchies sharing the LLC and DRAM.  This module provides that
mode as a facade over the topology layer: the default graph is the
``multicore-N`` preset (per-core front ends, MMUs, walkers and L2Cs, a
shared LLC whose replacement policy is the configured ``llc_policy``, and
a shared DRAM channel whose bandwidth pressure all cores feel), and any
other multi-core :class:`~repro.topology.spec.TopologySpec` — e.g. the
``shared-l2`` preset — drops in via the ``topology`` argument.

Each core runs its own workload in its own address space (the same
high-bit tagging the SMT mode uses), so shared-structure contention is
capacity/bandwidth contention, never aliasing.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..common.params import SystemConfig
from ..common.stats import SimStats
from ..common.types import PageSize
from ..core.cpu import Core, THREAD_TAG_SHIFT
from ..core.simulator import SimulationResult
from ..kernel import resolve_engine
from ..topology.builder import BuiltCore, build
from ..topology.presets import multicore, resolve_topology
from ..topology.spec import TopologySpec
from ..workloads.base import SyntheticWorkload


class MulticoreSystem:
    """N cores with private L1/L2/TLBs, shared LLC and DRAM (by default)."""

    def __init__(
        self,
        config: SystemConfig,
        workloads: Sequence[SyntheticWorkload],
        topology: Union[None, str, TopologySpec] = None,
    ) -> None:
        if not workloads:
            raise ValueError("at least one workload/core required")
        self.config = config
        self.workloads = list(workloads)

        spec = (
            multicore(config, len(self.workloads))
            if topology is None
            else resolve_topology(topology, config)
        )
        if spec.num_cores != len(self.workloads):
            raise ValueError(
                f"topology {spec.name!r} has {spec.num_cores} cores but "
                f"{len(self.workloads)} workloads were given"
            )
        built = build(spec, config, size_policy=self._size_policy)
        self.topology = built
        self.stats: SimStats = built.stats
        self.dram = built.dram
        self.llc = built.cores[0].llc
        self.caches = tuple(built.caches.values())
        self.page_table = built.page_table

        #: Per-core private hierarchies (the builder's BuiltCore objects
        #: expose the legacy ``.l1i``/``.l1d``/``.l2c`` slice surface).
        self.slices: List[BuiltCore] = list(built.cores)
        self.cores: List[Core] = []
        self.adaptives = [core.adaptive for core in built.cores]
        for index, built_core in enumerate(built.cores):
            view = _SliceView(self, built_core)
            self.cores.append(Core(view, thread_id=index))

    def reset_stats(self) -> None:
        """Reset all statistics at the warmup/measurement boundary.

        Mirrors :meth:`repro.core.system.System.reset_stats`: SimStats plus
        the structure-owned counters of every core slice and shared level.
        """
        self.topology.reset_stats()

    def _size_policy(self, vaddr: int) -> PageSize:
        index = vaddr >> THREAD_TAG_SHIFT
        if index >= len(self.workloads):
            index = 0
        return self.workloads[index].size_policy(vaddr & ((1 << THREAD_TAG_SHIFT) - 1))


class _SliceView:
    """What a :class:`Core` sees as its 'system': the private slice plus shared state."""

    def __init__(self, parent: MulticoreSystem, built_core: BuiltCore) -> None:
        self.config = parent.config
        self.stats = parent.stats
        self.l1i = built_core.l1i
        self.l1d = built_core.l1d
        self.l2c = built_core.l2c
        self.llc = built_core.llc
        self.dram = parent.dram
        self.mmu = built_core.mmu
        self.adaptive = built_core.adaptive


def simulate_multicore(
    config: SystemConfig,
    workloads: Sequence[SyntheticWorkload],
    warmup_instructions: int = 50_000,
    measure_instructions: int = 200_000,
    config_label: str = "",
    topology: Union[None, str, TopologySpec] = None,
    engine: Union[None, str] = None,
) -> SimulationResult:
    """Run one workload per core; throughput = total instructions / slowest core.

    Cores advance in lock-step rounds of one fetch group each; per-core
    cycles accumulate independently while all shared-state contention
    (LLC capacity, DRAM bandwidth) plays out through the shared objects.
    ``engine`` is accepted for interface symmetry and validated, but the
    lock-step round-robin always runs the scalar spec path (the batched
    kernel drives a single stream; see :mod:`repro.kernel`).
    """
    resolve_engine(engine)
    system = MulticoreSystem(config, workloads, topology=topology)
    streams = [wl.record_stream() for wl in workloads]
    stats = system.stats
    core_cycles = [0.0] * len(system.cores)

    def round_robin() -> None:
        for index, core in enumerate(system.cores):
            core_cycles[index] += core.execute(next(streams[index]))

    while stats.instructions < warmup_instructions:
        round_robin()
    system.reset_stats()
    for index in range(len(core_cycles)):
        core_cycles[index] = 0.0

    while stats.instructions < measure_instructions:
        round_robin()
    stats.cycles = max(core_cycles)
    name = "+".join(wl.name for wl in workloads)
    return SimulationResult(name, config_label, stats)
