"""Multi-programmed multicore simulation (extension).

The paper evaluates single-core and SMT co-location; the other standard
server-consolidation configuration is multi-programmed cores with private
L1/L2/TLB hierarchies sharing the LLC and DRAM.  This module provides that
mode: per-core front ends, MMUs, walkers and L2Cs, with a shared LLC
(whose replacement policy is the configured ``llc_policy``) and a shared
DRAM channel whose bandwidth pressure all cores feel.

Each core runs its own workload in its own address space (the same
high-bit tagging the SMT mode uses), so shared-structure contention is
capacity/bandwidth contention, never aliasing.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cache.cache import SetAssociativeCache
from ..cache.prefetch import make_prefetcher
from ..common.params import SystemConfig
from ..common.stats import SimStats
from ..common.types import PageSize
from ..core.adaptive import AdaptiveXPTPController
from ..core.cpu import Core, THREAD_TAG_SHIFT
from ..core.simulator import SimulationResult
from ..mem.dram import DRAM
from ..ptw.page_table import PageTable
from ..ptw.walker import PageTableWalker
from ..replacement.registry import make_cache_policy
from ..replacement.xptp import XPTPPolicy
from ..tlb.hierarchy import MMU
from ..workloads.base import SyntheticWorkload


class _CoreSlice:
    """The private hierarchy of one core, wired onto shared LLC/DRAM."""

    def __init__(self, index: int, config: SystemConfig, llc, stats: SimStats) -> None:
        self.config = config
        suffix = f"_{index}"
        self.l2c = SetAssociativeCache(
            config.l2c,
            make_cache_policy(
                config.l2c_policy, config.l2c.num_sets, config.l2c.associativity,
                xptp_k=config.xptp.k,
            ),
            llc,
            stats.level(f"L2C{suffix}"),
            make_prefetcher(config.l2c.prefetcher),
        )
        self.l1i = SetAssociativeCache(
            config.l1i,
            make_cache_policy("lru", config.l1i.num_sets, config.l1i.associativity),
            self.l2c,
            stats.level(f"L1I{suffix}"),
            make_prefetcher(config.l1i.prefetcher),
        )
        self.l1d = SetAssociativeCache(
            config.l1d,
            make_cache_policy("lru", config.l1d.num_sets, config.l1d.associativity),
            self.l2c,
            stats.level(f"L1D{suffix}"),
            make_prefetcher(config.l1d.prefetcher),
        )


class MulticoreSystem:
    """N cores with private L1/L2/TLBs, shared LLC and DRAM."""

    def __init__(
        self, config: SystemConfig, workloads: Sequence[SyntheticWorkload]
    ) -> None:
        if not workloads:
            raise ValueError("at least one workload/core required")
        self.config = config
        self.stats = SimStats()
        self.workloads = list(workloads)

        self.dram = DRAM(config.dram, self.stats.level("DRAM"))
        self.llc = SetAssociativeCache(
            config.llc,
            make_cache_policy(config.llc_policy, config.llc.num_sets, config.llc.associativity),
            self.dram,
            self.stats.level("LLC"),
            make_prefetcher(config.llc.prefetcher),
        )
        self.page_table = PageTable(self._size_policy)

        self.slices: List[_CoreSlice] = []
        self.cores: List[Core] = []
        self.adaptives: List[AdaptiveXPTPController] = []
        for index in range(len(self.workloads)):
            core_slice = _CoreSlice(index, config, self.llc, self.stats)
            walker = PageTableWalker(self.page_table, config.psc, core_slice.l2c, self.stats)
            mmu = MMU(config, walker, self.stats)
            xptp = (
                core_slice.l2c.policy
                if isinstance(core_slice.l2c.policy, XPTPPolicy)
                else None
            )
            adaptive = AdaptiveXPTPController(config.adaptive, mmu, xptp)
            # Core only needs the structural attributes a System exposes;
            # _SliceView provides the same surface over this core's slice.
            view = _SliceView(self, core_slice, mmu, adaptive)
            core = Core(view, thread_id=index)
            self.slices.append(core_slice)
            self.cores.append(core)
            self.adaptives.append(adaptive)

    def reset_stats(self) -> None:
        """Reset all statistics at the warmup/measurement boundary.

        Mirrors :meth:`repro.core.system.System.reset_stats`: SimStats plus
        the structure-owned counters of every core slice and shared level.
        """
        self.stats.reset()
        for adaptive in self.adaptives:
            adaptive.reset_stats()
        for core in self.cores:
            core.system.mmu.reset_stats()
        for core_slice in self.slices:
            core_slice.l1i.reset_stats()
            core_slice.l1d.reset_stats()
            core_slice.l2c.reset_stats()
        self.llc.reset_stats()

    def _size_policy(self, vaddr: int) -> PageSize:
        index = vaddr >> THREAD_TAG_SHIFT
        if index >= len(self.workloads):
            index = 0
        return self.workloads[index].size_policy(vaddr & ((1 << THREAD_TAG_SHIFT) - 1))


class _SliceView:
    """What a :class:`Core` sees as its 'system': the private slice plus shared state."""

    def __init__(self, parent: MulticoreSystem, core_slice: _CoreSlice, mmu, adaptive) -> None:
        self.config = parent.config
        self.stats = parent.stats
        self.l1i = core_slice.l1i
        self.l1d = core_slice.l1d
        self.l2c = core_slice.l2c
        self.llc = parent.llc
        self.dram = parent.dram
        self.mmu = mmu
        self.adaptive = adaptive


def simulate_multicore(
    config: SystemConfig,
    workloads: Sequence[SyntheticWorkload],
    warmup_instructions: int = 50_000,
    measure_instructions: int = 200_000,
    config_label: str = "",
) -> SimulationResult:
    """Run one workload per core; throughput = total instructions / slowest core.

    Cores advance in lock-step rounds of one fetch group each; per-core
    cycles accumulate independently while all shared-state contention
    (LLC capacity, DRAM bandwidth) plays out through the shared objects.
    """
    system = MulticoreSystem(config, workloads)
    streams = [wl.record_stream() for wl in workloads]
    stats = system.stats
    core_cycles = [0.0] * len(system.cores)

    def round_robin() -> None:
        for index, core in enumerate(system.cores):
            core_cycles[index] += core.execute(next(streams[index]))

    while stats.instructions < warmup_instructions:
        round_robin()
    system.reset_stats()
    for index in range(len(core_cycles)):
        core_cycles[index] = 0.0

    while stats.instructions < measure_instructions:
        round_robin()
    stats.cycles = max(core_cycles)
    name = "+".join(wl.name for wl in workloads)
    return SimulationResult(name, config_label, stats)
