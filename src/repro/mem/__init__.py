"""Main-memory substrate."""

from .dram import DRAM

__all__ = ["DRAM"]
