"""DRAM model.

Table 1 gives tRP = tRCD = tCAS = 12 (DRAM cycles) at 12.8 GB/s.  We model
a fixed access latency in CPU cycles plus a bandwidth-pressure term: the
access rate of the *previous* kilo-instruction window (reported by the
core via :meth:`note_instructions`) sets a bounded queueing delay for the
current window.  Under SMT co-location the shared memory path therefore
slows both threads, as in the paper's contended-structure methodology.
"""

from __future__ import annotations

from ..common.params import DRAMConfig
from ..common.stats import LevelStats
from ..common.types import AccessType, MemoryRequest, RequestType

_DATA = AccessType.DATA
_IFETCH = RequestType.IFETCH
_WRITEBACK = RequestType.WRITEBACK

#: Accesses per kilo-instruction the channel absorbs with no queueing.
_FREE_RATE = 40
#: Queue delay is capped at this many multiples of ``contention_cycles``.
_MAX_PRESSURE = 3


class DRAM:
    """Terminal level of the memory hierarchy."""

    def __init__(self, config: DRAMConfig, stats: LevelStats) -> None:
        self.config = config
        self.stats = stats
        self._window_accesses = 0
        self._window_instructions = 0
        self._queue_delay = 0
        # Row-buffer state: open row per bank (None = precharged).
        self._open_rows = [None] * max(1, config.banks)
        self.row_hits = 0
        self.row_misses = 0

    def reset_stats(self) -> None:
        """Clear row-buffer event counters at the warmup/measurement boundary.

        Open-row state (and the bandwidth window) is microarchitectural state
        and survives; only the statistics are zeroed, so measurement-window
        ``dram.row_hits``/``dram.row_misses`` exclude warmup activity.
        """
        self.row_hits = 0
        self.row_misses = 0

    def _row_buffer_latency(self, address: int) -> int:
        cfg = self.config
        row = address // cfg.row_bytes
        bank = row % cfg.banks
        ratio = cfg.clock_ratio
        if self._open_rows[bank] == row:
            self.row_hits += 1
            dram_cycles = cfg.t_cas
        else:
            self.row_misses += 1
            dram_cycles = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            self._open_rows[bank] = row
        return cfg.bus_overhead + int(dram_cycles * ratio)

    def access(self, req: MemoryRequest) -> int:
        stats = self.stats
        stats.accesses += 1
        self._window_accesses += 1
        # categorize() inlined (hot: every miss in the hierarchy ends here).
        if req.is_pte:
            category = "dt" if req.translation_type is _DATA else "it"
        elif req.req_type is _IFETCH:
            category = "i"
        else:
            category = "d"
        stats.cat_accesses[category] += 1
        if req.req_type is _WRITEBACK:
            # Writes are buffered; they consume bandwidth but add no demand
            # latency.  Under the row-buffer model they still open their row.
            if self.config.row_buffer:
                self._row_buffer_latency(req.address)
            return 0
        if self.config.row_buffer:
            return self._row_buffer_latency(req.address) + self._queue_delay
        return self.config.latency + self._queue_delay

    def note_instructions(self, count: int) -> None:
        """Advance the bandwidth window by ``count`` committed instructions."""
        self._window_instructions += count
        if self._window_instructions < 1000:
            return
        rate = self._window_accesses * 1000 // max(1, self._window_instructions)
        pressure = max(0, rate - _FREE_RATE) / _FREE_RATE
        self._queue_delay = int(
            self.config.contention_cycles * min(pressure, _MAX_PRESSURE)
        )
        self._window_accesses = 0
        self._window_instructions = 0

    @property
    def queue_delay(self) -> int:
        return self._queue_delay
