"""Static Re-Reference Interval Prediction (SRRIP) [Jaleel et al., ISCA'10].

Each line carries a 2-bit re-reference prediction value (RRPV).  Fills
insert with a *long* interval (RRPV = max-1), hits promote to *near*
(RRPV = 0) and victims are lines predicted *distant* (RRPV = max), aging
the whole set until one is found.
"""

from __future__ import annotations

from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest
from .base import CacheReplacementPolicy

RRPV_BITS = 2
RRPV_MAX = (1 << RRPV_BITS) - 1
RRPV_LONG = RRPV_MAX - 1


class SRRIPPolicy(CacheReplacementPolicy):
    name = "srrip"

    def victim(self, set_index: int, lines: Sequence[CacheLine], req: MemoryRequest) -> int:
        while True:
            for way, line in enumerate(lines):
                if line.rrpv >= RRPV_MAX:
                    return way
            for line in lines:
                line.rrpv += 1

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        lines[way].rrpv = self.fill_rrpv(req)

    def on_hit(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        lines[way].rrpv = 0

    def fill_rrpv(self, req: MemoryRequest) -> int:
        """Insertion RRPV; subclasses (DRRIP/TDRRIP/SHiP) override this."""
        return RRPV_LONG
