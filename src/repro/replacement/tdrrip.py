"""T-DRRIP: translation-aware DRRIP [Vasudha & Panda, ISPASS'22].

Two translation-aware modifications over DRRIP (Section 2.2 of the paper):

* cache blocks holding page-table entries are inserted with *near*
  re-reference (RRPV = 0), prioritising their retention;
* blocks brought in by demand accesses whose translation missed in the
  STLB are inserted *distant* (RRPV = max), favouring their eviction.

T-DRRIP does **not** distinguish instruction PTEs from data PTEs — the
limitation iTP+xPTP addresses.
"""

from __future__ import annotations

from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest, RequestType
from .drrip import DRRIPPolicy
from .srrip import RRPV_MAX


class TDRRIPPolicy(DRRIPPolicy):
    name = "tdrrip"

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        if req.is_pte:
            lines[way].rrpv = 0
            return
        if req.stlb_miss and req.req_type in (RequestType.LOAD, RequestType.STORE):
            # Only *demand loads/stores* behind an STLB miss are victimised;
            # instruction fetches are not part of the published rule.
            lines[way].rrpv = RRPV_MAX
            return
        super().on_fill(set_index, way, lines, req)
