"""Mockingjay-simplified [Shah, Jain & Lin, HPCA'22].

Mockingjay mimics Belady's MIN by predicting per-line reuse distances from
sampled history and evicting the line with the largest estimated time
remaining (ETR).  This implementation keeps the core mechanism —

* a sampled-history predictor: an EWMA of observed reuse distances per PC
  signature, trained from a sampler of recent accesses;
* per-line ETA (predicted next-reuse time) set on fill and hit;
* victim selection of the line whose reuse lies furthest in the future,
  with lines already overdue (predicted reuse time passed without a hit)
  treated as dead and evicted first

— while omitting the paper's quantisation, aging clocks and dueling
details.  Docstring per DESIGN.md §3: this is a faithful simplification,
not the full design.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest
from .base import CacheReplacementPolicy

PREDICTOR_ENTRIES = 8192
SAMPLER_CAPACITY = 4096
SAMPLED_SET_MASK = 0x7  # sample 1 in 8 sets
DEFAULT_REUSE = 1024
MAX_REUSE = 1 << 20
EWMA_NUM = 3  # new estimate weight = 1/4 old + 3/4... (see _train)


def _signature(req: MemoryRequest) -> int:
    key = req.pc if req.pc else req.address >> 12
    return (key ^ (key >> 13) ^ (key >> 26)) % PREDICTOR_ENTRIES


class MockingjayPolicy(CacheReplacementPolicy):
    name = "mockingjay"

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.clock = 0
        self.predicted_reuse = [DEFAULT_REUSE] * PREDICTOR_ENTRIES
        # sampler: line address -> (timestamp, signature)
        self._sampler: "OrderedDict[int, tuple]" = OrderedDict()

    def _train(self, req: MemoryRequest) -> None:
        """Observe one access in the sampler and update the predictor."""
        line_addr = req.address >> 6
        if (line_addr & SAMPLED_SET_MASK) != 0:
            return
        seen = self._sampler.pop(line_addr, None)
        if seen is not None:
            then, sig = seen
            observed = min(self.clock - then, MAX_REUSE)
            old = self.predicted_reuse[sig]
            self.predicted_reuse[sig] = (old + EWMA_NUM * observed) // (EWMA_NUM + 1)
        self._sampler[line_addr] = (self.clock, _signature(req))
        if len(self._sampler) > SAMPLER_CAPACITY:
            # Evicted sampler entries were never reused: train toward "far".
            __, (___, sig) = self._sampler.popitem(last=False)
            old = self.predicted_reuse[sig]
            self.predicted_reuse[sig] = min(MAX_REUSE, (old + EWMA_NUM * MAX_REUSE) // (EWMA_NUM + 1))

    def _predict(self, req: MemoryRequest) -> int:
        return self.predicted_reuse[_signature(req)]

    def victim(self, set_index: int, lines: Sequence[CacheLine], req: MemoryRequest) -> int:
        best_way = 0
        best_score = -1
        for way, line in enumerate(lines):
            if line.eta < self.clock:
                # Overdue: predicted reuse never happened — treat as dead.
                score = MAX_REUSE + (self.clock - line.eta)
            else:
                score = line.eta - self.clock
            if score > best_score:
                best_score = score
                best_way = way
        return best_way

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        self.clock += 1
        self._train(req)
        lines[way].eta = self.clock + self._predict(req)

    def on_hit(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        self.clock += 1
        self._train(req)
        lines[way].eta = self.clock + self._predict(req)
