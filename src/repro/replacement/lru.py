"""Least-recently-used replacement (the paper's baseline everywhere)."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from ..common.invariants import stack_factory
from ..common.recency import RecencyStack
from ..common.types import MemoryRequest
from .base import CacheReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine


class LRUPolicy(CacheReplacementPolicy):
    """Classic LRU over a per-set recency stack."""

    name = "lru"

    #: Stack implementation; the golden bit-identity test swaps in the
    #: naive list-based reference model here.
    stack_cls = RecencyStack

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        # stack_factory swaps in the differential checker under REPRO_CHECK=1.
        make_stack = stack_factory(self.stack_cls)
        self.stacks: List[RecencyStack] = [make_stack() for _ in range(num_sets)]

    def victim(self, set_index: int, lines: Sequence[CacheLine], req: MemoryRequest) -> int:
        return self.stacks[set_index].lru_way

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        self.stacks[set_index].place_at_depth(way, 0)

    def on_hit(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        self.stacks[set_index].touch(way)

    def on_evict(self, set_index: int, way: int, lines: Sequence[CacheLine]) -> None:
        self.stacks[set_index].discard(way)
