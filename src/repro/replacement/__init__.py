"""Cache replacement policies: baselines and the paper's xPTP."""

from .base import CacheReplacementPolicy
from .drrip import DRRIPPolicy
from .lru import LRUPolicy
from .mockingjay import MockingjayPolicy
from .ptp import PTPPolicy
from .random_policy import RandomPolicy
from .registry import available_policies, make_cache_policy
from .ship import SHiPPolicy
from .srrip import RRPV_LONG, RRPV_MAX, SRRIPPolicy
from .tdrrip import TDRRIPPolicy
from .tship import TSHiPPolicy
from .xptp import XPTPPolicy

__all__ = [
    "CacheReplacementPolicy",
    "DRRIPPolicy",
    "LRUPolicy",
    "MockingjayPolicy",
    "PTPPolicy",
    "RRPV_LONG",
    "RRPV_MAX",
    "RandomPolicy",
    "SHiPPolicy",
    "SRRIPPolicy",
    "TDRRIPPolicy",
    "TSHiPPolicy",
    "XPTPPolicy",
    "available_policies",
    "make_cache_policy",
]
