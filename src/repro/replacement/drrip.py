"""Dynamic RRIP (DRRIP) with set dueling [Jaleel et al., ISCA'10].

A few leader sets always run SRRIP, a few always run BRRIP (bimodal: mostly
distant insertion); a saturating PSEL counter picks the winner for the
follower sets.
"""

from __future__ import annotations

import random
from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest
from .srrip import RRPV_LONG, RRPV_MAX, SRRIPPolicy

PSEL_BITS = 10
PSEL_MAX = (1 << PSEL_BITS) - 1
BRRIP_NEAR_PROBABILITY = 1 / 32


class DRRIPPolicy(SRRIPPolicy):
    name = "drrip"

    def __init__(
        self, num_sets: int, associativity: int, num_leader_sets: int = 32, seed: int = 0
    ) -> None:
        super().__init__(num_sets, associativity)
        self._rng = random.Random(seed)
        self.psel = PSEL_MAX // 2
        num_leader_sets = min(num_leader_sets, max(1, num_sets // 2))
        stride = max(1, num_sets // (2 * num_leader_sets))
        self.srrip_leaders = set(range(0, num_sets, 2 * stride))
        self.brrip_leaders = set(range(stride, num_sets, 2 * stride))

    def _use_brrip(self, set_index: int) -> bool:
        if set_index in self.srrip_leaders:
            return False
        if set_index in self.brrip_leaders:
            return True
        # High PSEL means SRRIP leaders missed more, so followers use BRRIP.
        return self.psel > PSEL_MAX // 2

    def record_miss(self, set_index: int) -> None:
        """Set-dueling feedback; the cache calls this on every demand miss."""
        if set_index in self.srrip_leaders and self.psel < PSEL_MAX:
            self.psel += 1
        elif set_index in self.brrip_leaders and self.psel > 0:
            self.psel -= 1

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        if self._use_brrip(set_index):
            near = self._rng.random() < BRRIP_NEAR_PROBABILITY
            lines[way].rrpv = RRPV_LONG if near else RRPV_MAX
        else:
            lines[way].rrpv = self.fill_rrpv(req)
