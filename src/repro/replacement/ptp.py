"""Page Table Prioritization (PTP) [Park et al., ASPLOS'22].

PTP makes page walks cache hits by dedicating part of the L2 cache to
page-table blocks: PTE-holding lines are protected from eviction as long
as they occupy no more than a reserved share of the set's ways (modelling
the paper's PT-dedicated L2 capacity).  Within budget, the victim search
skips PTE blocks; once a set holds more PTE blocks than the budget, they
compete under plain LRU again.

Two properties distinguish it from xPTP (Section 2.2 of the reproduced
paper): PTP does **not** distinguish data PTEs from instruction PTEs, and
its protection is a fixed capacity carve-out rather than xPTP's
recency-conditioned ALT-victim filter (Figure 6) — PTP neither adapts to
STLB pressure nor cooperates with the STLB replacement policy.
"""

from __future__ import annotations

from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest
from .lru import LRUPolicy

#: Fraction of each set's ways reserved for PTE blocks.
RESERVED_FRACTION = 0.375


class PTPPolicy(LRUPolicy):
    name = "ptp"

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.reserved_ways = max(1, int(associativity * RESERVED_FRACTION))

    def victim(self, set_index: int, lines: Sequence[CacheLine], req: MemoryRequest) -> int:
        stack = self.stacks[set_index]
        pte_blocks = sum(1 for line in lines if line.valid and line.is_pte)
        if pte_blocks > self.reserved_ways:
            # Over budget: PTE blocks compete under plain LRU.
            return stack.lru_way
        for way in stack.ways_from_lru():
            if not lines[way].is_pte:
                return way
        return stack.lru_way
