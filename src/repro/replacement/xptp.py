"""Extended Page Table Prioritization (xPTP) — Section 4.2 of the paper.

xPTP is LRU with one change: the eviction policy protects cache blocks that
hold **data** PTEs.  Following Figure 6:

a. the LRU victim is identified at the bottom of the recency stack;
b. in parallel, an alternative victim is identified — the block closest to
   the LRU end that does *not* hold a data PTE (``ALT_VICTIMpos``);
c. if the alternative sits **more than** ``K`` positions above the LRU end
   (i.e. it is too recently used to be a good victim), the plain LRU
   victim is evicted; an alternative at exactly ``K`` is still taken;
d. otherwise the alternative (non-data-PTE) block is evicted.

Insertion and promotion are plain LRU; insertion additionally records the
Type bit carried by the request (done by the cache when it fills the line).

``enabled`` implements the iTP+xPTP adaptive switch (Section 4.3.1): when
False, steps a–d are skipped and the policy degenerates to exact LRU, so no
separate LRU implementation is needed — as the paper notes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..common.types import MemoryRequest
from .lru import LRUPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine


class XPTPPolicy(LRUPolicy):
    name = "xptp"

    def __init__(self, num_sets: int, associativity: int, k: int = 8) -> None:
        super().__init__(num_sets, associativity)
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = k
        self.enabled = True
        self.protected_evictions_avoided = 0

    def reset_stats(self) -> None:
        """Clear counters at the warmup/measurement boundary (state is kept)."""
        self.protected_evictions_avoided = 0

    def victim(self, set_index: int, lines: Sequence[CacheLine], req: MemoryRequest) -> int:
        stack = self.stacks[set_index]
        lru_way = stack.lru_way
        if not self.enabled or not lines[lru_way].is_data_pte:
            # Fast path: the LRU block is not a protected data PTE anyway.
            return lru_way
        for height, way in enumerate(stack.ways_from_lru()):
            if not lines[way].is_data_pte:
                if height > self.k:
                    # Step (c): alternative more than K above LRU — evict LRU.
                    return lru_way
                self.protected_evictions_avoided += 1
                return way
        return lru_way
