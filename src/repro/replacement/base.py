"""Cache replacement policy interface.

A policy owns whatever per-set/per-line metadata it needs; the cache calls
into it on every fill, hit and eviction, and asks it for a victim way when a
set is full.  Lines are :class:`repro.cache.line.CacheLine` objects, whose
``rrpv``/``signature``/``outcome``/``eta`` fields are scratch space reserved
for policies.
"""

from __future__ import annotations

import abc
from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest


class CacheReplacementPolicy(abc.ABC):
    """Replacement decisions for one set-associative cache."""

    name: str = "base"

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ValueError("num_sets and associativity must be positive")
        self.num_sets = num_sets
        self.associativity = associativity

    @abc.abstractmethod
    def victim(
        self, set_index: int, lines: Sequence[CacheLine], req: MemoryRequest
    ) -> int:
        """Pick the way to evict from a full set."""

    @abc.abstractmethod
    def on_fill(
        self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest
    ) -> None:
        """A new block was installed in ``way``."""

    @abc.abstractmethod
    def on_hit(
        self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest
    ) -> None:
        """``way`` was hit by ``req``."""

    def on_evict(self, set_index: int, way: int, lines: Sequence[CacheLine]) -> None:
        """``way`` is being evicted (before the new fill).  Optional hook."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} sets={self.num_sets} ways={self.associativity}>"
