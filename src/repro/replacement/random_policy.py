"""Random replacement (vendor first-level-TLB style; useful control baseline)."""

from __future__ import annotations

import random
from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest
from .base import CacheReplacementPolicy


class RandomPolicy(CacheReplacementPolicy):
    """Uniformly random victim selection with a seeded, deterministic RNG."""

    name = "random"

    def __init__(self, num_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(num_sets, associativity)
        self._rng = random.Random(seed)

    def victim(self, set_index: int, lines: Sequence[CacheLine], req: MemoryRequest) -> int:
        return self._rng.randrange(self.associativity)

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        pass

    def on_hit(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        pass
