"""Factory for cache replacement policies by name (Table 2 of the paper).

Built on the shared :class:`repro.common.registry.Registry` base; each entry
is a factory ``(num_sets, associativity, **context) -> policy``.  The
context carries policy parameters sourced from :class:`SystemConfig`
(currently only ``xptp_k``); factories take what they need and ignore the
rest, so one calling convention covers every policy.  Extensions register
their own factories on :data:`CACHE_POLICIES` (see
``examples/custom_policy.py``).
"""

from __future__ import annotations

from typing import Callable

from ..common.registry import Registry
from .base import CacheReplacementPolicy
from .drrip import DRRIPPolicy
from .lru import LRUPolicy
from .mockingjay import MockingjayPolicy
from .ptp import PTPPolicy
from .random_policy import RandomPolicy
from .ship import SHiPPolicy
from .srrip import SRRIPPolicy
from .tdrrip import TDRRIPPolicy
from .tship import TSHiPPolicy
from .xptp import XPTPPolicy

CachePolicyFactory = Callable[..., CacheReplacementPolicy]

#: The process-wide cache-policy registry.
CACHE_POLICIES: Registry[CachePolicyFactory] = Registry("cache policy")


def _simple(cls: type) -> CachePolicyFactory:
    """Adapt a ``cls(num_sets, associativity)`` constructor to the factory
    convention (extra context keywords are ignored)."""

    def factory(
        num_sets: int, associativity: int, **_context: object
    ) -> CacheReplacementPolicy:
        return cls(num_sets, associativity)

    return factory


def _xptp(num_sets: int, associativity: int, **context: object) -> XPTPPolicy:
    return XPTPPolicy(num_sets, associativity, k=int(context.get("xptp_k", 8)))


for _name, _cls in (
    ("lru", LRUPolicy),
    ("random", RandomPolicy),
    ("srrip", SRRIPPolicy),
    ("drrip", DRRIPPolicy),
    ("tdrrip", TDRRIPPolicy),
    ("ptp", PTPPolicy),
    ("ship", SHiPPolicy),
    ("tship", TSHiPPolicy),
    ("mockingjay", MockingjayPolicy),
):
    CACHE_POLICIES.register(_name, _simple(_cls))
CACHE_POLICIES.register("xptp", _xptp)


def available_policies() -> tuple:
    return tuple(sorted(CACHE_POLICIES.names()))


def make_cache_policy(
    name: str, num_sets: int, associativity: int, *, xptp_k: int = 8
) -> CacheReplacementPolicy:
    """Instantiate a cache replacement policy by its registry name."""
    return CACHE_POLICIES.get(name)(num_sets, associativity, xptp_k=xptp_k)
