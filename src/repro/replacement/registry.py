"""Factory for cache replacement policies by name (Table 2 of the paper)."""

from __future__ import annotations

from typing import Callable, Dict

from .base import CacheReplacementPolicy
from .drrip import DRRIPPolicy
from .lru import LRUPolicy
from .mockingjay import MockingjayPolicy
from .ptp import PTPPolicy
from .random_policy import RandomPolicy
from .ship import SHiPPolicy
from .srrip import SRRIPPolicy
from .tdrrip import TDRRIPPolicy
from .tship import TSHiPPolicy
from .xptp import XPTPPolicy

_FACTORIES: Dict[str, Callable[..., CacheReplacementPolicy]] = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "drrip": DRRIPPolicy,
    "tdrrip": TDRRIPPolicy,
    "ptp": PTPPolicy,
    "xptp": XPTPPolicy,
    "ship": SHiPPolicy,
    "tship": TSHiPPolicy,
    "mockingjay": MockingjayPolicy,
}


def available_policies() -> tuple:
    return tuple(sorted(_FACTORIES))


def make_cache_policy(
    name: str, num_sets: int, associativity: int, *, xptp_k: int = 8
) -> CacheReplacementPolicy:
    """Instantiate a cache replacement policy by its registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    if name == "xptp":
        return factory(num_sets, associativity, k=xptp_k)
    return factory(num_sets, associativity)
