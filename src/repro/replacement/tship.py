"""T-SHiP: translation-aware SHiP [Vasudha & Panda, ISPASS'22].

The companion of T-DRRIP in the "address translation conscious caching"
proposal: SHiP's signature-driven insertion, with two translation-aware
overrides — blocks holding PTEs are inserted with *near* re-reference
(RRPV = 0), and demand blocks whose translation missed in the STLB are
inserted *distant*.  Type-oblivious with respect to instruction vs data
PTEs, like T-DRRIP.
"""

from __future__ import annotations

from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest, RequestType
from .ship import SHiPPolicy, pc_signature
from .srrip import RRPV_MAX


class TSHiPPolicy(SHiPPolicy):
    name = "tship"

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        if req.is_pte:
            line = lines[way]
            line.signature = pc_signature(req)
            line.outcome = False
            line.rrpv = 0
            return
        if req.stlb_miss and req.req_type in (RequestType.LOAD, RequestType.STORE):
            line = lines[way]
            line.signature = pc_signature(req)
            line.outcome = False
            line.rrpv = RRPV_MAX
            return
        super().on_fill(set_index, way, lines, req)
