"""SHiP-PC: Signature-based Hit Predictor [Wu et al., MICRO'11].

SRRIP augmented with a Signature History Counter Table (SHCT) indexed by a
hash of the requesting PC.  Each line remembers its signature and whether it
was re-referenced; on eviction without reuse the signature's counter is
decremented, on reuse it is incremented.  Fills whose signature has a zero
counter are predicted dead-on-arrival and inserted distant.
"""

from __future__ import annotations

from typing import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.line import CacheLine
from ..common.types import MemoryRequest
from .srrip import RRPV_LONG, RRPV_MAX, SRRIPPolicy

SHCT_ENTRIES = 16384
SHCT_MAX = 7  # 3-bit saturating counters


def pc_signature(req: MemoryRequest) -> int:
    """Hash the requesting PC (or address for PC-less requests) into the SHCT."""
    key = req.pc if req.pc else req.address >> 12
    return (key ^ (key >> 14) ^ (key >> 28)) % SHCT_ENTRIES


class SHiPPolicy(SRRIPPolicy):
    name = "ship"

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.shct = [SHCT_MAX // 2] * SHCT_ENTRIES

    def on_fill(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        sig = pc_signature(req)
        line = lines[way]
        line.signature = sig
        line.outcome = False
        line.rrpv = RRPV_MAX if self.shct[sig] == 0 else RRPV_LONG

    def on_hit(self, set_index: int, way: int, lines: Sequence[CacheLine], req: MemoryRequest) -> None:
        line = lines[way]
        line.rrpv = 0
        if not line.outcome:
            line.outcome = True
            if self.shct[line.signature] < SHCT_MAX:
                self.shct[line.signature] += 1

    def on_evict(self, set_index: int, way: int, lines: Sequence[CacheLine]) -> None:
        line = lines[way]
        if line.valid and not line.outcome and self.shct[line.signature] > 0:
            self.shct[line.signature] -= 1
