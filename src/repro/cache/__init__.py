"""Cache hierarchy substrate: lines, MSHRs, set-associative caches, prefetchers."""

from .cache import SetAssociativeCache
from .line import CacheLine
from .mshr import MSHREntry, MSHRFile
from .prefetch import (
    FDIPPrefetcher,
    NextLinePrefetcher,
    Prefetcher,
    StridePrefetcher,
    make_prefetcher,
)

__all__ = [
    "CacheLine",
    "FDIPPrefetcher",
    "MSHREntry",
    "MSHRFile",
    "NextLinePrefetcher",
    "Prefetcher",
    "SetAssociativeCache",
    "StridePrefetcher",
    "make_prefetcher",
]
