"""Miss Status Holding Registers.

The model is synchronous (a miss is resolved within the same ``access``
call), so MSHRs do not buffer time.  They are still modelled explicitly
because the paper's mechanism depends on them: xPTP stores the ``Type`` bit
of a page-walk reference in the allocated L2C MSHR entry and writes it back
to the cache block when the fill returns (Figure 7, steps 3/3.1); iTP does
the same for STLB misses (step 2).  Exceeding the MSHR count charges a
structural-hazard penalty, which is how MSHR pressure shows up in the
simplified timing model.

Structural-hazard semantics: when the file is full, the oldest outstanding
miss is *retired* — the model pretends its fill completed early (fills are
synchronous anyway) and charges the penalty.  A retired entry is not
dropped: it moves to a retirement buffer so the in-flight ``release`` of
that block still returns the entry and its Type bits still reach the cache
block (Figure 7 step 3.1 must survive MSHR pressure).  The buffer is
bounded by the nesting depth of the synchronous hierarchy and is drained by
``release``; the quiescence invariant counts it as outstanding state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..common.invariants import InvariantViolation, enabled as _checks_enabled
from ..common.types import AccessType, RequestType


@dataclass(slots=True)
class MSHREntry:
    """One outstanding miss: block address plus the propagated Type bit."""

    block_address: int
    req_type: RequestType
    is_pte: bool = False
    translation_type: Optional[AccessType] = None


def _merge_type_bits(
    entry: MSHREntry, is_pte: bool, translation_type: Optional[AccessType]
) -> None:
    """Fold incoming Type information into ``entry``, only strengthening it.

    Once any requester marks the block as a PTE line the bit sticks, and a
    data-translation mark dominates an instruction one (the paper's xPTP
    protects *data* PTEs, so losing the DATA mark would disable protection).
    """
    if not is_pte:
        return
    entry.is_pte = True
    if entry.translation_type is None:
        entry.translation_type = translation_type
    elif translation_type is AccessType.DATA:
        entry.translation_type = AccessType.DATA


class MSHRFile:
    """Fixed-capacity MSHR file with structural-hazard accounting."""

    def __init__(self, num_entries: int, full_penalty: int = 2) -> None:
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self.full_penalty = full_penalty
        self._entries: Dict[int, MSHREntry] = {}
        #: Structurally retired entries awaiting their in-flight release.
        self._retired: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.full_events = 0
        self.retirements = 0

    def __len__(self) -> int:
        """Live (capacity-occupying) entries; retired entries excluded."""
        return len(self._entries)

    def outstanding(self) -> int:
        """Live plus retired entries — everything still awaiting a release."""
        return len(self._entries) + len(self._retired)

    def reset_stats(self) -> None:
        """Clear event counters at the warmup/measurement boundary.

        Outstanding entries — live *and* retired — are state, not
        statistics, so they survive the reset (their Type bits must still
        reach in-flight fills).
        """
        self.allocations = 0
        self.merges = 0
        self.full_events = 0
        self.retirements = 0

    def lookup(self, block_address: int) -> Optional[MSHREntry]:
        return self._entries.get(block_address)

    def allocate(
        self,
        block_address: int,
        req_type: RequestType,
        is_pte: bool = False,
        translation_type: Optional[AccessType] = None,
    ) -> MSHREntry:
        """Allocate (or merge into) an entry for ``block_address``.

        A merge keeps the strongest Type information: once any requester
        marks the block as a data-PTE line, the bit sticks so the fill tags
        the cache block correctly.  Re-allocating a block whose entry was
        structurally retired re-merges the retired Type bits into the fresh
        entry (two misses to one block are one outstanding miss).
        """
        entry = self._entries.get(block_address)
        if entry is not None:
            self.merges += 1
            _merge_type_bits(entry, is_pte, translation_type)
            return entry
        if len(self._entries) >= self.num_entries:
            # Structural hazard: the model retires the oldest entry
            # immediately (fills are synchronous) and charges a penalty.
            self.full_events += 1
            self._retire(next(iter(self._entries)))
        # One entry per outstanding miss: allocation happens off the hit path.
        entry = MSHREntry(block_address, req_type, is_pte, translation_type)  # repro: allow[RPR001]
        if self._retired:
            retired = self._retired.pop(block_address, None)
            if retired is not None:
                _merge_type_bits(entry, retired.is_pte, retired.translation_type)
        self._entries[block_address] = entry
        self.allocations += 1
        return entry

    def _retire(self, block_address: int) -> None:
        """Structurally retire ``block_address`` (overridden by the checker)."""
        self.retirements += 1
        self._retired[block_address] = self._entries.pop(block_address)

    def release(self, block_address: int) -> Optional[MSHREntry]:
        """Complete the fill: remove and return the entry (with its Type bit).

        A structurally retired entry is still returned here — retirement
        parks the Type bits in the retirement buffer, it does not drop them.
        """
        entry = self._entries.pop(block_address, None)
        if entry is None and self._retired:
            entry = self._retired.pop(block_address, None)
        return entry

    def structural_penalty(self) -> int:
        """Extra cycles to charge if the file is (nearly) full."""
        return self.full_penalty if len(self._entries) >= self.num_entries else 0


class CheckedMSHRFile(MSHRFile):
    """MSHR file with a shadow copy of each entry's PTE ``Type`` bits.

    The ``REPRO_CHECK=1`` variant built by :func:`make_mshr_file`.  Verifies
    the Figure 7 propagation property: once any requester marks an
    outstanding miss as a (data-)PTE line, the information must stick until
    the fill releases the entry — merges may only strengthen it, and nothing
    between allocation and release (including structural retirement) may
    rewrite the bits.

    The shadow spans every outstanding entry, live *or* retired: a
    structurally retired miss is still awaiting its release, so its key
    stays shadowed until ``release`` pops it.  Each operation updates the
    shadow O(1) at the key it touches; :meth:`verify_shadow_sync` asserts
    the shadow key set equals the outstanding key set.
    """

    def __init__(self, num_entries: int, full_penalty: int = 2) -> None:
        super().__init__(num_entries, full_penalty)
        #: block_address -> (is_pte, translation_type) expected on release.
        self._shadow: Dict[int, Tuple[bool, Optional[AccessType]]] = {}

    @staticmethod
    def _strengthened(
        old: Tuple[bool, Optional[AccessType]],
        is_pte: bool,
        translation_type: Optional[AccessType],
    ) -> Tuple[bool, Optional[AccessType]]:
        old_pte, old_type = old
        if not is_pte:
            return old_pte, old_type
        new_type = old_type
        if old_type is None:
            new_type = translation_type
        elif translation_type is AccessType.DATA:
            new_type = AccessType.DATA
        return True, new_type

    def allocate(
        self,
        block_address: int,
        req_type: RequestType,
        is_pte: bool = False,
        translation_type: Optional[AccessType] = None,
    ) -> MSHREntry:
        expected: Optional[Tuple[bool, Optional[AccessType]]] = None
        if block_address in self._entries:
            self._check_bits(block_address, self._entries[block_address], "before merge into")
            expected = self._strengthened(
                self._shadow[block_address], is_pte, translation_type
            )
        elif block_address in self._retired:
            # Re-allocation folds the retired bits back in: the fresh entry
            # must carry at least what the retired one did.
            self._check_bits(block_address, self._retired[block_address], "at re-allocation of")
            expected = self._strengthened(
                (is_pte, translation_type),
                self._retired[block_address].is_pte,
                self._retired[block_address].translation_type,
            )
        entry = super().allocate(block_address, req_type, is_pte, translation_type)
        if expected is not None:
            actual = (entry.is_pte, entry.translation_type)
            if actual != expected:
                raise InvariantViolation(
                    f"MSHR merge weakened Type bits for block {block_address:#x}: "
                    f"expected {expected}, got {actual}"
                )
        self._shadow[block_address] = (entry.is_pte, entry.translation_type)
        return entry

    def _retire(self, block_address: int) -> None:
        # The entry moves live -> retired but stays outstanding, so its
        # shadow record stays put; verify nothing rewrote the bits first.
        self._check_bits(block_address, self._entries[block_address], "at retirement of")
        super()._retire(block_address)

    def release(self, block_address: int) -> Optional[MSHREntry]:
        pending = self._entries.get(block_address)
        if pending is None:
            pending = self._retired.get(block_address)
        if pending is not None:
            self._check_bits(block_address, pending, "at release of")
        self._shadow.pop(block_address, None)
        return super().release(block_address)

    def verify_shadow_sync(self) -> None:
        """Assert the shadow covers exactly the outstanding (live ∪ retired) keys."""
        outstanding = self._entries.keys() | self._retired.keys()
        if self._shadow.keys() != outstanding:
            raise InvariantViolation(
                "MSHR shadow desynchronized: shadow keys "
                f"{sorted(self._shadow)} != outstanding keys {sorted(outstanding)}"
            )

    def _check_bits(self, block_address: int, entry: MSHREntry, when: str) -> None:
        expected = self._shadow.get(block_address)
        actual = (entry.is_pte, entry.translation_type)
        if expected is not None and actual != expected:
            raise InvariantViolation(
                f"MSHR entry Type bits corrupted {when} block {block_address:#x}: "
                f"expected {expected}, got {actual}"
            )


def make_mshr_file(num_entries: int, full_penalty: int = 2) -> MSHRFile:
    """Build an MSHR file, shadow-checked when ``REPRO_CHECK=1`` is set."""
    if _checks_enabled():
        return CheckedMSHRFile(num_entries, full_penalty)
    return MSHRFile(num_entries, full_penalty)
