"""Miss Status Holding Registers.

The model is synchronous (a miss is resolved within the same ``access``
call), so MSHRs do not buffer time.  They are still modelled explicitly
because the paper's mechanism depends on them: xPTP stores the ``Type`` bit
of a page-walk reference in the allocated L2C MSHR entry and writes it back
to the cache block when the fill returns (Figure 7, steps 3/3.1); iTP does
the same for STLB misses (step 2).  Exceeding the MSHR count charges a
structural-hazard penalty, which is how MSHR pressure shows up in the
simplified timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..common.types import AccessType, RequestType


@dataclass(slots=True)
class MSHREntry:
    """One outstanding miss: block address plus the propagated Type bit."""

    block_address: int
    req_type: RequestType
    is_pte: bool = False
    translation_type: Optional[AccessType] = None


class MSHRFile:
    """Fixed-capacity MSHR file with structural-hazard accounting."""

    def __init__(self, num_entries: int, full_penalty: int = 2) -> None:
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self.full_penalty = full_penalty
        self._entries: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.full_events = 0

    def __len__(self) -> int:
        return len(self._entries)

    def reset_stats(self) -> None:
        """Clear event counters at the warmup/measurement boundary.

        Outstanding entries are state, not statistics, so they survive the
        reset (their Type bits must still reach in-flight fills).
        """
        self.allocations = 0
        self.merges = 0
        self.full_events = 0

    def lookup(self, block_address: int) -> Optional[MSHREntry]:
        return self._entries.get(block_address)

    def allocate(
        self,
        block_address: int,
        req_type: RequestType,
        is_pte: bool = False,
        translation_type: Optional[AccessType] = None,
    ) -> MSHREntry:
        """Allocate (or merge into) an entry for ``block_address``.

        A merge keeps the strongest Type information: once any requester
        marks the block as a data-PTE line, the bit sticks so the fill tags
        the cache block correctly.
        """
        entry = self._entries.get(block_address)
        if entry is not None:
            self.merges += 1
            if is_pte:
                entry.is_pte = True
                if entry.translation_type is None:
                    entry.translation_type = translation_type
                elif translation_type == AccessType.DATA:
                    entry.translation_type = AccessType.DATA
            return entry
        if len(self._entries) >= self.num_entries:
            # Structural hazard: the model retires the oldest entry
            # immediately (fills are synchronous) and charges a penalty.
            self.full_events += 1
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        entry = MSHREntry(block_address, req_type, is_pte, translation_type)
        self._entries[block_address] = entry
        self.allocations += 1
        return entry

    def release(self, block_address: int) -> Optional[MSHREntry]:
        """Complete the fill: remove and return the entry (with its Type bit)."""
        return self._entries.pop(block_address, None)

    def structural_penalty(self) -> int:
        """Extra cycles to charge if the file is (nearly) full."""
        return self.full_penalty if len(self._entries) >= self.num_entries else 0
