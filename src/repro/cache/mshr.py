"""Miss Status Holding Registers.

The model is synchronous (a miss is resolved within the same ``access``
call), so MSHRs do not buffer time.  They are still modelled explicitly
because the paper's mechanism depends on them: xPTP stores the ``Type`` bit
of a page-walk reference in the allocated L2C MSHR entry and writes it back
to the cache block when the fill returns (Figure 7, steps 3/3.1); iTP does
the same for STLB misses (step 2).  Exceeding the MSHR count charges a
structural-hazard penalty, which is how MSHR pressure shows up in the
simplified timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..common.invariants import InvariantViolation, enabled as _checks_enabled
from ..common.types import AccessType, RequestType


@dataclass(slots=True)
class MSHREntry:
    """One outstanding miss: block address plus the propagated Type bit."""

    block_address: int
    req_type: RequestType
    is_pte: bool = False
    translation_type: Optional[AccessType] = None


class MSHRFile:
    """Fixed-capacity MSHR file with structural-hazard accounting."""

    def __init__(self, num_entries: int, full_penalty: int = 2) -> None:
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self.full_penalty = full_penalty
        self._entries: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.full_events = 0

    def __len__(self) -> int:
        return len(self._entries)

    def reset_stats(self) -> None:
        """Clear event counters at the warmup/measurement boundary.

        Outstanding entries are state, not statistics, so they survive the
        reset (their Type bits must still reach in-flight fills).
        """
        self.allocations = 0
        self.merges = 0
        self.full_events = 0

    def lookup(self, block_address: int) -> Optional[MSHREntry]:
        return self._entries.get(block_address)

    def allocate(
        self,
        block_address: int,
        req_type: RequestType,
        is_pte: bool = False,
        translation_type: Optional[AccessType] = None,
    ) -> MSHREntry:
        """Allocate (or merge into) an entry for ``block_address``.

        A merge keeps the strongest Type information: once any requester
        marks the block as a data-PTE line, the bit sticks so the fill tags
        the cache block correctly.
        """
        entry = self._entries.get(block_address)
        if entry is not None:
            self.merges += 1
            if is_pte:
                entry.is_pte = True
                if entry.translation_type is None:
                    entry.translation_type = translation_type
                elif translation_type is AccessType.DATA:
                    entry.translation_type = AccessType.DATA
            return entry
        if len(self._entries) >= self.num_entries:
            # Structural hazard: the model retires the oldest entry
            # immediately (fills are synchronous) and charges a penalty.
            self.full_events += 1
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        # One entry per outstanding miss: allocation happens off the hit path.
        entry = MSHREntry(block_address, req_type, is_pte, translation_type)  # repro: allow[RPR001]
        self._entries[block_address] = entry
        self.allocations += 1
        return entry

    def release(self, block_address: int) -> Optional[MSHREntry]:
        """Complete the fill: remove and return the entry (with its Type bit)."""
        return self._entries.pop(block_address, None)

    def structural_penalty(self) -> int:
        """Extra cycles to charge if the file is (nearly) full."""
        return self.full_penalty if len(self._entries) >= self.num_entries else 0


class CheckedMSHRFile(MSHRFile):
    """MSHR file with a shadow copy of each entry's PTE ``Type`` bits.

    The ``REPRO_CHECK=1`` variant built by :func:`make_mshr_file`.  Verifies
    the Figure 7 propagation property: once any requester marks an
    outstanding miss as a (data-)PTE line, the information must stick until
    the fill releases the entry — merges may only strengthen it, and nothing
    between allocation and release may rewrite the bits.
    """

    def __init__(self, num_entries: int, full_penalty: int = 2) -> None:
        super().__init__(num_entries, full_penalty)
        #: block_address -> (is_pte, translation_type) expected on release.
        self._shadow: Dict[int, Tuple[bool, Optional[AccessType]]] = {}

    def _expected_after_merge(
        self, block_address: int, is_pte: bool, translation_type: Optional[AccessType]
    ) -> Tuple[bool, Optional[AccessType]]:
        old_pte, old_type = self._shadow[block_address]
        if not is_pte:
            return old_pte, old_type
        new_type = old_type
        if old_type is None:
            new_type = translation_type
        elif translation_type is AccessType.DATA:
            new_type = AccessType.DATA
        return True, new_type

    def allocate(
        self,
        block_address: int,
        req_type: RequestType,
        is_pte: bool = False,
        translation_type: Optional[AccessType] = None,
    ) -> MSHREntry:
        merging = block_address in self._entries
        expected: Optional[Tuple[bool, Optional[AccessType]]] = None
        if merging:
            self._check_entry(block_address, "before merge into")
            expected = self._expected_after_merge(block_address, is_pte, translation_type)
        entry = super().allocate(block_address, req_type, is_pte, translation_type)
        if expected is not None:
            actual = (entry.is_pte, entry.translation_type)
            if actual != expected:
                raise InvariantViolation(
                    f"MSHR merge weakened Type bits for block {block_address:#x}: "
                    f"expected {expected}, got {actual}"
                )
        # Re-sync the shadow: a structural-hazard allocation may have retired
        # the oldest entry, and a fresh allocation adds a new one.
        self._shadow[block_address] = (entry.is_pte, entry.translation_type)
        for stale in [b for b in self._shadow if b not in self._entries]:
            del self._shadow[stale]
        return entry

    def release(self, block_address: int) -> Optional[MSHREntry]:
        if block_address in self._entries:
            self._check_entry(block_address, "at release of")
        self._shadow.pop(block_address, None)
        return super().release(block_address)

    def _check_entry(self, block_address: int, when: str) -> None:
        entry = self._entries[block_address]
        expected = self._shadow.get(block_address)
        actual = (entry.is_pte, entry.translation_type)
        if expected is not None and actual != expected:
            raise InvariantViolation(
                f"MSHR entry Type bits corrupted {when} block {block_address:#x}: "
                f"expected {expected}, got {actual}"
            )


def make_mshr_file(num_entries: int, full_penalty: int = 2) -> MSHRFile:
    """Build an MSHR file, shadow-checked when ``REPRO_CHECK=1`` is set."""
    if _checks_enabled():
        return CheckedMSHRFile(num_entries, full_penalty)
    return MSHRFile(num_entries, full_penalty)
