"""Set-associative cache level with MSHRs, writebacks and prefetch support.

The hierarchy is non-inclusive and synchronous: a miss recursively accesses
the next level within the same call and the returned latency is the demand
latency of this access.  The xPTP ``Type`` dataflow of Figure 7 is modelled
exactly: a missing page-walk reference allocates an MSHR entry carrying
``is_pte``/``translation_type``, and when the fill completes the bits are
written back into the installed :class:`CacheLine`.

Hot-path notes: geometry is reduced to two shifts and a mask at
construction (``line_bytes`` and the set count must be powers of two), the
four-category stats counters are incremented inline instead of through
:meth:`LevelStats.record_access`, and the writeback/prefetch requests a
level originates are single reusable :class:`MemoryRequest` objects — safe
because the hierarchy is synchronous and strictly layered, so a level's own
request can never be in flight twice.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from ..common.params import CacheConfig
from ..common.stats import LevelStats
from ..common.types import AccessType, MemoryRequest, RequestType
from ..replacement.base import CacheReplacementPolicy
from ..replacement.drrip import DRRIPPolicy
from .line import CacheLine
from .mshr import make_mshr_file

_IFETCH = RequestType.IFETCH
_STORE = RequestType.STORE
_PREFETCH = RequestType.PREFETCH
_WRITEBACK = RequestType.WRITEBACK
_DATA = AccessType.DATA


class MemoryLevel(Protocol):
    """Anything a cache can forward misses to (another cache or DRAM)."""

    def access(self, req: MemoryRequest) -> int: ...


class SetAssociativeCache:
    """One cache level (L1I, L1D, L2C or LLC)."""

    def __init__(
        self,
        config: CacheConfig,
        policy: CacheReplacementPolicy,
        next_level: MemoryLevel,
        stats: LevelStats,
        prefetcher: Optional["Prefetcher"] = None,
    ) -> None:
        if policy.num_sets != config.num_sets or policy.associativity != config.associativity:
            raise ValueError(
                f"{config.name}: policy geometry {policy.num_sets}x{policy.associativity} "
                f"does not match cache {config.num_sets}x{config.associativity}"
            )
        if config.line_bytes <= 0 or config.line_bytes & (config.line_bytes - 1):
            raise ValueError(
                f"{config.name}: line size {config.line_bytes} is not a power of two"
            )
        self.config = config
        self.policy = policy
        self._next_level = next_level
        self._next_access = next_level.access
        self.stats = stats
        self.prefetcher = prefetcher
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        #: Byte-address -> line-address shift, derived from the configured
        #: line size (prefetchers attached to this cache use it too).
        self.line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # num_sets is validated as a power of two by CacheConfig, so the
        # tag division is an arithmetic shift.
        self._set_shift = self.num_sets.bit_length() - 1
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(self.associativity)] for _ in range(self.num_sets)
        ]
        # Per-set tag->way map for O(1) lookup.  Invariant: a tag is present
        # iff the mapped way holds a valid line, so a full map means no
        # invalid way exists and the fill path can skip the scan.
        self._tag_maps: List[dict] = [dict() for _ in range(self.num_sets)]
        # Swapped for the shadow-checked variant under REPRO_CHECK=1.
        self.mshrs = make_mshr_file(config.mshr_entries)
        # DRRIP needs a per-miss callback; resolve the isinstance check once.
        self._drrip_record_miss = (
            policy.record_miss if isinstance(policy, DRRIPPolicy) else None
        )
        # Hot-path bindings: the wiring (policy, prefetcher) and the hit
        # latency never change after construction; next_level may be rewired
        # through a probe, which its property setter handles.
        self._latency = config.latency
        self._on_hit = policy.on_hit
        self._on_fill = policy.on_fill
        self._victim = policy.victim
        self._on_evict = policy.on_evict
        self._pf_on_access = prefetcher.on_access if prefetcher is not None else None
        # Reusable request objects for traffic this level originates (see
        # module docstring for the safety argument).
        self._wb_req = MemoryRequest(address=0, req_type=_WRITEBACK)
        self._pf_req = MemoryRequest(address=0, req_type=_PREFETCH)

    @property
    def next_level(self) -> MemoryLevel:
        return self._next_level

    @next_level.setter
    def next_level(self, level: MemoryLevel) -> None:
        """Rewire the downstream level (analysis probes insert themselves)."""
        self._next_level = level
        self._next_access = level.access

    def reset_stats(self) -> None:
        """Clear counters that sit outside :class:`LevelStats` (MSHRs, policy)."""
        self.mshrs.reset_stats()
        reset = getattr(self.policy, "reset_stats", None)
        if reset is not None:
            reset()

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #

    def probe(self, address: int) -> bool:
        """Non-intrusive presence check (no state update)."""
        line_address = address >> self.line_shift
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_shift
        return tag in self._tag_maps[set_index]

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #

    def access(self, req: MemoryRequest) -> int:
        """Demand access; returns the total latency observed by the requester."""
        req_type = req.req_type
        if req_type is _WRITEBACK:
            self._handle_writeback(req)
            return 0
        if req_type is _PREFETCH:
            return self._access_prefetch(req)
        line_address = req.address >> self.line_shift
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_shift
        way = self._tag_maps[set_index].get(tag)
        if req.is_pte:
            category = "dt" if req.translation_type is _DATA else "it"
        elif req_type is _IFETCH:
            category = "i"
        else:
            category = "d"
        stats = self.stats
        latency = self._latency

        if way is not None:
            lines = self.sets[set_index]
            line = lines[way]
            if req.is_pte:
                self._strengthen_type(line, req)
            if req_type is _STORE:
                line.dirty = True
            if line.prefetched:
                line.prefetched = False
                stats.prefetch_hits += 1
            self._on_hit(set_index, way, lines, req)
            stats.accesses += 1
            stats.hits += 1
            stats.cat_accesses[category] += 1
            pf = self._pf_on_access
            if pf is not None:
                pf(self, req, hit=True)
            return latency

        # Miss path -------------------------------------------------------
        mshrs = self.mshrs
        latency += mshrs.structural_penalty()
        mshrs.allocate(line_address, req_type, req.is_pte, req.translation_type)
        if self._drrip_record_miss is not None:
            self._drrip_record_miss(set_index)
        latency += self._next_access(req)
        entry = mshrs.release(line_address)
        self._fill(set_index, tag, req, entry)
        stats.accesses += 1
        stats.misses += 1
        stats.miss_latency_sum += latency
        stats.cat_accesses[category] += 1
        stats.cat_misses[category] += 1
        pf = self._pf_on_access
        if pf is not None:
            pf(self, req, hit=False)
        return latency

    def _access_prefetch(self, req: MemoryRequest) -> int:
        """Serve a prefetch issued by an upper level.

        Prefetch-through: the block is fetched for the requesting level but
        not allocated here, so upper-level prefetch streams (FDIP, L1D
        next-line) do not pollute the L2C/LLC.  A level allocates only the
        prefetches its *own* prefetcher issues (via :meth:`prefetch`).
        Prefetch traffic is tracked separately so demand MPKI figures match
        the paper's accounting.
        """
        line_address = req.address >> self.line_shift
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_shift
        self.stats.prefetch_requests += 1
        if tag in self._tag_maps[set_index]:
            return self._latency
        self._next_access(req)
        return self._latency

    # ------------------------------------------------------------------ #
    # Fill / evict
    # ------------------------------------------------------------------ #

    def _fill(self, set_index: int, tag: int, req: MemoryRequest, mshr_entry) -> None:
        lines = self.sets[set_index]
        tag_map = self._tag_maps[set_index]
        if len(tag_map) < self.associativity:
            way = self._find_invalid_way(lines)
        else:
            way = None
        if way is None:
            way = self._victim(set_index, lines, req)
            self._evict(set_index, way)
        line = lines[way]
        line.valid = True
        line.tag = tag
        line.dirty = req.req_type is _STORE
        line.prefetched = req.req_type is _PREFETCH
        # Figure 7 step 3.1: the Type bit travels through the MSHR and is
        # written back into the block on fill.
        if mshr_entry is not None and mshr_entry.is_pte:
            line.is_pte = True
            line.translation_type = mshr_entry.translation_type
        else:
            line.is_pte = req.is_pte
            line.translation_type = req.translation_type if req.is_pte else None
        tag_map[tag] = way
        self._on_fill(set_index, way, lines, req)

    def _find_invalid_way(self, lines: List[CacheLine]) -> Optional[int]:
        for way, line in enumerate(lines):
            if not line.valid:
                return way
        return None

    def _evict(self, set_index: int, way: int) -> None:
        lines = self.sets[set_index]
        line = lines[way]
        if not line.valid:
            return
        self.stats.evictions += 1
        self._on_evict(set_index, way, lines)
        del self._tag_maps[set_index][line.tag]
        if line.dirty:
            self.stats.writebacks += 1
            victim_line_address = (line.tag << self._set_shift) + set_index
            wb = self._wb_req
            wb.address = victim_line_address << self.line_shift
            wb.is_pte = line.is_pte
            wb.translation_type = line.translation_type
            self._next_access(wb)
        line.invalidate()

    def _handle_writeback(self, req: MemoryRequest) -> None:
        """Absorb a writeback from the level above (write-allocate)."""
        line_address = req.address >> self.line_shift
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_shift
        way = self._tag_maps[set_index].get(tag)
        if way is not None:
            line = self.sets[set_index][way]
            line.dirty = True
            self._strengthen_type(line, req)
            return
        self._fill(set_index, tag, req, None)
        # _fill marked dirty only for STORE; writebacks are dirty by definition.
        self.sets[set_index][self._tag_maps[set_index][tag]].dirty = True

    @staticmethod
    def _strengthen_type(line: CacheLine, req: MemoryRequest) -> None:
        """Once a block is known to hold (data) PTEs, the information sticks."""
        if req.is_pte:
            line.is_pte = True
            if line.translation_type is None:
                line.translation_type = req.translation_type
            elif req.translation_type is _DATA:
                line.translation_type = _DATA

    # ------------------------------------------------------------------ #
    # Prefetch path
    # ------------------------------------------------------------------ #

    def prefetch(self, line_address: int, pc: int = 0) -> None:
        """Bring ``line_address`` into this level off the demand path."""
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_shift
        if tag in self._tag_maps[set_index]:
            return
        req = self._pf_req
        req.address = line_address << self.line_shift
        req.pc = pc
        self._next_access(req)
        self._fill(set_index, tag, req, None)
        self.stats.prefetch_fills += 1

    # ------------------------------------------------------------------ #
    # Introspection (tests, experiments)
    # ------------------------------------------------------------------ #

    def contents(self, set_index: int) -> List[CacheLine]:
        return self.sets[set_index]

    def occupancy(self) -> int:
        return sum(len(m) for m in self._tag_maps)

    def data_pte_blocks(self) -> int:
        return sum(
            1 for s in self.sets for line in s if line.valid and line.is_data_pte
        )
