"""Set-associative cache level with MSHRs, writebacks and prefetch support.

The hierarchy is non-inclusive and synchronous: a miss recursively accesses
the next level within the same call and the returned latency is the demand
latency of this access.  The xPTP ``Type`` dataflow of Figure 7 is modelled
exactly: a missing page-walk reference allocates an MSHR entry carrying
``is_pte``/``translation_type``, and when the fill completes the bits are
written back into the installed :class:`CacheLine`.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from ..common.params import CacheConfig
from ..common.stats import LevelStats, categorize
from ..common.types import AccessType, MemoryRequest, RequestType
from ..replacement.base import CacheReplacementPolicy
from ..replacement.drrip import DRRIPPolicy
from .line import CacheLine
from .mshr import MSHRFile


class MemoryLevel(Protocol):
    """Anything a cache can forward misses to (another cache or DRAM)."""

    def access(self, req: MemoryRequest) -> int: ...


class SetAssociativeCache:
    """One cache level (L1I, L1D, L2C or LLC)."""

    def __init__(
        self,
        config: CacheConfig,
        policy: CacheReplacementPolicy,
        next_level: MemoryLevel,
        stats: LevelStats,
        prefetcher: Optional["Prefetcher"] = None,
    ) -> None:
        if policy.num_sets != config.num_sets or policy.associativity != config.associativity:
            raise ValueError(
                f"{config.name}: policy geometry {policy.num_sets}x{policy.associativity} "
                f"does not match cache {config.num_sets}x{config.associativity}"
            )
        self.config = config
        self.policy = policy
        self.next_level = next_level
        self.stats = stats
        self.prefetcher = prefetcher
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._set_mask = self.num_sets - 1
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(self.associativity)] for _ in range(self.num_sets)
        ]
        # Per-set tag->way map for O(1) lookup.
        self._tag_maps: List[dict] = [dict() for _ in range(self.num_sets)]
        self.mshrs = MSHRFile(config.mshr_entries)

    def reset_stats(self) -> None:
        """Clear counters that sit outside :class:`LevelStats` (MSHRs, policy)."""
        self.mshrs.reset_stats()
        reset = getattr(self.policy, "reset_stats", None)
        if reset is not None:
            reset()

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #

    def probe(self, address: int) -> bool:
        """Non-intrusive presence check (no state update)."""
        line_address = address >> 6
        set_index = line_address & self._set_mask
        tag = line_address // self.num_sets
        return tag in self._tag_maps[set_index]

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #

    def access(self, req: MemoryRequest) -> int:
        """Demand access; returns the total latency observed by the requester."""
        if req.req_type == RequestType.WRITEBACK:
            self._handle_writeback(req)
            return 0
        if req.req_type == RequestType.PREFETCH:
            return self._access_prefetch(req)
        line_address = req.address >> 6
        set_index = line_address & self._set_mask
        tag = line_address // self.num_sets
        way = self._tag_maps[set_index].get(tag)
        category = categorize(req)
        latency = self.config.latency

        if way is not None:
            line = self.sets[set_index][way]
            self._strengthen_type(line, req)
            if req.req_type == RequestType.STORE:
                line.dirty = True
            if line.prefetched:
                line.prefetched = False
                self.stats.prefetch_hits += 1
            self.policy.on_hit(set_index, way, self.sets[set_index], req)
            self.stats.record_access(category, hit=True)
            if self.prefetcher is not None:
                self.prefetcher.on_access(self, req, hit=True)
            return latency

        # Miss path -------------------------------------------------------
        latency += self.mshrs.structural_penalty()
        self.mshrs.allocate(line_address, req.req_type, req.is_pte, req.translation_type)
        if isinstance(self.policy, DRRIPPolicy):
            self.policy.record_miss(set_index)
        miss_latency = self.next_level.access(req)
        latency += miss_latency
        entry = self.mshrs.release(line_address)
        self._fill(set_index, tag, req, entry)
        self.stats.record_access(category, hit=False, miss_latency=latency)
        if self.prefetcher is not None:
            self.prefetcher.on_access(self, req, hit=False)
        return latency

    def _access_prefetch(self, req: MemoryRequest) -> int:
        """Serve a prefetch issued by an upper level.

        Prefetch-through: the block is fetched for the requesting level but
        not allocated here, so upper-level prefetch streams (FDIP, L1D
        next-line) do not pollute the L2C/LLC.  A level allocates only the
        prefetches its *own* prefetcher issues (via :meth:`prefetch`).
        Prefetch traffic is tracked separately so demand MPKI figures match
        the paper's accounting.
        """
        line_address = req.address >> 6
        set_index = line_address & self._set_mask
        tag = line_address // self.num_sets
        self.stats.prefetch_requests += 1
        if tag in self._tag_maps[set_index]:
            return self.config.latency
        self.next_level.access(req)
        return self.config.latency

    # ------------------------------------------------------------------ #
    # Fill / evict
    # ------------------------------------------------------------------ #

    def _fill(self, set_index: int, tag: int, req: MemoryRequest, mshr_entry) -> None:
        lines = self.sets[set_index]
        tag_map = self._tag_maps[set_index]
        way = self._find_invalid_way(lines)
        if way is None:
            way = self.policy.victim(set_index, lines, req)
            self._evict(set_index, way)
        line = lines[way]
        line.valid = True
        line.tag = tag
        line.dirty = req.req_type == RequestType.STORE
        line.prefetched = req.req_type == RequestType.PREFETCH
        # Figure 7 step 3.1: the Type bit travels through the MSHR and is
        # written back into the block on fill.
        if mshr_entry is not None and mshr_entry.is_pte:
            line.is_pte = True
            line.translation_type = mshr_entry.translation_type
        else:
            line.is_pte = req.is_pte
            line.translation_type = req.translation_type if req.is_pte else None
        tag_map[tag] = way
        self.policy.on_fill(set_index, way, lines, req)

    def _find_invalid_way(self, lines: List[CacheLine]) -> Optional[int]:
        for way, line in enumerate(lines):
            if not line.valid:
                return way
        return None

    def _evict(self, set_index: int, way: int) -> None:
        lines = self.sets[set_index]
        line = lines[way]
        if not line.valid:
            return
        self.stats.evictions += 1
        self.policy.on_evict(set_index, way, lines)
        del self._tag_maps[set_index][line.tag]
        if line.dirty:
            self.stats.writebacks += 1
            victim_line_address = line.tag * self.num_sets + set_index
            wb = MemoryRequest(
                address=victim_line_address << 6,
                req_type=RequestType.WRITEBACK,
                is_pte=line.is_pte,
                translation_type=line.translation_type,
            )
            self.next_level.access(wb)
        line.invalidate()

    def _handle_writeback(self, req: MemoryRequest) -> None:
        """Absorb a writeback from the level above (write-allocate)."""
        line_address = req.address >> 6
        set_index = line_address & self._set_mask
        tag = line_address // self.num_sets
        way = self._tag_maps[set_index].get(tag)
        if way is not None:
            line = self.sets[set_index][way]
            line.dirty = True
            self._strengthen_type(line, req)
            return
        self._fill(set_index, tag, req, None)
        # _fill marked dirty only for STORE; writebacks are dirty by definition.
        self.sets[set_index][self._tag_maps[set_index][tag]].dirty = True

    @staticmethod
    def _strengthen_type(line: CacheLine, req: MemoryRequest) -> None:
        """Once a block is known to hold (data) PTEs, the information sticks."""
        if req.is_pte:
            line.is_pte = True
            if line.translation_type is None:
                line.translation_type = req.translation_type
            elif req.translation_type == AccessType.DATA:
                line.translation_type = AccessType.DATA

    # ------------------------------------------------------------------ #
    # Prefetch path
    # ------------------------------------------------------------------ #

    def prefetch(self, line_address: int, pc: int = 0) -> None:
        """Bring ``line_address`` into this level off the demand path."""
        set_index = line_address & self._set_mask
        tag = line_address // self.num_sets
        if tag in self._tag_maps[set_index]:
            return
        req = MemoryRequest(address=line_address << 6, req_type=RequestType.PREFETCH, pc=pc)
        self.next_level.access(req)
        self._fill(set_index, tag, req, None)
        self.stats.prefetch_fills += 1

    # ------------------------------------------------------------------ #
    # Introspection (tests, experiments)
    # ------------------------------------------------------------------ #

    def contents(self, set_index: int) -> List[CacheLine]:
        return self.sets[set_index]

    def occupancy(self) -> int:
        return sum(len(m) for m in self._tag_maps)

    def data_pte_blocks(self) -> int:
        return sum(
            1 for s in self.sets for line in s if line.valid and line.is_data_pte
        )
