"""Cache line (block) metadata.

Besides the usual valid/tag/dirty state, every line carries the xPTP ``Type``
information: whether the block holds page-table entries and, if so, whether
they serve instruction or data translations (Figure 7 of the paper writes
this bit back from the L2C MSHR when the fill completes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.types import AccessType


@dataclass(slots=True)
class CacheLine:
    valid: bool = False
    tag: int = 0
    dirty: bool = False
    is_pte: bool = False
    translation_type: Optional[AccessType] = None
    prefetched: bool = False
    # Replacement-policy scratch state (RRPV, SHiP signature/outcome,
    # Mockingjay ETA...).  Owned by the policy attached to the cache.
    rrpv: int = 0
    signature: int = 0
    outcome: bool = False
    eta: int = 0

    @property
    def is_data_pte(self) -> bool:
        return self.is_pte and self.translation_type is AccessType.DATA

    @property
    def is_instr_pte(self) -> bool:
        return self.is_pte and self.translation_type is AccessType.INSTRUCTION

    def invalidate(self) -> None:
        self.valid = False
        self.dirty = False
        self.is_pte = False
        self.translation_type = None
        self.prefetched = False
