"""Cache prefetchers (Table 1: FDIP for L1I, next-line for L1D, stride for L2C)."""

from typing import Optional

from .base import Prefetcher
from .fdip import FDIPPrefetcher
from .next_line import NextLinePrefetcher
from .stride import StridePrefetcher

_FACTORIES = {
    "next_line": NextLinePrefetcher,
    "stride": StridePrefetcher,
    "fdip": FDIPPrefetcher,
}


def make_prefetcher(name: Optional[str]) -> Optional[Prefetcher]:
    """Instantiate a prefetcher by name; ``None`` means no prefetcher."""
    if name is None:
        return None
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown prefetcher {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        ) from None


__all__ = [
    "FDIPPrefetcher",
    "NextLinePrefetcher",
    "Prefetcher",
    "StridePrefetcher",
    "make_prefetcher",
]
