"""FDIP-style instruction prefetcher (Table 1: L1I, "FDiP").

Fetch-Directed Instruction Prefetching runs the branch-predictor-driven
fetch target queue ahead of the fetch unit and prefetches the lines the FTQ
will need.  Without modelling a full decoupled front end, the dominant
effect is that *sequential* fetch misses are covered ahead of time; we model
it as a multi-line sequential prefetcher with a small run filter so taken
branches (non-sequential records) restart the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...common.types import MemoryRequest, RequestType
from .base import Prefetcher

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import SetAssociativeCache

_IFETCH = RequestType.IFETCH


class FDIPPrefetcher(Prefetcher):
    name = "fdip"

    def __init__(self, depth: int = 4) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._last_line = -1

    def on_access(self, cache: "SetAssociativeCache", req: MemoryRequest, hit: bool) -> None:
        if req.req_type is not _IFETCH:
            return
        line = req.address >> cache.line_shift
        # Probe the tag maps inline; cache.prefetch would early-return on a
        # present line anyway and most of the FTQ window is already resident.
        tag_maps = cache._tag_maps
        set_mask = cache._set_mask
        set_shift = cache._set_shift
        pc = req.pc
        if line == self._last_line + 1:
            # Sequential fetch: run the FTQ ahead by ``depth`` lines.
            for step in range(1, self.depth + 1):
                target = line + step
                if (target >> set_shift) not in tag_maps[target & set_mask]:
                    cache.prefetch(target, pc=pc)
        else:
            # Redirect (taken branch): prefetch the immediate fall-through.
            target = line + 1
            if (target >> set_shift) not in tag_maps[target & set_mask]:
                cache.prefetch(target, pc=pc)
        self._last_line = line
