"""FDIP-style instruction prefetcher (Table 1: L1I, "FDiP").

Fetch-Directed Instruction Prefetching runs the branch-predictor-driven
fetch target queue ahead of the fetch unit and prefetches the lines the FTQ
will need.  Without modelling a full decoupled front end, the dominant
effect is that *sequential* fetch misses are covered ahead of time; we model
it as a multi-line sequential prefetcher with a small run filter so taken
branches (non-sequential records) restart the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...common.types import MemoryRequest, RequestType
from .base import Prefetcher

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import SetAssociativeCache


class FDIPPrefetcher(Prefetcher):
    name = "fdip"

    def __init__(self, depth: int = 4) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._last_line = -1

    def on_access(self, cache: "SetAssociativeCache", req: MemoryRequest, hit: bool) -> None:
        if req.req_type != RequestType.IFETCH:
            return
        line = req.address >> 6
        if line == self._last_line + 1:
            # Sequential fetch: run the FTQ ahead by ``depth`` lines.
            for step in range(1, self.depth + 1):
                cache.prefetch(line + step, pc=req.pc)
        else:
            # Redirect (taken branch): prefetch the immediate fall-through.
            cache.prefetch(line + 1, pc=req.pc)
        self._last_line = line
