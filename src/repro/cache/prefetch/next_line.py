"""Next-line prefetcher (Table 1: L1D)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...common.types import MemoryRequest, RequestType
from .base import Prefetcher

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import SetAssociativeCache

_PREFETCH = RequestType.PREFETCH


class NextLinePrefetcher(Prefetcher):
    """On every demand access, prefetch the next ``degree`` sequential lines."""

    name = "next_line"

    def __init__(self, degree: int = 1) -> None:
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree

    def on_access(self, cache: "SetAssociativeCache", req: MemoryRequest, hit: bool) -> None:
        if req.req_type is _PREFETCH:
            return
        line = req.address >> cache.line_shift
        tag_maps = cache._tag_maps
        set_mask = cache._set_mask
        set_shift = cache._set_shift
        for step in range(1, self.degree + 1):
            target = line + step
            if (target >> set_shift) not in tag_maps[target & set_mask]:
                cache.prefetch(target, pc=req.pc)
