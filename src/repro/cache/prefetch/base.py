"""Prefetcher interface.

Prefetchers observe demand accesses to the cache they are attached to and
issue off-demand fills via :meth:`SetAssociativeCache.prefetch`.  They never
add latency to the triggering access.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ...common.types import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import SetAssociativeCache


class Prefetcher(abc.ABC):
    """Base class for cache prefetchers."""

    name: str = "base"

    @abc.abstractmethod
    def on_access(self, cache: "SetAssociativeCache", req: MemoryRequest, hit: bool) -> None:
        """Observe a demand access and optionally issue prefetches."""
