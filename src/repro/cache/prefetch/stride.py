"""PC-indexed stride prefetcher (Table 1: L2C)."""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING, Tuple

from ...common.types import MemoryRequest, RequestType
from .base import Prefetcher

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import SetAssociativeCache

TABLE_ENTRIES = 1024

_PREFETCH = RequestType.PREFETCH
_PTW = RequestType.PTW


class StridePrefetcher(Prefetcher):
    """Classic per-PC stride detector with 2-step confirmation.

    Tracks the last line address and last stride per PC; after observing the
    same stride twice it prefetches ``degree`` strided lines ahead.
    """

    name = "stride"

    def __init__(self, degree: int = 2) -> None:
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree
        # pc_hash -> (last_line, last_stride, confidence)
        self.table: Dict[int, Tuple[int, int, int]] = {}

    def on_access(self, cache: "SetAssociativeCache", req: MemoryRequest, hit: bool) -> None:
        req_type = req.req_type
        if req_type is _PREFETCH or req_type is _PTW:
            return
        key = (req.pc ^ (req.pc >> 10)) % TABLE_ENTRIES
        line = req.address >> cache.line_shift
        last = self.table.get(key)
        if last is None:
            self.table[key] = (line, 0, 0)
            return
        last_line, last_stride, confidence = last
        stride = line - last_line
        if stride == 0:
            return
        if stride == last_stride:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
        self.table[key] = (line, stride, confidence)
        if confidence >= 1:
            tag_maps = cache._tag_maps
            set_mask = cache._set_mask
            set_shift = cache._set_shift
            for step in range(1, self.degree + 1):
                target = line + stride * step
                if (target >> set_shift) not in tag_maps[target & set_mask]:
                    cache.prefetch(target, pc=req.pc)
