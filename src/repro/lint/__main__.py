"""CLI: ``python -m repro.lint [paths...] [--format=text|github]``.

Exit status 0 when the tree is clean, 1 when any rule fired.  With no
paths, lints the installed ``repro`` package itself.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .diagnostics import render
from .rules import all_rules
from .runner import lint_paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulator-aware static analysis for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="output style: plain text or GitHub Actions annotations",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    diagnostics = lint_paths(paths)
    for line in render(diagnostics, args.format):
        print(line)
    if diagnostics:
        print(
            f"repro.lint: {len(diagnostics)} finding(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
