"""Whole-program call graph over the linted file set.

The interprocedural rules (RPR007-RPR009) need to know, for a given
function, which *definitions* a call site may land in.  The simulator's
hot path is wired through constructor-bound collaborators
(``self._translate = system.mmu.translate`` in ``__init__``, called later
as ``self._translate(...)``), so a purely syntactic resolver would lose
every edge that matters.  This module therefore builds:

* a **function index** over every ``def`` in the linted files, keyed by
  ``(relkey, qualname)``;
* per-class **constructor bindings**: ``self.X = <attribute chain>``
  assignments in ``__init__``, so ``self._translate`` canonicalises to
  ``system.mmu.translate``;
* per-function **local aliases**: ``stats = self._stats`` /
  ``tm = l1i_tm[s2]`` rebindings, expanded to canonical attribute chains
  (subscripts are looked through — sets/ways don't change *what* is
  written, only *where*);
* a **resolver** mapping a call site to candidate definitions:
  ``self.m(...)`` to the defining class when it has such a method,
  bare calls to same-module functions or class constructors, and
  everything else by bare-name match over the indexed definitions
  (a deliberate over-approximation: replacement policies, prefetchers
  and backends are duck-typed, so name-match is the honest static
  answer).

``Program.reach`` runs a BFS closure over those edges with hooks the
rules use: ``blocked`` qualnames that are never entered, a ``follow``
predicate restricting which callees are traversed (RPR007 walks only the
kernel's hand-inlined helpers), and ``prune`` for call-site
suppressions.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .context import FileContext

#: Canonical attribute chain, root first: ``("system", "mmu", "translate")``.
Chain = Tuple[str, ...]

#: Function identity: ``(relkey, qualname)``.
FunctionKey = Tuple[str, str]

_MAX_CHAIN = 16
_MAX_PATH = 8

#: Names never resolved to definitions: builtins and the mutating methods
#: of built-in containers.  Deliberately *excludes* ``insert``/``remove``/
#: ``discard``/``touch`` — those are simulator structure methods (TLB,
#: RecencyStack) and losing their edges would blind the effect analysis.
_NEVER_RESOLVE: FrozenSet[str] = frozenset(
    {
        # builtins
        "abs", "all", "any", "bool", "bytearray", "bytes", "callable", "chr",
        "classmethod", "dict", "divmod", "enumerate", "filter", "float",
        "format", "frozenset", "getattr", "globals", "hasattr", "hash", "id",
        "int", "isinstance", "issubclass", "iter", "len", "list", "locals",
        "map", "max", "memoryview", "min", "next", "object", "ord", "pow",
        "print", "property", "range", "repr", "reversed", "round", "set",
        "setattr", "slice", "sorted", "staticmethod", "str", "sum", "super",
        "tuple", "type", "vars", "zip",
        # container / string / IO methods
        "add", "append", "as_posix", "capitalize", "clear", "close", "copy",
        "count", "decode", "difference", "digest", "encode", "endswith",
        "exists", "extend", "find", "flush", "get", "glob", "hexdigest",
        "index", "intersection", "is_dir", "is_file", "isdigit", "items",
        "join", "keys", "lower", "lstrip", "mkdir", "open", "pop", "popitem",
        "read", "read_bytes", "read_text", "readline", "readlines", "replace",
        "rfind", "rglob", "rsplit", "rstrip", "seek", "setdefault", "sort",
        "split", "startswith", "stat", "strip", "tell", "title", "union",
        "unlink", "update", "upper", "values", "write", "write_bytes",
        "write_text", "writelines", "zfill",
    }
)


class CallSite:
    """One call expression inside a function, with its canonical chain."""

    __slots__ = ("line", "name", "chain")

    def __init__(self, line: int, name: str, chain: Optional[Chain]) -> None:
        self.line = line
        self.name = name  #: bare callee name (method or function name)
        self.chain = chain  #: canonical chain incl. final name, or ``None``

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CallSite({self.line}, {self.name!r}, {self.chain!r})"


class FunctionInfo:
    """One indexed function definition."""

    __slots__ = ("ctx", "relkey", "qualname", "cls", "bare", "node")

    def __init__(
        self,
        ctx: FileContext,
        qualname: str,
        cls: Optional[str],
        node: ast.AST,
    ) -> None:
        self.ctx = ctx
        self.relkey = ctx.relkey
        self.qualname = qualname
        self.cls = cls  #: innermost enclosing class name, if any
        self.bare = qualname.rsplit(".", 1)[-1]
        self.node = node

    @property
    def key(self) -> FunctionKey:
        return (self.relkey, self.qualname)

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionInfo({self.relkey}:{self.qualname})"


def _raw_chain(node: ast.expr) -> Optional[Chain]:
    """Attribute chain of an expression, root first, or ``None``.

    Looks through subscripts (``a.b[i].c`` keeps ``a.b.c``) and through
    ``X if cond else None`` conditional bindings (the optional-collaborator
    idiom in ``BatchedEngine.__init__``).
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.IfExp):
            body_none = isinstance(node.body, ast.Constant) and node.body.value is None
            orelse_none = (
                isinstance(node.orelse, ast.Constant) and node.orelse.value is None
            )
            if body_none and not orelse_none:
                node = node.orelse
            elif orelse_none and not body_none:
                node = node.body
            else:
                return None
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return None


def scope_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Every node in a function's own body, not entering nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _collect_aliases(nodes: Iterable[ast.AST]) -> Dict[str, Optional[Chain]]:
    """Local name -> attribute chain it consistently aliases (or ``None``)."""
    aliases: Dict[str, Optional[Chain]] = {}

    def bind(name: str, chain: Optional[Chain]) -> None:
        if chain is not None and chain[0] == name:
            chain = None  # self-referential rebinding (x = x.next)
        if name in aliases and aliases[name] != chain:
            aliases[name] = None
        else:
            aliases[name] = chain

    def opaque(target: ast.expr) -> None:
        # Only *bound* names go opaque: a store into ``dram.window`` or
        # ``tm[tag]`` does not rebind the local ``dram``/``tm``.
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                bind(sub.id, None)

    def bind_target(target: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            bind(target.id, _raw_chain(value) if value is not None else None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = (
                value.elts
                if isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                else None
            )
            for i, t_elt in enumerate(target.elts):
                bind_target(t_elt, elts[i] if elts is not None else None)
        # Attribute/Subscript targets rebind nothing.

    for node in nodes:
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1:
                bind_target(node.targets[0], node.value)
            else:
                for target in node.targets:
                    bind_target(target, None)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                bind(node.target.id, _raw_chain(node.value))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                bind(node.target.id, None)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            opaque(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            opaque(node.optional_vars)
        elif isinstance(node, ast.comprehension):
            opaque(node.target)

    # Fixpoint: splice aliases whose root is itself an alias.
    for _ in range(8):
        changed = False
        for name, chain in list(aliases.items()):
            if not chain:
                continue
            sub = aliases.get(chain[0])
            if sub and sub[0] != name:
                new = sub + chain[1:]
                if new != chain and len(new) <= _MAX_CHAIN:
                    aliases[name] = new
                    changed = True
        if not changed:
            break
    return aliases


def _function_locals(fn_node: ast.AST) -> Set[str]:
    """Parameter and locally-bound names of a function (its own scope)."""
    names: Set[str] = set()
    args = getattr(fn_node, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
    for node in scope_nodes(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


class Program:
    """Function index + call-graph resolver over one set of file contexts."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files: Tuple[FileContext, ...] = tuple(files)
        self.functions: Dict[FunctionKey, FunctionInfo] = {}
        self.by_bare: Dict[str, List[FunctionInfo]] = {}
        self.class_inits: Dict[str, List[FunctionInfo]] = {}
        self.init_bindings: Dict[Tuple[str, str], Dict[str, Chain]] = {}
        self.module_globals: Dict[str, Set[str]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}
        self._aliases: Dict[FunctionKey, Dict[str, Optional[Chain]]] = {}
        self._locals: Dict[FunctionKey, Set[str]] = {}
        self._calls: Dict[FunctionKey, Tuple[CallSite, ...]] = {}
        for ctx in files:
            if ctx.tree is not None:
                self._index_file(ctx)
        self._bind_constructors()

    # ------------------------------------------------------------------ build

    def _index_file(self, ctx: FileContext) -> None:
        tree = ctx.tree
        assert tree is not None
        globals_here: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        globals_here.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                globals_here.add(stmt.target.id)
        self.module_globals[ctx.relkey] = globals_here

        imports: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        imports[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self.imports[ctx.relkey] = imports

        def visit(node: ast.AST, stack: List[str], cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = ".".join(stack + [child.name])
                    info = FunctionInfo(ctx, qual, cls, child)
                    self.functions[info.key] = info
                    self.by_bare.setdefault(child.name, []).append(info)
                    if cls is not None and child.name == "__init__":
                        self.class_inits.setdefault(cls, []).append(info)
                    visit(child, stack + [child.name], None)
                elif isinstance(child, ast.ClassDef):
                    visit(child, stack + [child.name], child.name)

        visit(tree, [], None)

    def _bind_constructors(self) -> None:
        """Extract ``self.X = <chain>`` bindings from every ``__init__``."""
        for infos in self.class_inits.values():
            for info in infos:
                aliases = self.aliases(info)
                bindings: Dict[str, Chain] = {}
                for node in scope_nodes(info.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        chain = _raw_chain(node.value)
                        if chain is None:
                            continue
                        sub = aliases.get(chain[0])
                        if sub:
                            chain = sub + chain[1:]
                        if (
                            len(chain) <= _MAX_CHAIN
                            and target.attr not in bindings
                        ):
                            bindings[target.attr] = chain
                if bindings and info.cls is not None:
                    self.init_bindings[(info.relkey, info.cls)] = bindings

    # ---------------------------------------------------------------- queries

    def aliases(self, fn: FunctionInfo) -> Dict[str, Optional[Chain]]:
        cached = self._aliases.get(fn.key)
        if cached is None:
            cached = _collect_aliases(scope_nodes(fn.node))
            self._aliases[fn.key] = cached
        return cached

    def locals_of(self, fn: FunctionInfo) -> Set[str]:
        cached = self._locals.get(fn.key)
        if cached is None:
            cached = _function_locals(fn.node)
            self._locals[fn.key] = cached
        return cached

    def canonical(self, fn: FunctionInfo, chain: Chain) -> Chain:
        """Expand ``chain`` through local aliases and constructor bindings."""
        sub = self.aliases(fn).get(chain[0])
        if sub:
            chain = sub + chain[1:]
        if fn.cls is not None:
            bindings = self.init_bindings.get((fn.relkey, fn.cls))
            if bindings:
                for _ in range(8):
                    if len(chain) < 2 or chain[0] != "self":
                        break
                    bound = bindings.get(chain[1])
                    if bound is None:
                        break
                    new = bound + chain[2:]
                    if new == chain or len(new) > _MAX_CHAIN:
                        break
                    chain = new
        return chain

    def calls(self, fn: FunctionInfo) -> Tuple[CallSite, ...]:
        """Every call site in ``fn``, with canonicalised target chains."""
        cached = self._calls.get(fn.key)
        if cached is not None:
            return cached
        sites: List[CallSite] = []
        for node in scope_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                chain = self.canonical(fn, (func.id,))
                sites.append(CallSite(node.lineno, chain[-1], chain))
            elif isinstance(func, ast.Attribute):
                raw = _raw_chain(func)
                if raw is None:
                    sites.append(CallSite(node.lineno, func.attr, None))
                else:
                    chain = self.canonical(fn, raw)
                    sites.append(CallSite(node.lineno, chain[-1], chain))
        result = tuple(sites)
        self._calls[fn.key] = result
        return result

    def resolve(
        self,
        caller: FunctionInfo,
        site: CallSite,
        module_ok: Optional[Callable[[str], bool]] = None,
    ) -> Tuple[FunctionInfo, ...]:
        """Candidate definitions a call site may land in."""
        name = site.name
        if not name or name.startswith("__") or name in _NEVER_RESOLVE:
            return ()

        def admit(infos: Iterable[FunctionInfo]) -> Tuple[FunctionInfo, ...]:
            return tuple(
                f for f in infos if module_ok is None or module_ok(f.relkey)
            )

        chain = site.chain
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] == "self"
            and caller.cls is not None
        ):
            own = self.functions.get((caller.relkey, f"{caller.cls}.{name}"))
            if own is not None:
                return admit((own,))
        if chain is not None and len(chain) == 1:
            module_fn = self.functions.get((caller.relkey, name))
            if module_fn is not None:
                return admit((module_fn,))
        candidates: List[FunctionInfo] = list(self.by_bare.get(name, ()))
        candidates.extend(self.class_inits.get(name, ()))
        return admit(candidates)

    def reach(
        self,
        entries: Iterable[FunctionInfo],
        module_ok: Optional[Callable[[str], bool]] = None,
        blocked: FrozenSet[str] = frozenset(),
        follow: Optional[Callable[[FunctionInfo], bool]] = None,
        prune: Optional[Callable[[FunctionInfo, CallSite], bool]] = None,
    ) -> Dict[FunctionKey, Tuple[str, ...]]:
        """BFS closure: reachable function key -> qualname call path.

        ``blocked`` qualnames are never entered (the kernel's escape edges
        into the scalar spec); ``follow`` restricts which callees are
        traversed; ``prune`` drops individual call edges (suppressions).
        """
        paths: Dict[FunctionKey, Tuple[str, ...]] = {}
        queue: Deque[FunctionInfo] = deque()
        for fn in entries:
            paths[fn.key] = (fn.qualname,)
            queue.append(fn)
        while queue:
            fn = queue.popleft()
            base = paths[fn.key]
            for site in self.calls(fn):
                if prune is not None and prune(fn, site):
                    continue
                for cand in self.resolve(fn, site, module_ok):
                    if cand.key in paths:
                        continue
                    if cand.qualname in blocked:
                        continue
                    if follow is not None and not follow(cand):
                        continue
                    if len(base) < _MAX_PATH:
                        paths[cand.key] = base + (cand.qualname,)
                    else:
                        paths[cand.key] = base
                    queue.append(cand)
        return paths


_PROGRAM_CACHE: Dict[Tuple[int, ...], Tuple[Tuple[FileContext, ...], Program]] = {}


def program_for(files: Sequence[FileContext]) -> Program:
    """Build (or reuse) the :class:`Program` for one prepared file set.

    Rules run over the same context list within one lint invocation; the
    cache keys on object identity and keeps the contexts alive so ids
    cannot be reused.
    """
    key = tuple(id(ctx) for ctx in files)
    hit = _PROGRAM_CACHE.get(key)
    if hit is not None:
        return hit[1]
    program = Program(files)
    if len(_PROGRAM_CACHE) >= 8:
        _PROGRAM_CACHE.clear()
    _PROGRAM_CACHE[key] = (tuple(files), program)
    return program
