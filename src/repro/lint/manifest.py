"""Hot-path manifest: what the simulator promises about its fast paths.

PR 2's optimisation contract lives here as data so ``repro.lint`` can
enforce it structurally.  Keys are *relkeys* — paths relative to the
``repro`` package with ``/`` separators (``cache/cache.py``) — which makes
the manifest independent of where the tree is checked out.

Functions and classes can also opt in at the definition site:

* ``# repro: hot`` on (or immediately above) a ``def`` line marks the
  function hot for RPR001 without a manifest entry;
* ``# repro: allow[RPRnnn]`` on (or immediately above) a flagged line
  suppresses that rule there — every suppression should carry a rationale
  comment, and ``docs/static-analysis.md`` catalogues the sanctioned ones.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: Functions (qualified as ``Class.method`` or bare function name) that run
#: per memory reference / per miss.  RPR001 forbids allocation inside them.
HOT_FUNCTIONS: Dict[str, FrozenSet[str]] = {
    "core/cpu.py": frozenset(
        {"Core.execute", "Core._data_access", "Core._overlap"}
    ),
    "cache/cache.py": frozenset(
        {
            "SetAssociativeCache.access",
            "SetAssociativeCache._fill",
            "SetAssociativeCache._strengthen_type",
        }
    ),
    "cache/mshr.py": frozenset(
        {
            "MSHRFile.lookup",
            "MSHRFile.allocate",
            "MSHRFile.release",
            "MSHRFile.structural_penalty",
        }
    ),
    "tlb/tlb.py": frozenset({"TLB.lookup", "TLB.insert", "TLB.record_miss"}),
    "tlb/hierarchy.py": frozenset({"MMU.translate", "MMU._account_translation"}),
    "common/recency.py": frozenset(
        {
            "RecencyStack.touch",
            "RecencyStack.touch_many",
            "RecencyStack.remove",
            "RecencyStack.discard",
            "RecencyStack.place_at_depth",
            "RecencyStack.place_above_lru",
            "RecencyStack.ways_from_lru",
            "bulk_touch",
        }
    ),
    "kernel/batched.py": frozenset({"BatchedEngine._run_block"}),
    "common/stats.py": frozenset({"categorize"}),
    "ptw/walker.py": frozenset({"PageTableWalker.walk"}),
    "mem/dram.py": frozenset({"DRAM.access"}),
}

#: Mutable classes instantiated per set/way/reference; RPR002 requires each
#: to be slotted (``__slots__`` or ``@dataclass(slots=True)``).
HOT_CLASSES: FrozenSet[str] = frozenset(
    {
        "CacheLine",
        "TLBEntry",
        "MemoryRequest",
        "AccessResult",
        "LevelStats",
        "RecencyStack",
        "NaiveRecencyStack",
        "MSHREntry",
        "TranslationResult",
        "BatchedEngine",
    }
)

#: Enum classes whose members are singletons compared with ``is`` on hot
#: paths (they are IntEnums, so ``==`` would go through ``__eq__``).
ENUM_CLASSES: FrozenSet[str] = frozenset({"AccessType", "RequestType", "PageSize"})

#: Relkey prefixes of the modules the hot-path rules (RPR003/RPR004) scan.
#: Analysis, experiments, workloads and the linter itself are cold code.
HOT_MODULE_PREFIXES = (
    "common/",
    "cache/",
    "tlb/",
    "ptw/",
    "core/",
    "mem/",
    "replacement/",
    "kernel/",
)

#: Classes owning statistics counters outside LevelStats/SimStats; RPR004
#: requires each to clear its counters in a ``reset``/``reset_stats`` method.
STATS_BEARING: FrozenSet[str] = frozenset(
    {
        "MSHRFile",
        "DRAM",
        "PageStructureCache",
        "SplitPSC",
        "XPTPPolicy",
        "AdaptiveXPTPController",
        "MMU",
        "BatchedEngine",
    }
)

#: The one module allowed to construct/mutate Table 1 parameters (RPR005).
PARAMS_RELKEY = "common/params.py"

#: Hardware leaf-structure constructors that only the topology layer may
#: call directly (RPR006).  Everything else goes through a
#: :class:`TopologySpec` + ``build()`` (or the sanctioned helpers in
#: ``topology/structures.py``), so machine shape stays declarative.
TOPOLOGY_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"SetAssociativeCache", "TLB", "DRAM"}
)

#: Relkey prefixes exempt from RPR006 — the sanctioned construction layer.
TOPOLOGY_RELKEY_PREFIXES = ("topology/",)

#: Relkey of the stats schema module RPR004 validates counters against.
STATS_RELKEY = "common/stats.py"
