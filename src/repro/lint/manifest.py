"""Hot-path manifest: what the simulator promises about its fast paths.

PR 2's optimisation contract lives here as data so ``repro.lint`` can
enforce it structurally.  Keys are *relkeys* — paths relative to the
``repro`` package with ``/`` separators (``cache/cache.py``) — which makes
the manifest independent of where the tree is checked out.

Functions and classes can also opt in at the definition site:

* ``# repro: hot`` on (or immediately above) a ``def`` line marks the
  function hot for RPR001 without a manifest entry;
* ``# repro: allow[RPRnnn]`` on (or immediately above) a flagged line
  suppresses that rule there — every suppression should carry a rationale
  comment, and ``docs/static-analysis.md`` catalogues the sanctioned ones.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, NamedTuple, Tuple

#: Functions (qualified as ``Class.method`` or bare function name) that run
#: per memory reference / per miss.  RPR001 forbids allocation inside them.
HOT_FUNCTIONS: Dict[str, FrozenSet[str]] = {
    "core/cpu.py": frozenset(
        {"Core.execute", "Core._data_access", "Core._overlap"}
    ),
    "cache/cache.py": frozenset(
        {
            "SetAssociativeCache.access",
            "SetAssociativeCache._fill",
            "SetAssociativeCache._strengthen_type",
            "SetAssociativeCache._access_prefetch",
            "SetAssociativeCache._evict",
            "SetAssociativeCache._handle_writeback",
            "SetAssociativeCache.prefetch",
        }
    ),
    "cache/mshr.py": frozenset(
        {
            "MSHRFile.lookup",
            "MSHRFile.allocate",
            "MSHRFile.release",
            "MSHRFile.structural_penalty",
            "_merge_type_bits",
        }
    ),
    "tlb/tlb.py": frozenset(
        {"TLB.lookup", "TLB.insert", "TLB.record_miss", "TLB._evict"}
    ),
    "tlb/entry.py": frozenset({"TLBEntry.invalidate"}),
    "cache/line.py": frozenset({"CacheLine.invalidate"}),
    "tlb/hierarchy.py": frozenset({"MMU.translate", "MMU._account_translation"}),
    "core/adaptive.py": frozenset({"AdaptiveXPTPController.on_instructions"}),
    "common/recency.py": frozenset(
        {
            "RecencyStack.touch",
            "RecencyStack.touch_many",
            "RecencyStack.remove",
            "RecencyStack.discard",
            "RecencyStack.place_at_depth",
            "RecencyStack.place_above_lru",
            "RecencyStack.ways_from_lru",
            "bulk_touch",
        }
    ),
    "kernel/batched.py": frozenset({"BatchedEngine._run_block"}),
    "common/stats.py": frozenset({"categorize", "SimStats.bump"}),
    "ptw/walker.py": frozenset({"PageTableWalker.walk"}),
    "mem/dram.py": frozenset(
        {"DRAM.access", "DRAM._row_buffer_latency", "DRAM.note_instructions"}
    ),
}

#: Mutable classes instantiated per set/way/reference; RPR002 requires each
#: to be slotted (``__slots__`` or ``@dataclass(slots=True)``).
HOT_CLASSES: FrozenSet[str] = frozenset(
    {
        "CacheLine",
        "TLBEntry",
        "MemoryRequest",
        "AccessResult",
        "LevelStats",
        "RecencyStack",
        "NaiveRecencyStack",
        "MSHREntry",
        "TranslationResult",
        "BatchedEngine",
    }
)

#: Enum classes whose members are singletons compared with ``is`` on hot
#: paths (they are IntEnums, so ``==`` would go through ``__eq__``).
ENUM_CLASSES: FrozenSet[str] = frozenset({"AccessType", "RequestType", "PageSize"})

#: Relkey prefixes of the modules the hot-path rules (RPR003/RPR004) scan.
#: Analysis, experiments, workloads and the linter itself are cold code.
HOT_MODULE_PREFIXES = (
    "common/",
    "cache/",
    "tlb/",
    "ptw/",
    "core/",
    "mem/",
    "replacement/",
    "kernel/",
)

#: Classes owning statistics counters outside LevelStats/SimStats; RPR004
#: requires each to clear its counters in a ``reset``/``reset_stats`` method.
STATS_BEARING: FrozenSet[str] = frozenset(
    {
        "MSHRFile",
        "DRAM",
        "PageStructureCache",
        "SplitPSC",
        "XPTPPolicy",
        "AdaptiveXPTPController",
        "MMU",
        "BatchedEngine",
    }
)

#: The one module allowed to construct/mutate Table 1 parameters (RPR005).
PARAMS_RELKEY = "common/params.py"

#: Hardware leaf-structure constructors that only the topology layer may
#: call directly (RPR006).  Everything else goes through a
#: :class:`TopologySpec` + ``build()`` (or the sanctioned helpers in
#: ``topology/structures.py``), so machine shape stays declarative.
TOPOLOGY_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"SetAssociativeCache", "TLB", "DRAM"}
)

#: Relkey prefixes exempt from RPR006 — the sanctioned construction layer.
TOPOLOGY_RELKEY_PREFIXES = ("topology/",)

#: Relkey of the stats schema module RPR004 validates counters against.
STATS_RELKEY = "common/stats.py"

# --------------------------------------------------------------------------
# Whole-program effect analysis (RPR007-RPR009).  See docs/static-analysis.md
# for the effect model these feed.

#: Structure fields whose writes count as ``state:`` effects: cache-line
#: metadata, TLB-entry fields, the FDIP stream register, and the DRAM
#: bandwidth-window registers the kernel mirrors on its fast path.
STATE_FIELDS: FrozenSet[str] = frozenset(
    {
        # CacheLine (and MemoryRequest type bits, shared by writebacks)
        "valid",
        "tag",
        "dirty",
        "prefetched",
        "is_pte",
        "translation_type",
        # TLBEntry
        "vpn",
        "pfn",
        "page_size",
        "access_type",
        # FDIP next-line stream register
        "_last_line",
        # DRAM contention window
        "_window_accesses",
        "_window_instructions",
        "_queue_delay",
    }
)

#: Chain segments that mark a write as mutating an indexed structure map
#: (``tm[tag] = way`` through a ``_tag_maps`` alias, TLB key maps, DRAM
#: open-row registry), mapped to the effect label they produce.
STATE_SEGMENTS: Dict[str, str] = {
    "_tag_maps": "tag_maps",
    "tag_maps": "tag_maps",
    "_key_maps": "key_maps",
    "key_maps": "key_maps",
    "_open_rows": "open_rows",
}

#: Recency-stack mutators: a *call* to one of these names is a
#: ``state:recency`` effect (the stacks are the replacement policies'
#: ground truth, so bulk and scalar paths must both move them).
RECENCY_MUTATORS: FrozenSet[str] = frozenset(
    {
        "touch",
        "touch_many",
        "remove",
        "discard",
        "place_at_depth",
        "place_above_lru",
        "bulk_touch",
    }
)


class ShadowPair(NamedTuple):
    """One kernel fast path and the scalar spec path it re-implements."""

    kernel: Tuple[str, str]  #: (relkey, qualname) of the fast-path tier
    spec: Tuple[str, str]  #: (relkey, qualname) of the spec entry it shadows
    #: Bare names of helpers whose bodies the kernel *owns* (hand-inlined
    #: semantics).  Every other call the kernel makes is an escape into the
    #: real machinery — exact by construction, so excluded from parity.
    inlined: FrozenSet[str]


#: RPR007 compares the direct effects of each ``kernel`` (plus its inlined
#: helpers) against the full closure of each ``spec``.
KERNEL_SPEC_SHADOWS: Tuple[ShadowPair, ...] = (
    ShadowPair(
        kernel=("kernel/batched.py", "BatchedEngine._run_block"),
        spec=("core/cpu.py", "Core.execute"),
        inlined=frozenset({"bulk_touch"}),
    ),
)

#: Spec-path effects the kernel fast path legitimately never performs,
#: with the invariant that justifies each gate.  RPR007 reports a stale
#: gate when the spec stops writing the effect or the kernel starts.
KERNEL_GATED_EFFECTS: Dict[str, str] = {
    "stats:misses": "fast tiers resolve full-hit records; misses escape to Core.execute",
    "stats:miss_latency_sum": "accrued only on misses, which escape to the scalar path",
    "stats:cat_misses": "per-category miss split moves only on the escaped miss path",
    "stats:writebacks": "dirty victims defer to the real eviction machinery inline",
    "stats:front_stall_cycles": "provably zero for full-hit records (no front-end miss)",
    "stats:counters": "SimStats.bump cold counters (walks, STLB prefetches) are miss-path",
    "state:key_maps": "TLB insert is miss-path only; fast tiers never install entries",
    "state:vpn": "TLBEntry fields are written by TLB.insert on the miss path",
    "state:pfn": "TLBEntry fields are written by TLB.insert on the miss path",
    "state:page_size": "TLBEntry fields are written by TLB.insert on the miss path",
    "state:access_type": "TLBEntry fields are written by TLB.insert on the miss path",
    "state:open_rows": "DRAM row-buffer state moves only on latency-accounted accesses",
}

#: RPR008 entry points: functions shipped to pool workers.  Everything
#: reachable from them must stay deterministic.  ``Backend.execute`` is
#: the fabric's execution seam (every backend funnels attempts through
#: it); ``execute_cell`` is the module-level body it delegates to, which
#: is what ``ProcessPoolExecutor`` actually pickles to workers.  RPR009
#: cross-checks that both names still resolve.
WORKER_ENTRY_POINTS: Dict[str, FrozenSet[str]] = {
    "fabric/backends/base.py": frozenset({"Backend.execute", "execute_cell"}),
}

#: Relkey prefixes whose code RPR008 does not descend into: the
#: deterministic fault-injection package is *designed* to sleep and read
#: the environment, and seeds itself from the injection plan.
WORKER_SANCTIONED_PREFIXES: Tuple[str, ...] = ("faults/",)

#: RPR009(b) exemptions: relkey prefixes and qualname prefixes whose
#: functions need not be listed in HOT_FUNCTIONS even when hot code calls
#: them.  Policies and prefetchers are a duck-typed dispatch surface
#: (covered by the stateful suites); ``Naive*``/``Checked*`` classes are
#: the REPRO_CHECK shadow oracles, deliberately cold.
HOT_CALLEE_EXEMPT_PREFIXES: Tuple[str, ...] = (
    "replacement/",
    "cache/prefetch/",
    "tlb/policies/",
    "common/invariants.py",
)
HOT_CALLEE_EXEMPT_QUAL_PREFIXES: Tuple[str, ...] = ("Naive", "Checked")

#: Relkey of this manifest inside the linted tree.  RPR009 only runs its
#: liveness checks when the manifest itself is part of the linted file
#: set (whole-tree lints), so single-file fixtures don't false-fire.
MANIFEST_RELKEY = "lint/manifest.py"
