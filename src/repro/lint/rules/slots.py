"""RPR002 — hot-path mutable classes must declare ``__slots__``.

Instances of the classes in :data:`repro.lint.manifest.HOT_CLASSES` exist
per cache line / TLB way / in-flight request; ``__slots__`` (directly or
via ``@dataclass(slots=True)``) removes the per-instance ``__dict__`` and
makes attribute access a fixed-offset load.  ``NamedTuple``/``Protocol``
subclasses are exempt — they have no instance dict to begin with.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .. import manifest
from ..context import FileContext
from ..diagnostics import Diagnostic
from .base import Rule

_EXEMPT_BASES = frozenset({"NamedTuple", "Protocol"})


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _declares_slots(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        targets = []
        if isinstance(item, ast.Assign):
            targets = item.targets
        elif isinstance(item, ast.AnnAssign):
            targets = [item.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        if _base_name(deco.func) != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


class SlotsRule(Rule):
    code = "RPR002"
    summary = "hot-path mutable classes declare __slots__"

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        for ctx in files:
            if ctx.tree is None:
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name not in manifest.HOT_CLASSES:
                    continue
                if any(_base_name(b) in _EXEMPT_BASES for b in node.bases):
                    continue
                if not _declares_slots(node):
                    yield self.diag(
                        ctx,
                        node.lineno,
                        f"hot-path class '{node.name}' does not declare __slots__ "
                        "(use __slots__ or @dataclass(slots=True))",
                    )
