"""Rule registry for ``repro.lint``."""

from __future__ import annotations

from typing import List

from .allocations import AllocationRule
from .base import Rule
from .construction import TopologyConstructionRule
from .enumcmp import EnumComparisonRule
from .params import ParamsImmutabilityRule
from .slots import SlotsRule
from .stats_reset import StatsResetRule


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [
        AllocationRule(),
        SlotsRule(),
        EnumComparisonRule(),
        StatsResetRule(),
        ParamsImmutabilityRule(),
        TopologyConstructionRule(),
    ]


__all__ = [
    "AllocationRule",
    "EnumComparisonRule",
    "ParamsImmutabilityRule",
    "Rule",
    "SlotsRule",
    "StatsResetRule",
    "TopologyConstructionRule",
    "all_rules",
]
