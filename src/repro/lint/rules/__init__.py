"""Rule registry for ``repro.lint``."""

from __future__ import annotations

from typing import List

from .allocations import AllocationRule
from .base import Rule
from .construction import TopologyConstructionRule
from .effects_parity import EffectParityRule
from .enumcmp import EnumComparisonRule
from .manifest_liveness import ManifestLivenessRule
from .params import ParamsImmutabilityRule
from .slots import SlotsRule
from .stats_reset import StatsResetRule
from .worker_safety import WorkerSafetyRule


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [
        AllocationRule(),
        SlotsRule(),
        EnumComparisonRule(),
        StatsResetRule(),
        ParamsImmutabilityRule(),
        TopologyConstructionRule(),
        EffectParityRule(),
        WorkerSafetyRule(),
        ManifestLivenessRule(),
    ]


__all__ = [
    "AllocationRule",
    "EffectParityRule",
    "EnumComparisonRule",
    "ManifestLivenessRule",
    "ParamsImmutabilityRule",
    "Rule",
    "SlotsRule",
    "StatsResetRule",
    "TopologyConstructionRule",
    "WorkerSafetyRule",
    "all_rules",
]
