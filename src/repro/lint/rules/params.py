"""RPR005 — Table 1 parameters are read-only outside config construction.

The paper's Table 1 lives in ``repro/common/params.py`` as frozen
dataclasses plus the ``TABLE1`` instance; experiments derive variants with
``dataclasses.replace``.  Any attribute write that goes *through* a config
object (``...config.attr... = value``, ``TABLE1.x = value``) or a
``setattr``/``object.__setattr__`` aimed at one would silently change the
modelled hardware mid-run, so everywhere except ``params.py`` itself such
writes are flagged.  Rebinding a ``config`` attribute itself
(``self.config = cfg``) is fine — the rule fires only when a config link
is an *intermediate* component of the assigned chain.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence

from .. import manifest
from ..context import FileContext
from ..diagnostics import Diagnostic
from .base import Rule, attribute_chain


def _is_config_chain(parts: Optional[List[str]]) -> bool:
    """True when the assigned chain passes *through* a config object."""
    if not parts or len(parts) < 2:
        return False
    intermediates = parts[:-1]
    return "TABLE1" in intermediates or "config" in intermediates


def _setattr_target(node: ast.Call) -> Optional[List[str]]:
    func = node.func
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name not in ("setattr", "__setattr__") or not node.args:
        return None
    return attribute_chain(node.args[0]) or (
        [node.args[0].id] if isinstance(node.args[0], ast.Name) else None
    )


class ParamsImmutabilityRule(Rule):
    code = "RPR005"
    summary = "Table 1 parameters are never mutated outside config construction"

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        for ctx in files:
            if ctx.tree is None or ctx.relkey == manifest.PARAMS_RELKEY:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if not isinstance(target, (ast.Attribute, ast.Subscript)):
                            continue
                        if _is_config_chain(attribute_chain(target)):
                            yield self.diag(
                                ctx,
                                node.lineno,
                                "assignment mutates a frozen Table 1 config "
                                f"('{ast.unparse(target)}'); derive variants with "
                                "dataclasses.replace in params.py instead",
                            )
                elif isinstance(node, ast.Call):
                    chain = _setattr_target(node)
                    if chain and ("TABLE1" in chain or "config" in chain):
                        yield self.diag(
                            ctx,
                            node.lineno,
                            "setattr on a frozen Table 1 config object; derive "
                            "variants with dataclasses.replace in params.py instead",
                        )
