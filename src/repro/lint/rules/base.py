"""Rule protocol and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence

from ..context import FileContext
from ..diagnostics import Diagnostic


class Rule:
    """One static-analysis pass over the prepared file set."""

    code: str = "RPR000"
    summary: str = ""

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        ctx: FileContext,
        line: int,
        message: str,
        node: Optional[ast.AST] = None,
    ) -> Diagnostic:
        """Build a diagnostic; ``node`` supplies column/end-line spans."""
        col = 1
        end_line: Optional[int] = None
        if node is not None:
            col = getattr(node, "col_offset", 0) + 1
            end_line = getattr(node, "end_lineno", None)
        return Diagnostic(
            ctx.path, ctx.relkey, line, self.code, message, col, end_line
        )


def attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """Dotted-name components of an attribute chain, root first.

    ``self.config.stlb.latency`` → ``["self", "config", "stlb", "latency"]``.
    Subscripts are looked through (``a.b[i].c`` keeps ``["a", "b", "c"]``);
    returns ``None`` when the chain is rooted in a call or other expression.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


def iter_functions(tree: ast.Module) -> Iterator[tuple]:
    """Yield ``(qualname, node)`` for every function, using class scoping.

    Qualnames are ``Class.method`` / ``function`` / ``Outer.inner`` — the
    form the hot-path manifest uses.
    """

    def visit(node: ast.AST, stack: List[str]) -> Iterator[tuple]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join(stack + [child.name])
                yield qual, child
                yield from visit(child, stack + [child.name])
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, stack + [child.name])

    yield from visit(tree, [])


def attr_names_in(node: ast.AST) -> set:
    """Every attribute name mentioned anywhere under ``node``."""
    return {n.attr for n in ast.walk(node) if isinstance(n, ast.Attribute)}
