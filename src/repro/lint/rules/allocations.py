"""RPR001 — no object allocation on hot paths.

Functions named in :data:`repro.lint.manifest.HOT_FUNCTIONS` (or marked
``# repro: hot``) run per memory reference or per miss; PR 2's throughput
depends on them allocating nothing.  Flagged constructs:

* ``dict``/``list``/``set`` displays and comprehensions/generator
  expressions;
* f-strings (``JoinedStr`` builds a new ``str`` per evaluation);
* lambdas and nested ``def`` (closure objects);
* calls to the allocating builtins (``dict``, ``list``, ``set``,
  ``frozenset``, ``bytearray``) and to capitalised names (class
  construction by convention).

``raise``/``assert`` subtrees are exempt: error paths never execute in a
correct run, and their f-strings are the diagnostic payload.  Sanctioned
allocations (one result object per miss, say) carry
``# repro: allow[RPR001]`` with a rationale comment.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Tuple

from .. import manifest
from ..context import FileContext
from ..diagnostics import Diagnostic
from .base import Rule, iter_functions

_ALLOC_BUILTINS = frozenset({"dict", "list", "set", "frozenset", "bytearray"})

_COMPREHENSIONS = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}

_DISPLAYS = {ast.Dict: "dict display", ast.List: "list display", ast.Set: "set display"}


def _scan(func: ast.AST) -> List[Tuple[int, str]]:
    """Allocation sites inside ``func``, skipping raise/assert subtrees."""
    findings: List[Tuple[int, str]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Raise, ast.Assert)):
                continue  # error paths are cold by definition
            kind = _DISPLAYS.get(type(child))
            if kind is not None:
                findings.append((child.lineno, f"allocates a {kind}"))
            elif type(child) in _COMPREHENSIONS:
                findings.append(
                    (child.lineno, f"allocates via {_COMPREHENSIONS[type(child)]}")
                )
            elif isinstance(child, ast.JoinedStr):
                findings.append((child.lineno, "builds an f-string"))
            elif isinstance(child, ast.Lambda):
                findings.append((child.lineno, "creates a lambda (closure object)"))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.append(
                    (child.lineno, f"defines nested function '{child.name}' (closure)")
                )
            elif isinstance(child, ast.Call) and isinstance(child.func, ast.Name):
                name = child.func.id
                if name in _ALLOC_BUILTINS:
                    findings.append((child.lineno, f"calls allocating builtin '{name}'"))
                elif name[:1].isupper():
                    findings.append((child.lineno, f"constructs '{name}' object"))
            visit(child)

    visit(func)
    return findings


class AllocationRule(Rule):
    code = "RPR001"
    summary = "no object allocation in hot-path functions"

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        for ctx in files:
            if ctx.tree is None:
                continue
            manifest_hot = manifest.HOT_FUNCTIONS.get(ctx.relkey, frozenset())
            for qualname, func in iter_functions(ctx.tree):
                if qualname not in manifest_hot and not ctx.is_hot_marked(func.lineno):
                    continue
                for lineno, what in _scan(func):
                    yield self.diag(
                        ctx, lineno, f"hot function '{qualname}' {what}"
                    )
