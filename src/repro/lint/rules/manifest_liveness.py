"""RPR009 — the hot-path manifest matches the program it describes.

Two directions, both active only when the manifest module itself is part
of the linted file set (whole-tree lints), so single-file fixtures don't
false-fire:

* **(a) liveness** — every ``HOT_FUNCTIONS`` and ``WORKER_ENTRY_POINTS``
  entry (and every name in ``HOT_CLASSES``/``STATS_BEARING``/
  ``ENUM_CLASSES``/``TOPOLOGY_CONSTRUCTORS``) must resolve to a real
  definition.  A renamed or deleted function used to skip silently,
  quietly shrinking the RPR001 allocation contract (or RPR008's
  worker-determinism closure); now it is a hard error anchored at the
  manifest line naming it.
* **(b) coverage** — functions that hot code calls (per the call graph)
  and that write stats/state effects belong in the manifest too;
  otherwise the hot-path contract rots in the other direction.  The
  duck-typed policy/prefetcher dispatch surface and the REPRO_CHECK
  shadow oracles are exempt
  (:data:`repro.lint.manifest.HOT_CALLEE_EXEMPT_PREFIXES` /
  :data:`~repro.lint.manifest.HOT_CALLEE_EXEMPT_QUAL_PREFIXES`);
  genuinely cold helpers suppress at the ``def`` site.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .. import manifest
from ..callgraph import FunctionInfo, Program, program_for
from ..context import FileContext, find_file
from ..diagnostics import Diagnostic
from .base import Rule, iter_functions


def _constant_line(ctx: FileContext, value: str) -> int:
    """Line of the first string constant equal to ``value`` (fallback 1)."""
    if ctx.tree is not None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and node.value == value:
                return node.lineno
    return 1


class ManifestLivenessRule(Rule):
    code = "RPR009"
    summary = "HOT_FUNCTIONS entries resolve; effectful hot callees are listed"

    def __init__(
        self,
        hot_functions: Optional[Dict[str, FrozenSet[str]]] = None,
        hot_names: Optional[FrozenSet[str]] = None,
        exempt_prefixes: Optional[Tuple[str, ...]] = None,
        exempt_qual_prefixes: Optional[Tuple[str, ...]] = None,
        manifest_relkey: Optional[str] = None,
        worker_entry_points: Optional[Dict[str, FrozenSet[str]]] = None,
    ) -> None:
        self._hot_functions = hot_functions
        self._hot_names = hot_names
        self._exempt_prefixes = exempt_prefixes
        self._exempt_qual_prefixes = exempt_qual_prefixes
        self._manifest_relkey = manifest_relkey
        self._worker_entry_points = worker_entry_points

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        manifest_relkey = (
            self._manifest_relkey
            if self._manifest_relkey is not None
            else manifest.MANIFEST_RELKEY
        )
        manifest_ctx = find_file(files, manifest_relkey)
        if manifest_ctx is None:
            return  # not a whole-tree lint; nothing to cross-check
        hot_functions = (
            self._hot_functions
            if self._hot_functions is not None
            else manifest.HOT_FUNCTIONS
        )
        program = program_for(files)
        yield from self._check_liveness(
            files, manifest_ctx, hot_functions, program
        )
        yield from self._check_coverage(files, hot_functions, program)

    # ------------------------------------------------------------ (a) liveness

    def _check_liveness(
        self,
        files: Sequence[FileContext],
        manifest_ctx: FileContext,
        hot_functions: Dict[str, FrozenSet[str]],
        program: Program,
    ) -> Iterator[Diagnostic]:
        for relkey, quals in sorted(hot_functions.items()):
            ctx = find_file(files, relkey)
            if ctx is None or ctx.tree is None:
                yield self.diag(
                    manifest_ctx,
                    _constant_line(manifest_ctx, relkey),
                    f"HOT_FUNCTIONS names module '{relkey}' which is not in "
                    "the linted tree",
                )
                continue
            defined = {qual for qual, _ in iter_functions(ctx.tree)}
            for qual in sorted(quals):
                if qual not in defined:
                    yield self.diag(
                        manifest_ctx,
                        _constant_line(manifest_ctx, qual),
                        f"HOT_FUNCTIONS entry '{relkey}:{qual}' does not "
                        "resolve to a definition — the hot-path contract "
                        "no longer covers it",
                    )
        class_names: Set[str] = set()
        for ctx in files:
            if ctx.tree is None:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    class_names.add(node.name)
        hot_names = (
            self._hot_names
            if self._hot_names is not None
            else frozenset(
                manifest.HOT_CLASSES
                | manifest.STATS_BEARING
                | manifest.ENUM_CLASSES
                | manifest.TOPOLOGY_CONSTRUCTORS
            )
        )
        for name in sorted(hot_names - class_names):
            yield self.diag(
                manifest_ctx,
                _constant_line(manifest_ctx, name),
                f"manifest names class '{name}' which is not defined "
                "anywhere in the linted tree",
            )
        # RPR008 anchors: a renamed worker entry point would silently empty
        # the worker-determinism closure, so unresolved entries are errors.
        worker_entries = (
            self._worker_entry_points
            if self._worker_entry_points is not None
            else manifest.WORKER_ENTRY_POINTS
        )
        for relkey, quals in sorted(worker_entries.items()):
            ctx = find_file(files, relkey)
            if ctx is None or ctx.tree is None:
                yield self.diag(
                    manifest_ctx,
                    _constant_line(manifest_ctx, relkey),
                    f"WORKER_ENTRY_POINTS names module '{relkey}' which is "
                    "not in the linted tree",
                )
                continue
            defined = {qual for qual, _ in iter_functions(ctx.tree)}
            for qual in sorted(quals):
                if qual not in defined:
                    yield self.diag(
                        manifest_ctx,
                        _constant_line(manifest_ctx, qual),
                        f"WORKER_ENTRY_POINTS entry '{relkey}:{qual}' does "
                        "not resolve to a definition — RPR008's worker "
                        "closure no longer covers it",
                    )

    # ----------------------------------------------------------- (b) coverage

    def _check_coverage(
        self,
        files: Sequence[FileContext],
        hot_functions: Dict[str, FrozenSet[str]],
        program: Program,
    ) -> Iterator[Diagnostic]:
        from ..effects import EffectAnalysis  # local: avoid cycles at import

        exempt_prefixes = (
            self._exempt_prefixes
            if self._exempt_prefixes is not None
            else manifest.HOT_CALLEE_EXEMPT_PREFIXES
        )
        exempt_quals = (
            self._exempt_qual_prefixes
            if self._exempt_qual_prefixes is not None
            else manifest.HOT_CALLEE_EXEMPT_QUAL_PREFIXES
        )
        analysis = EffectAnalysis(program)
        hot_set: Set[Tuple[str, str]] = set()
        sources: List[FunctionInfo] = []
        for relkey, quals in hot_functions.items():
            for qual in quals:
                hot_set.add((relkey, qual))
                info = program.functions.get((relkey, qual))
                if info is not None:
                    sources.append(info)
        for ctx in files:
            if ctx.tree is None:
                continue
            for qual, node in iter_functions(ctx.tree):
                if ctx.is_hot_marked(node.lineno):
                    hot_set.add((ctx.relkey, qual))
                    info = program.functions.get((ctx.relkey, qual))
                    if info is not None:
                        sources.append(info)

        def hot_ok(relkey: str) -> bool:
            return relkey.startswith(manifest.HOT_MODULE_PREFIXES)

        reported: Set[Tuple[str, str]] = set()
        for fn in sources:
            for site in program.calls(fn):
                if fn.ctx.is_suppressed(site.line, self.code):
                    continue
                for cand in program.resolve(fn, site, hot_ok):
                    if cand.key in hot_set or cand.key in reported:
                        continue
                    if cand.relkey.startswith(exempt_prefixes):
                        continue
                    if cand.qualname.startswith(exempt_quals):
                        continue
                    if cand.ctx.is_hot_marked(cand.lineno):
                        continue
                    effects = analysis.effects_of(cand)
                    if not any(e.kind in ("stats", "state") for e in effects):
                        continue
                    reported.add(cand.key)
                    yield self.diag(
                        cand.ctx,
                        cand.lineno,
                        f"'{cand.qualname}' ({cand.relkey}) is called from "
                        f"hot function '{fn.qualname}' and writes "
                        "counters/state but is not in HOT_FUNCTIONS and not "
                        "marked '# repro: hot'",
                        node=cand.node,
                    )
