"""RPR007 — the batched kernel's fast path mirrors the spec's effects.

``BatchedEngine._run_block`` hand-inlines the full-hit semantics of
``Core.execute``; the differential suite proves bit-identity dynamically,
but only for the inputs it samples.  This rule enforces the contract
structurally: the set of ``stats:``/``state:`` effects written by the
kernel tier (its own body plus the helpers it *owns*, per
``ShadowPair.inlined``) must equal the effect closure of the spec path it
shadows, modulo the explicitly gated miss-path effects in
:data:`repro.lint.manifest.KERNEL_GATED_EFFECTS`.

Every call the kernel makes outside its inlined set — the scalar-fallback
escape into ``Core.execute``, the prefetcher/adaptive-controller hooks —
runs the *real* machinery and is exact by construction, so those edges
are excluded; including them would make the comparison vacuously true and
the drift canary blind.

Drift reports read in both directions:

* **spec-only effect** (anchored at the kernel entry): the spec grew a
  counter/state write the kernel neither mirrors nor gates;
* **kernel-only effect** (anchored at the kernel write): the kernel
  writes something the spec never does;
* **stale gate**: a gated effect the kernel now writes, or the spec no
  longer does — the gate no longer describes reality.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Tuple

from .. import manifest
from ..callgraph import FunctionInfo, program_for
from ..context import FileContext
from ..diagnostics import Diagnostic
from ..effects import EffectAnalysis, render_path
from .base import Rule

_PARITY_KINDS = ("stats", "state")


class EffectParityRule(Rule):
    code = "RPR007"
    summary = "kernel fast-path tiers write the same stats/state effects as the spec"

    def __init__(
        self,
        shadows: Optional[Tuple[manifest.ShadowPair, ...]] = None,
        gated: Optional[Dict[str, str]] = None,
        state_fields: Optional[FrozenSet[str]] = None,
        state_segments: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._shadows = shadows
        self._gated = gated
        self._state_fields = state_fields
        self._state_segments = state_segments

    def _analysis(self, files: Sequence[FileContext]) -> EffectAnalysis:
        return EffectAnalysis(
            program_for(files),
            state_fields=self._state_fields,
            state_segments=self._state_segments,
        )

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        shadows = (
            self._shadows if self._shadows is not None else manifest.KERNEL_SPEC_SHADOWS
        )
        gated = self._gated if self._gated is not None else manifest.KERNEL_GATED_EFFECTS
        analysis: Optional[EffectAnalysis] = None
        for pair in shadows:
            program = program_for(files)
            kernel_fn = program.functions.get(pair.kernel)
            spec_fn = program.functions.get(pair.spec)
            if kernel_fn is None or spec_fn is None:
                continue  # pair not in the linted set (single-file fixtures)
            if analysis is None:
                analysis = self._analysis(files)
            yield from self._check_pair(analysis, pair, gated, kernel_fn, spec_fn)

    def _check_pair(
        self,
        analysis: EffectAnalysis,
        pair: manifest.ShadowPair,
        gated: Dict[str, str],
        kernel_fn: FunctionInfo,
        spec_fn: FunctionInfo,
    ) -> Iterator[Diagnostic]:
        def hot_ok(relkey: str) -> bool:
            return relkey.startswith(manifest.HOT_MODULE_PREFIXES)

        def inlined_only(fn: FunctionInfo) -> bool:
            return fn.bare in pair.inlined

        spec_effects, spec_paths = analysis.closure(
            [spec_fn], code=self.code, module_ok=hot_ok
        )
        kernel_effects, _ = analysis.closure(
            [kernel_fn], code=self.code, module_ok=hot_ok, follow=inlined_only
        )
        spec_idents = {
            i for i, e in spec_effects.items() if e.kind in _PARITY_KINDS
        }
        kernel_idents = {
            i for i, e in kernel_effects.items() if e.kind in _PARITY_KINDS
        }

        kernel_ctx = kernel_fn.ctx
        entry_node: ast.AST = kernel_fn.node
        for ident in sorted(spec_idents - kernel_idents):
            if ident in gated:
                continue
            eff = spec_effects[ident]
            path = render_path(
                spec_paths.get((eff.relkey, eff.qualname), (spec_fn.qualname,))
            )
            yield self.diag(
                kernel_ctx,
                kernel_fn.lineno,
                f"spec path writes '{ident}' (at {eff.relkey}:{eff.line} via "
                f"{path}) but kernel tier '{kernel_fn.qualname}' neither "
                "mirrors it nor gates it in KERNEL_GATED_EFFECTS",
                node=entry_node,
            )
        for ident in sorted(kernel_idents - spec_idents):
            eff = kernel_effects[ident]
            yield self.diag(
                kernel_ctx,
                eff.line,
                f"kernel tier '{kernel_fn.qualname}' writes '{ident}' which "
                f"the spec path '{spec_fn.qualname}' never writes",
            )
        for ident in sorted(set(gated) & kernel_idents):
            yield self.diag(
                kernel_ctx,
                kernel_fn.lineno,
                f"KERNEL_GATED_EFFECTS lists '{ident}' but the kernel tier "
                f"'{kernel_fn.qualname}' writes it — remove the stale gate",
                node=entry_node,
            )
        for ident in sorted(set(gated) - spec_idents):
            yield self.diag(
                kernel_ctx,
                kernel_fn.lineno,
                f"KERNEL_GATED_EFFECTS lists '{ident}' but the spec path "
                f"'{spec_fn.qualname}' no longer writes it — remove the "
                "stale gate",
                node=entry_node,
            )
