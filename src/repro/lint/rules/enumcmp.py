"""RPR003 — enum members are compared with ``is`` in hot modules.

``AccessType``/``RequestType``/``PageSize`` are IntEnums: their members are
singletons, so identity comparison is both correct and a single pointer
compare, where ``==`` dispatches through ``__eq__``.  The rule recognises
direct member accesses (``AccessType.DATA``) and the module-level alias
convention (``_DATA = AccessType.DATA``) the hot paths use.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set

from .. import manifest
from ..context import FileContext
from ..diagnostics import Diagnostic
from .base import Rule


def _module_enum_aliases(tree: ast.Module) -> Set[str]:
    """Names bound at module level to an enum member (``_DATA = ...``)."""
    aliases: Set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        value = node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in manifest.ENUM_CLASSES
        ):
            aliases.add(target.id)
    return aliases


def _is_enum_member(node: ast.expr, aliases: Set[str]) -> bool:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in manifest.ENUM_CLASSES
    ):
        return True
    return isinstance(node, ast.Name) and node.id in aliases


class EnumComparisonRule(Rule):
    code = "RPR003"
    summary = "enum members compared with 'is' in hot modules"

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        for ctx in files:
            if ctx.tree is None:
                continue
            if not ctx.relkey.startswith(manifest.HOT_MODULE_PREFIXES):
                continue
            aliases = _module_enum_aliases(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                for i, op in enumerate(node.ops):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    pair = (operands[i], operands[i + 1])
                    if any(_is_enum_member(o, aliases) for o in pair):
                        wanted = "is" if isinstance(op, ast.Eq) else "is not"
                        found = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.diag(
                            ctx,
                            node.lineno,
                            f"enum member compared with '{found}'; members are "
                            f"singletons — use '{wanted}'",
                        )
