"""RPR006 — hardware leaf structures are built only by the topology layer.

The machine graph is declarative: :class:`repro.topology.spec.TopologySpec`
describes it, :func:`repro.topology.builder.build` realizes it, and the
sanctioned constructors in ``repro/topology/structures.py`` are the only
place :class:`SetAssociativeCache`, :class:`TLB` or :class:`DRAM` are
instantiated directly.  A direct construction anywhere else in ``src/repro``
re-introduces hand wiring — the exact duplication the topology refactor
removed — and bypasses the policy-context and stats-bucket conventions the
builder guarantees, so it is flagged.  Tests and examples are not linted by
CI; genuinely sanctioned sites elsewhere carry ``# repro: allow[RPR006]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from .. import manifest
from ..context import FileContext
from ..diagnostics import Diagnostic
from .base import Rule


def _called_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class TopologyConstructionRule(Rule):
    code = "RPR006"
    summary = "hardware leaf structures are constructed only by repro.topology"

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        for ctx in files:
            if ctx.tree is None:
                continue
            if ctx.relkey.startswith(manifest.TOPOLOGY_RELKEY_PREFIXES):
                continue
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Call)
                    and _called_name(node) in manifest.TOPOLOGY_CONSTRUCTORS
                ):
                    yield self.diag(
                        ctx,
                        node.lineno,
                        f"direct {_called_name(node)}(...) construction outside "
                        "repro.topology; describe the structure in a TopologySpec "
                        "(or use topology.structures helpers) instead",
                    )
