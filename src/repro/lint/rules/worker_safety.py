"""RPR008 — worker-reachable code is deterministic and share-nothing.

The fabric's execution backends ship the worker entry points
(:data:`repro.lint.manifest.WORKER_ENTRY_POINTS` — ``Backend.execute``
and the ``execute_cell`` body it delegates to) to pool processes, and
the planned multi-host backends will ship them further.  Two invariants
make that safe and keep cell results content-addressable by ``job_key``:

* no write to module-level mutable state (results must not depend on
  which worker ran which cell, or in what order);
* no unseeded randomness or wall-clock dependence (``time.perf_counter``
  is sanctioned — it only feeds the *reported* timing, never simulated
  state; seeded ``random.Random(seed)`` / ``numpy.random.default_rng``
  are fine).

The deterministic fault-injection package is the one sanctioned
exception (:data:`~repro.lint.manifest.WORKER_SANCTIONED_PREFIXES`): it
sleeps and reads the environment *by design*, under its own plan-seeded
determinism, so the closure never descends into it.

Diagnostics anchor at the offending write/call (callee site), so a
sanctioned site suppresses with ``# repro: allow[RPR008]`` right where
the nondeterminism lives; suppressing at a call site instead prunes the
whole subtree behind that call.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Sequence, Tuple

from .. import manifest
from ..callgraph import program_for
from ..context import FileContext
from ..diagnostics import Diagnostic
from ..effects import EffectAnalysis, render_path
from .base import Rule


class WorkerSafetyRule(Rule):
    code = "RPR008"
    summary = "worker-reachable code avoids global writes and unseeded RNG/time APIs"

    def __init__(
        self,
        entry_points: Optional[Dict[str, FrozenSet[str]]] = None,
        sanctioned_prefixes: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self._entry_points = entry_points
        self._sanctioned = sanctioned_prefixes

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        entry_points = (
            self._entry_points
            if self._entry_points is not None
            else manifest.WORKER_ENTRY_POINTS
        )
        sanctioned = (
            self._sanctioned
            if self._sanctioned is not None
            else manifest.WORKER_SANCTIONED_PREFIXES
        )
        program = program_for(files)
        analysis: Optional[EffectAnalysis] = None

        def worker_ok(relkey: str) -> bool:
            return not relkey.startswith(sanctioned)

        for relkey, quals in sorted(entry_points.items()):
            for qual in sorted(quals):
                entry = program.functions.get((relkey, qual))
                if entry is None:
                    continue  # entry not in the linted set (fixtures)
                if analysis is None:
                    analysis = EffectAnalysis(program)
                effects, paths = analysis.closure(
                    [entry], code=self.code, module_ok=worker_ok
                )
                for ident in sorted(effects):
                    eff = effects[ident]
                    if eff.kind != "env":
                        continue
                    fn = program.functions.get((eff.relkey, eff.qualname))
                    if fn is None:  # pragma: no cover - closure invariant
                        continue
                    path = render_path(
                        paths.get((eff.relkey, eff.qualname), (qual,))
                    )
                    yield self.diag(
                        fn.ctx,
                        eff.line,
                        f"'{eff.name}' is reachable from worker entry point "
                        f"'{qual}' ({path}); workers must stay deterministic "
                        "— seed it, hoist it out of the worker path, or move "
                        "it behind repro.faults",
                    )
