"""RPR004 — every counter is declared in the stats schema and reset.

Two coupled checks, both derived from parsing ``common/stats.py`` (the
linted tree's copy when present, the packaged one otherwise):

* **Schema/reset coverage for LevelStats/SimStats increments.**  Any
  ``stats.X += ...`` / ``self.stats.X += ...`` / ``stats.X[k] += ...``
  site anywhere in the hot modules must name a counter that (a) exists in
  ``LevelStats.__slots__`` or as a ``SimStats`` field and (b) is mentioned
  by the corresponding ``reset()`` — otherwise the measurement window
  silently inherits warmup counts (the PR 1 bug class).

* **Stats-bearing structures clear their own counters.**  Classes in
  :data:`repro.lint.manifest.STATS_BEARING` own counters outside the
  central stats objects (public attributes initialised to ``0``/``0.0`` or
  incremented via ``self.X +=``).  Each must define ``reset``/
  ``reset_stats`` mentioning every such counter.  Genuine *state* counters
  (read-and-clear windows) opt out with ``# repro: allow[RPR004]`` at the
  initialisation site.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .. import manifest
from ..context import FileContext, find_file
from ..diagnostics import Diagnostic
from .base import Rule, attr_names_in


class StatsSchema:
    """Counter names and reset coverage extracted from ``stats.py``."""

    def __init__(self) -> None:
        self.level_counters: Set[str] = set()
        self.sim_counters: Set[str] = set()
        self.reset_names: Set[str] = set()

    @property
    def declared(self) -> Set[str]:
        return self.level_counters | self.sim_counters


def _extract_schema(tree: ast.Module) -> StatsSchema:
    schema = StatsSchema()
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name == "LevelStats":
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name) and target.id == "__slots__":
                            for elt in ast.walk(item.value):
                                if isinstance(elt, ast.Constant) and isinstance(
                                    elt.value, str
                                ):
                                    schema.level_counters.add(elt.value)
                elif isinstance(item, ast.FunctionDef) and item.name == "reset":
                    schema.reset_names |= attr_names_in(item)
        elif node.name == "SimStats":
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    schema.sim_counters.add(item.target.id)
                elif isinstance(item, ast.FunctionDef) and item.name == "reset":
                    schema.reset_names |= attr_names_in(item)
    return schema


def _load_schema(files: Sequence[FileContext]) -> Optional[StatsSchema]:
    ctx = find_file(files, manifest.STATS_RELKEY)
    if ctx is not None and ctx.tree is not None:
        return _extract_schema(ctx.tree)
    packaged = Path(__file__).resolve().parents[2] / "common" / "stats.py"
    try:
        return _extract_schema(ast.parse(packaged.read_text()))
    except (OSError, SyntaxError):  # pragma: no cover - packaged file exists
        return None


def _stats_rooted_counter(target: ast.expr) -> Optional[str]:
    """Counter name if ``target`` is an attribute (or item) of a stats object."""
    if isinstance(target, ast.Subscript):
        target = target.value
    if not isinstance(target, ast.Attribute):
        return None
    owner = target.value
    if isinstance(owner, ast.Name) and owner.id in ("stats", "_stats"):
        return target.attr
    if isinstance(owner, ast.Attribute) and owner.attr in ("stats", "_stats"):
        return target.attr
    return None


_ZERO = (0, 0.0)


def _counter_sites(cls: ast.ClassDef) -> Dict[str, int]:
    """Public counter attributes of a stats-bearing class → defining line."""
    sites: Dict[str, int] = {}

    def note(name: str, lineno: int, *, prefer: bool = False) -> None:
        if name.startswith("_"):
            return
        if prefer or name not in sites:
            sites[name] = lineno

    for func in cls.body:
        if not isinstance(func, ast.FunctionDef):
            continue
        is_init = func.name == "__init__"
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and is_init:
                if not (
                    isinstance(node.value, ast.Constant)
                    and type(node.value.value) in (int, float)
                    and node.value.value in _ZERO
                ):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        note(target.attr, target.lineno, prefer=True)
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    note(target.attr, target.lineno)
    return sites


def _reset_method(cls: ast.ClassDef) -> Optional[ast.FunctionDef]:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name in ("reset_stats", "reset"):
            return item
    return None


class StatsResetRule(Rule):
    code = "RPR004"
    summary = "counters are declared in the stats schema and cleared by reset()"

    def check(self, files: Sequence[FileContext]) -> Iterator[Diagnostic]:
        schema = _load_schema(files)
        for ctx in files:
            if ctx.tree is None:
                continue
            if not ctx.relkey.startswith(manifest.HOT_MODULE_PREFIXES):
                continue
            if schema is not None and ctx.relkey != manifest.STATS_RELKEY:
                yield from self._check_increments(ctx, schema)
            yield from self._check_bearing_classes(ctx)

    def _check_increments(
        self, ctx: FileContext, schema: StatsSchema
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            counter = _stats_rooted_counter(node.target)
            if counter is None:
                continue
            if counter not in schema.declared:
                yield self.diag(
                    ctx,
                    node.lineno,
                    f"increments stats counter '{counter}' which is not declared "
                    "in the LevelStats/SimStats schema",
                )
            elif counter not in schema.reset_names:
                yield self.diag(
                    ctx,
                    node.lineno,
                    f"stats counter '{counter}' is never cleared by reset(); "
                    "measurement would inherit warmup counts",
                )

    def _check_bearing_classes(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in manifest.STATS_BEARING:
                continue
            sites: Dict[str, int] = _counter_sites(node)
            if not sites:
                continue
            reset = _reset_method(node)
            if reset is None:
                yield self.diag(
                    ctx,
                    node.lineno,
                    f"stats-bearing class '{node.name}' defines counters "
                    f"({', '.join(sorted(sites))}) but no reset_stats()/reset()",
                )
                continue
            cleared = attr_names_in(reset)
            missing: List[Tuple[int, str]] = [
                (lineno, name)
                for name, lineno in sites.items()
                if name not in cleared
            ]
            for lineno, name in sorted(missing):
                yield self.diag(
                    ctx,
                    lineno,
                    f"counter '{node.name}.{name}' is not cleared by "
                    f"{node.name}.{reset.name}()",
                )
