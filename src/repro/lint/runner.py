"""Drive the rule set over files, sources or directory trees."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .context import FileContext
from .diagnostics import Diagnostic
from .rules import all_rules
from .rules.base import Rule


def _contexts_for_paths(paths: Iterable[str]) -> List[FileContext]:
    contexts: List[FileContext] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            targets = sorted(path.rglob("*.py"))
        else:
            targets = [path]
        for target in targets:
            contexts.append(FileContext(str(target), target.read_text()))
    return contexts


def lint_files(
    files: Sequence[FileContext], rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Run ``rules`` (default: all) over prepared contexts.

    Syntax errors surface as ``RPR000`` diagnostics; suppressed findings
    (``# repro: allow[RPRnnn]`` on the flagged line or the line above) are
    dropped here so individual rules stay suppression-agnostic.
    """
    by_key: Dict[str, FileContext] = {ctx.path: ctx for ctx in files}
    diagnostics: List[Diagnostic] = [
        Diagnostic(
            ctx.path,
            ctx.relkey,
            ctx.syntax_error.lineno or 1,
            "RPR000",
            f"syntax error: {ctx.syntax_error.msg}",
        )
        for ctx in files
        if ctx.syntax_error is not None
    ]
    for rule in rules if rules is not None else all_rules():
        for diag in rule.check(files):
            ctx = by_key[diag.path]
            if not ctx.is_suppressed(diag.line, diag.code):
                diagnostics.append(diag)
    return sorted(diagnostics, key=Diagnostic.sort_key)


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Lint files and directory trees given as filesystem paths."""
    return lint_files(_contexts_for_paths(paths), rules)


def lint_sources(
    sources: Mapping[str, str], rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Lint in-memory sources keyed by relkey (used by the rule fixtures)."""
    contexts = [
        FileContext(name, text, relkey=name) for name, text in sources.items()
    ]
    return lint_files(contexts, rules)
