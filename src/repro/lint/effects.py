"""Interprocedural effect inference over the call graph.

Every function gets a *direct* effect set — what it writes, classified
against the simulator's measurement schema — and the rules union those
sets over :meth:`repro.lint.callgraph.Program.reach` closures.  Three
effect kinds:

* ``stats:<counter>`` — a write to an attribute (or item) whose owner
  chain passes through a stats object (``stats`` / ``_stats`` /
  ``*_stats`` segment, or ``self`` inside ``LevelStats``/``SimStats``).
  These are the numbers the paper's figures are made of.
* ``state:<field>`` — a write to a named structure field
  (:data:`repro.lint.manifest.STATE_FIELDS`), to an indexed structure map
  (:data:`~repro.lint.manifest.STATE_SEGMENTS`: tag maps, TLB key maps,
  DRAM open rows), or a call to a recency-stack mutator
  (:data:`~repro.lint.manifest.RECENCY_MUTATORS`).
* ``env:<what>`` — nondeterminism and shared mutable state: unseeded
  ``random``/``numpy.random`` APIs, wall-clock ``time`` calls
  (``perf_counter`` is sanctioned — it feeds reported timings, not
  simulated state), ``datetime.now``, ``uuid``/``secrets``,
  ``os.environ`` writes, and writes to module-level mutable globals.

Effects carry a witness (file, function, line) so diagnostics can point
at the concrete write, and the closure drops effects whose witness line
carries an ``# repro: allow[<code>]`` suppression — that is the
*callee-site* suppression the interprocedural rules honour, alongside
call-site suppression via edge pruning.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from . import manifest
from .callgraph import (
    CallSite,
    Chain,
    FunctionInfo,
    FunctionKey,
    Program,
    _raw_chain,
    scope_nodes,
)

#: RNG constructors that take an explicit seed — allowed in workers.
_SEEDED_RANDOM = frozenset({"Random"})
_SEEDED_NP_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence"})
_FORBIDDEN_TIME = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "sleep", "localtime",
     "gmtime", "ctime"}
)
_STATS_OWNERS = frozenset({"stats", "_stats"})
_STATS_CLASSES = frozenset({"LevelStats", "SimStats"})


class Effect:
    """One classified write, with its witness location."""

    __slots__ = ("kind", "name", "relkey", "qualname", "line")

    def __init__(
        self, kind: str, name: str, relkey: str, qualname: str, line: int
    ) -> None:
        self.kind = kind  #: ``stats`` | ``state`` | ``env``
        self.name = name
        self.relkey = relkey
        self.qualname = qualname
        self.line = line

    @property
    def ident(self) -> str:
        return f"{self.kind}:{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Effect({self.ident} @ {self.relkey}:{self.line})"


def _is_stats_owner(segment: str) -> bool:
    return segment in _STATS_OWNERS or segment.endswith("_stats")


class EffectAnalysis:
    """Per-function effect extraction plus closure unions over a program."""

    def __init__(
        self,
        program: Program,
        *,
        state_fields: Optional[FrozenSet[str]] = None,
        state_segments: Optional[Mapping[str, str]] = None,
        recency_mutators: Optional[FrozenSet[str]] = None,
    ) -> None:
        self.program = program
        self.state_fields = (
            state_fields if state_fields is not None else manifest.STATE_FIELDS
        )
        self.state_segments: Mapping[str, str] = (
            state_segments if state_segments is not None else manifest.STATE_SEGMENTS
        )
        self.recency_mutators = (
            recency_mutators
            if recency_mutators is not None
            else manifest.RECENCY_MUTATORS
        )
        self._cache: Dict[FunctionKey, Tuple[Effect, ...]] = {}

    # -------------------------------------------------------- direct effects

    def effects_of(self, fn: FunctionInfo) -> Tuple[Effect, ...]:
        cached = self._cache.get(fn.key)
        if cached is not None:
            return cached
        effects = tuple(self._extract(fn))
        self._cache[fn.key] = effects
        return effects

    def _extract(self, fn: FunctionInfo) -> Iterable[Effect]:
        global_decls: set = set()
        for node in scope_nodes(fn.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)

        def effect(kind: str, name: str, line: int) -> Effect:
            return Effect(kind, name, fn.relkey, fn.qualname, line)

        for node in scope_nodes(fn.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                found = self._classify_store(fn, target, global_decls)
                if found is not None:
                    yield effect(found[0], found[1], target.lineno)

        for site in self.program.calls(fn):
            if site.name in self.recency_mutators:
                yield effect("state", "recency", site.line)
            if site.chain is not None:
                env = self._env_call(fn, site.chain)
                if env is not None:
                    yield effect("env", env, site.line)

    def _classify_store(
        self, fn: FunctionInfo, target: ast.expr, global_decls: set
    ) -> Optional[Tuple[str, str]]:
        if isinstance(target, ast.Name):
            if target.id in global_decls:
                return ("env", f"global:{target.id}")
            return None
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                found = self._classify_store(fn, elt, global_decls)
                if found is not None:
                    return found
            return None
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return None
        raw = _raw_chain(target)
        if raw is None:
            return None
        # ``self.X = ...`` REBINDS the attribute; expanding it through the
        # constructor binding would conflate "holds this value" with
        # "mutates this object" (``self._next = FRAME_BASE`` is a read of
        # the global, not a write).  Mutations *through* the attribute
        # (``self._map[k] = v``, ``self.stats.hits += 1``) still expand.
        direct_rebind = (
            isinstance(target, ast.Attribute)
            and len(raw) == 2
            and raw[0] in ("self", "cls")
        )
        chain = raw if direct_rebind else self.program.canonical(fn, raw)
        expanded = self._expand_imports(fn, chain)
        if "environ" in expanded:
            return ("env", "os.environ")
        last = chain[-1]
        owner = chain[:-1]
        if any(_is_stats_owner(seg) for seg in owner):
            return ("stats", last)
        if fn.cls in _STATS_CLASSES and chain[0] == "self" and len(chain) > 1:
            return ("stats", last)
        if last in self.state_fields:
            return ("state", last)
        for seg in reversed(chain):
            mapped = self.state_segments.get(seg)
            if mapped is not None:
                return ("state", mapped)
        root = chain[0]
        if (
            root not in ("self", "cls")
            and root in self.program.module_globals.get(fn.relkey, ())
            and root not in self.program.locals_of(fn)
        ):
            return ("env", f"global:{root}")
        return None

    def _expand_imports(self, fn: FunctionInfo, chain: Chain) -> Chain:
        imports = self.program.imports.get(fn.relkey, {})
        bound = imports.get(chain[0])
        if bound is not None:
            return tuple(bound.split(".")) + chain[1:]
        return chain

    def _env_call(self, fn: FunctionInfo, chain: Chain) -> Optional[str]:
        chain = self._expand_imports(fn, chain)
        root = chain[0]
        if root == "random" and len(chain) >= 2:
            if chain[1] not in _SEEDED_RANDOM:
                return f"random.{chain[1]}"
        elif root == "numpy" and len(chain) >= 3 and chain[1] == "random":
            if chain[2] not in _SEEDED_NP_RANDOM:
                return f"numpy.random.{chain[2]}"
        elif root == "time" and len(chain) >= 2:
            if chain[1] in _FORBIDDEN_TIME:
                return f"time.{chain[1]}"
        elif root == "datetime":
            if chain[-1] in ("now", "utcnow", "today"):
                return "datetime.now"
        elif root == "os" and len(chain) >= 2:
            if chain[1] == "urandom":
                return "os.urandom"
            if chain[1] == "environ" and chain[-1] in (
                "update", "setdefault", "pop", "popitem", "clear"
            ):
                return "os.environ"
        elif root == "uuid" and len(chain) >= 2:
            if chain[1] in ("uuid1", "uuid4"):
                return f"uuid.{chain[1]}"
        elif root == "secrets":
            return "secrets"
        return None

    # --------------------------------------------------------------- closure

    def closure(
        self,
        entries: Iterable[FunctionInfo],
        *,
        code: Optional[str] = None,
        module_ok: Optional[Callable[[str], bool]] = None,
        blocked: FrozenSet[str] = frozenset(),
        follow: Optional[Callable[[FunctionInfo], bool]] = None,
    ) -> Tuple[Dict[str, Effect], Dict[FunctionKey, Tuple[str, ...]]]:
        """Union of effects over the reachable set.

        Returns ``(effects_by_ident, call_paths)``.  When ``code`` is
        given, call edges from lines suppressed for that code are pruned
        (call-site suppression) and effects whose witness line is
        suppressed are dropped (callee-site suppression).
        """

        def prune(caller: FunctionInfo, site: CallSite) -> bool:
            return code is not None and caller.ctx.is_suppressed(site.line, code)

        paths = self.program.reach(
            entries,
            module_ok=module_ok,
            blocked=blocked,
            follow=follow,
            prune=prune if code is not None else None,
        )
        effects: Dict[str, Effect] = {}
        for key in paths:
            fn = self.program.functions.get(key)
            if fn is None:
                continue
            for eff in self.effects_of(fn):
                if code is not None and fn.ctx.is_suppressed(eff.line, code):
                    continue
                if eff.ident not in effects:
                    effects[eff.ident] = eff
        return effects, paths


def render_path(path: Tuple[str, ...]) -> str:
    """Human-readable call chain for diagnostics."""
    if len(path) <= 1:
        return path[0] if path else ""
    return " -> ".join(path)
