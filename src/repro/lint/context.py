"""Per-file analysis context: parsed tree, suppressions and hot markers."""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")
_HOT_RE = re.compile(r"#\s*repro:\s*hot\b")


def relkey_for(path: str) -> str:
    """Path relative to the innermost ``repro`` package, ``/``-separated.

    Falls back to the basename when the path does not live under a
    ``repro`` directory (ad-hoc files, test fixtures).
    """
    parts = [p for p in re.split(r"[\\/]+", path) if p]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    return parts[-1] if parts else path


class FileContext:
    """One source file prepared for rule checks."""

    def __init__(self, path: str, source: str, relkey: Optional[str] = None) -> None:
        self.path = path
        self.relkey = relkey if relkey is not None else relkey_for(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:  # surfaced as an RPR000 diagnostic
            self.syntax_error = exc
        #: line -> rule codes suppressed there via ``# repro: allow[...]``.
        self.suppressions: Dict[int, Set[str]] = {}
        #: lines carrying a ``# repro: hot`` marker.
        self.hot_lines: Set[int] = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(text)
            if match:
                codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                self.suppressions.setdefault(lineno, set()).update(codes)
            if _HOT_RE.search(text):
                self.hot_lines.add(lineno)

    def is_suppressed(self, line: int, code: str) -> bool:
        """True if ``code`` is allowed on ``line`` or the line above it."""
        for lineno in (line, line - 1):
            if code in self.suppressions.get(lineno, ()):
                return True
        return False

    def is_hot_marked(self, line: int) -> bool:
        """True if a ``# repro: hot`` marker sits on ``line`` or above it."""
        return line in self.hot_lines or (line - 1) in self.hot_lines


def find_file(files: Sequence[FileContext], relkey: str) -> Optional[FileContext]:
    for ctx in files:
        if ctx.relkey == relkey:
            return ctx
    return None
