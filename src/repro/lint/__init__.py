"""Simulator-aware static analysis (``python -m repro.lint``).

The simulator's hot paths obey a handful of structural invariants that
ordinary linters cannot express — no allocation per reference, slotted
mutable classes, identity-compared enum singletons, schema-complete and
reset-complete statistics counters, immutable Table 1 parameters.  This
package checks them with a small AST pass per rule:

========  ===========================================================
RPR001    no object allocation in hot-path functions
RPR002    hot-path mutable classes declare ``__slots__``
RPR003    enum members compared with ``is`` in hot modules
RPR004    counters declared in the stats schema and cleared by reset()
RPR005    Table 1 parameters never mutated outside config construction
========  ===========================================================

See ``docs/static-analysis.md`` for the rule catalog, the ``# repro: hot``
marker and the ``# repro: allow[RPRnnn]`` suppression syntax.  The runtime
complement (differential checking under ``REPRO_CHECK=1``) lives in
:mod:`repro.common.invariants`.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, format_github, format_text, render
from .runner import lint_files, lint_paths, lint_sources

__all__ = [
    "Diagnostic",
    "format_github",
    "format_text",
    "lint_files",
    "lint_paths",
    "lint_sources",
    "render",
]
