"""Diagnostic record and output formatting for ``repro.lint``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why."""

    path: str  #: Display path (as given on the command line).
    relkey: str  #: Path relative to the ``repro`` package (rule scoping key).
    line: int  #: 1-based line the finding anchors to.
    code: str  #: Rule code, e.g. ``RPR001``.
    message: str
    col: int = 1  #: 1-based column of the finding.
    end_line: Optional[int] = None  #: Last line of the finding, if known.

    @property
    def span_end(self) -> int:
        return self.end_line if self.end_line is not None else self.line

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code, self.message)


def format_text(diag: Diagnostic) -> str:
    return f"{diag.path}:{diag.line}:{diag.col}: {diag.code} {diag.message}"


def format_github(diag: Diagnostic) -> str:
    """GitHub Actions workflow-command annotation (shows inline on the PR)."""
    return (
        f"::error file={diag.path},line={diag.line},endLine={diag.span_end},"
        f"col={diag.col},title={diag.code}::{diag.message}"
    )


_FORMATTERS = {"text": format_text, "github": format_github}


def render(diagnostics: Iterable[Diagnostic], fmt: str = "text") -> List[str]:
    formatter = _FORMATTERS[fmt]
    return [formatter(d) for d in sorted(diagnostics, key=Diagnostic.sort_key)]
