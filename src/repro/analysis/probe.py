"""Access-stream probes: connect the simulator to the offline analyzers.

An :class:`AccessProbe` wraps any memory level (cache or DRAM) and records
the line addresses of the requests flowing into it, optionally filtered by
request type.  The captured stream feeds the offline tools — e.g. compute
the Belady optimality gap of the L2C's replacement policy, or the stack
distance profile of the page-walk reference stream xPTP competes for.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..common.types import MemoryRequest, RequestType
from .belady import BeladyResult, belady_set_assoc
from .stack_distance import StackDistanceAnalyzer, StackDistanceProfile


class AccessProbe:
    """Transparent recorder inserted between two memory levels."""

    def __init__(
        self,
        next_level,
        accept: Optional[Callable[[MemoryRequest], bool]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.next_level = next_level
        # Default filter: the allocation-relevant stream the level's
        # replacement policy manages — demand and page-walk requests.
        # Writebacks are absorbed without replacement decisions and
        # prefetch-through requests never allocate (docs/simulator.md).
        self.accept = accept or (
            lambda req: req.req_type
            not in (RequestType.WRITEBACK, RequestType.PREFETCH)
        )
        self.capacity = capacity
        self.line_addresses: List[int] = []
        self.dropped = 0

    def access(self, req: MemoryRequest) -> int:
        if self.accept(req):
            if self.capacity is None or len(self.line_addresses) < self.capacity:
                self.line_addresses.append(req.line_address)
            else:
                self.dropped += 1
        return self.next_level.access(req)

    # ------------------------------------------------------------------ #

    def belady_gap(self, num_sets: int, associativity: int, policy_misses: int) -> float:
        """How far ``policy_misses`` is above the offline optimum (ratio)."""
        optimum = self.optimal(num_sets, associativity).misses
        if optimum == 0:
            return 0.0 if policy_misses == 0 else float("inf")
        return policy_misses / optimum

    def optimal(self, num_sets: int, associativity: int) -> BeladyResult:
        """Offline-optimal hit/miss counts for the captured stream."""
        return belady_set_assoc(self.line_addresses, num_sets, associativity)

    def stack_profile(self) -> StackDistanceProfile:
        """Mattson profile of the captured stream (fully-associative LRU)."""
        return StackDistanceAnalyzer().run(self.line_addresses)


def attach_probe_before(cache, **kwargs) -> AccessProbe:
    """Insert a probe in front of ``cache`` — records everything it receives.

    Returns the probe; the caller rewires the upstream level(s) to point at
    it.  For the common case of probing one cache's *input* stream, use
    :func:`probe_cache_input` instead.
    """
    return AccessProbe(cache, **kwargs)


def probe_cache_input(system, level: str = "l2c", **kwargs) -> AccessProbe:
    """Wrap a :class:`repro.core.system.System` level with an input probe.

    ``level`` is one of ``l2c``, ``llc``, ``dram``.  All upstream pointers
    to that level are rewired through the probe, so the captured stream is
    exactly the demand+walk traffic the level's replacement policy sees.
    """
    if level == "l2c":
        probe = AccessProbe(system.l2c, **kwargs)
        system.l1i.next_level = probe
        system.l1d.next_level = probe
        system.walker.memory_level = probe
        return probe
    if level == "llc":
        probe = AccessProbe(system.llc, **kwargs)
        system.l2c.next_level = probe
        return probe
    if level == "dram":
        probe = AccessProbe(system.dram, **kwargs)
        system.llc.next_level = probe
        return probe
    raise ValueError(f"unknown level {level!r}; choose l2c, llc or dram")
