"""Belady's MIN: the offline-optimal replacement bound.

Given a full access stream and a capacity, MIN evicts the block whose next
use lies furthest in the future; no online policy can miss less.  Useful
as the upper bound when evaluating replacement policies (Mockingjay is
explicitly built to mimic it).

Fully-associative implementation: two passes — one to index next-use
positions, one simulation with a lazy max-heap.  ``belady_set_assoc``
applies MIN independently per cache set, matching a set-associative
structure's constraint.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Sequence

_INFINITY = float("inf")


@dataclass(frozen=True)
class BeladyResult:
    accesses: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


def belady_min(keys: Sequence[int], capacity: int) -> BeladyResult:
    """Offline-optimal hit/miss counts for a fully-associative cache."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    keys = list(keys)
    next_use: Dict[int, deque] = defaultdict(deque)
    for position, key in enumerate(keys):
        next_use[key].append(position)

    resident: Dict[int, float] = {}
    # Lazy heap of (-next_position, key): stale entries skipped on pop.
    heap: List = []
    hits = 0
    for position, key in enumerate(keys):
        uses = next_use[key]
        uses.popleft()
        upcoming = uses[0] if uses else _INFINITY
        if key in resident:
            hits += 1
        elif len(resident) >= capacity:
            while True:
                neg_pos, victim = heapq.heappop(heap)
                if victim in resident and resident[victim] == -neg_pos:
                    del resident[victim]
                    break
        resident[key] = upcoming
        heapq.heappush(heap, (-upcoming, key))
    return BeladyResult(len(keys), hits, len(keys) - hits)


def belady_set_assoc(
    keys: Sequence[int], num_sets: int, associativity: int
) -> BeladyResult:
    """Offline-optimal for a set-associative cache (MIN per set)."""
    if num_sets <= 0 or num_sets & (num_sets - 1):
        raise ValueError("num_sets must be a positive power of two")
    per_set: Dict[int, List[int]] = defaultdict(list)
    for key in keys:
        per_set[key & (num_sets - 1)].append(key)
    accesses = hits = 0
    for set_keys in per_set.values():
        result = belady_min(set_keys, associativity)
        accesses += result.accesses
        hits += result.hits
    return BeladyResult(accesses, hits, accesses - hits)


def optimality_gap(policy_misses: int, keys: Sequence[int], capacity: int) -> float:
    """How far a policy's miss count is above the offline optimum (ratio)."""
    optimum = belady_min(keys, capacity).misses
    if optimum == 0:
        return 0.0 if policy_misses == 0 else _INFINITY
    return policy_misses / optimum
