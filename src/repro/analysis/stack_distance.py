"""Mattson stack-distance analysis.

One pass over an access stream yields LRU hit counts for *every* capacity
simultaneously (Mattson et al., 1970) — the tool behind "how big must the
ITLB/STLB be" questions like the paper's Figure 1 sweep, without running
one simulation per size.

The implementation keeps the LRU stack as an order-statistics treap keyed
by last-access time, giving O(log n) per access; a histogram of reuse
stack distances is accumulated and converted to hit-rate curves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class _Treap:
    """Order-statistics treap over last-access timestamps (larger = nearer MRU)."""

    __slots__ = ("key", "priority", "size", "left", "right")

    def __init__(self, key: int, priority: float) -> None:
        self.key = key
        self.priority = priority
        self.size = 1
        self.left: Optional["_Treap"] = None
        self.right: Optional["_Treap"] = None


def _size(node: Optional[_Treap]) -> int:
    return node.size if node is not None else 0


def _update(node: _Treap) -> _Treap:
    node.size = 1 + _size(node.left) + _size(node.right)
    return node


def _merge(left: Optional[_Treap], right: Optional[_Treap]) -> Optional[_Treap]:
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        left.right = _merge(left.right, right)
        return _update(left)
    right.left = _merge(left, right.left)
    return _update(right)


def _split(node: Optional[_Treap], key: int) -> Tuple[Optional[_Treap], Optional[_Treap]]:
    """Split into (keys < key, keys >= key)."""
    if node is None:
        return None, None
    if node.key < key:
        left, right = _split(node.right, key)
        node.right = left
        return _update(node), right
    left, right = _split(node.left, key)
    node.left = right
    return left, _update(node)


def _rank_above(node: Optional[_Treap], key: int) -> int:
    """Number of keys strictly greater than ``key`` (entries nearer MRU)."""
    rank = 0
    while node is not None:
        if node.key > key:
            rank += 1 + _size(node.right)
            node = node.left
        else:
            node = node.right
    return rank


@dataclass
class StackDistanceProfile:
    """Result of a stack-distance pass."""

    accesses: int = 0
    cold_misses: int = 0
    histogram: Dict[int, int] = field(default_factory=dict)

    def hits_at_capacity(self, capacity: int) -> int:
        """Accesses that would hit a fully-associative LRU of ``capacity``."""
        return sum(n for d, n in self.histogram.items() if d < capacity)

    def hit_rate(self, capacity: int) -> float:
        if not self.accesses:
            return 0.0
        return self.hits_at_capacity(capacity) / self.accesses

    def miss_curve(self, capacities: Iterable[int]) -> List[Tuple[int, float]]:
        """(capacity, miss-rate) points — the Figure 1-style size sweep."""
        return [(c, 1.0 - self.hit_rate(c)) for c in capacities]

    def mpki_curve(self, capacities: Iterable[int], instructions: int) -> List[Tuple[int, float]]:
        return [
            (c, 1000.0 * (self.accesses - self.hits_at_capacity(c) ) / instructions)
            for c in capacities
        ]


class StackDistanceAnalyzer:
    """Streaming Mattson analysis over an arbitrary key stream."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._root: Optional[_Treap] = None
        self._last_time: Dict[int, int] = {}
        self._clock = 0
        self.profile = StackDistanceProfile()

    def access(self, key: int) -> Optional[int]:
        """Record one access; returns its stack distance (None if cold)."""
        self._clock += 1
        profile = self.profile
        profile.accesses += 1
        previous = self._last_time.get(key)
        distance: Optional[int] = None
        if previous is None:
            profile.cold_misses += 1
        else:
            distance = _rank_above(self._root, previous)
            profile.histogram[distance] = profile.histogram.get(distance, 0) + 1
            # Remove the old timestamp node.
            left, rest = _split(self._root, previous)
            __, right = _split(rest, previous + 1)
            self._root = _merge(left, right)
        node = _Treap(self._clock, self._rng.random())
        self._root = _merge(self._root, node)
        self._last_time[key] = self._clock
        return distance

    def run(self, keys: Iterable[int]) -> StackDistanceProfile:
        for key in keys:
            self.access(key)
        return self.profile
