"""Workload characterization.

Summarises a workload prefix the way Section 3 of the paper characterises
its traces: instruction/data page footprints, access mix, and page-level
reuse — the inputs to Findings 1–3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable

from ..common.types import CACHE_LINE_BYTES, PAGE_BYTES, TraceRecord
from ..workloads.base import SyntheticWorkload
from .stack_distance import StackDistanceAnalyzer, StackDistanceProfile


@dataclass
class WorkloadCharacter:
    """Footprint and mix statistics for a workload prefix."""

    name: str
    records: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    code_pages: int = 0
    data_pages: int = 0
    code_bytes: int = 0
    instruction_page_profile: StackDistanceProfile = field(
        default_factory=StackDistanceProfile
    )
    data_page_profile: StackDistanceProfile = field(default_factory=StackDistanceProfile)

    @property
    def loads_per_kilo_instruction(self) -> float:
        return 1000.0 * self.loads / self.instructions if self.instructions else 0.0

    @property
    def stores_per_kilo_instruction(self) -> float:
        return 1000.0 * self.stores / self.instructions if self.instructions else 0.0

    def itlb_mpki_estimate(self, entries: int) -> float:
        """Instruction-TLB MPKI a fully-associative LRU of ``entries`` would see."""
        profile = self.instruction_page_profile
        misses = profile.accesses - profile.hits_at_capacity(entries)
        return 1000.0 * misses / self.instructions if self.instructions else 0.0

    def dtlb_mpki_estimate(self, entries: int) -> float:
        profile = self.data_page_profile
        misses = profile.accesses - profile.hits_at_capacity(entries)
        return 1000.0 * misses / self.instructions if self.instructions else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "records": float(self.records),
            "instructions": float(self.instructions),
            "code_pages": float(self.code_pages),
            "code_kb": self.code_bytes / 1024.0,
            "data_pages": float(self.data_pages),
            "loads_pki": self.loads_per_kilo_instruction,
            "stores_pki": self.stores_per_kilo_instruction,
        }


def characterize(
    workload: SyntheticWorkload, records: int = 50_000
) -> WorkloadCharacter:
    """Analyse the first ``records`` fetch groups of ``workload``."""
    return characterize_records(
        itertools.islice(workload.record_stream(), records), name=workload.name
    )


def characterize_records(
    records: Iterable[TraceRecord], name: str = "trace"
) -> WorkloadCharacter:
    """Analyse an explicit record stream (e.g. a replayed trace file)."""
    character = WorkloadCharacter(name)
    code_pages = set()
    code_lines = set()
    data_pages = set()
    instr_analyzer = StackDistanceAnalyzer()
    data_analyzer = StackDistanceAnalyzer()

    for record in records:
        character.records += 1
        character.instructions += record.num_instrs
        page = record.pc // PAGE_BYTES
        code_pages.add(page)
        code_lines.add(record.pc // CACHE_LINE_BYTES)
        instr_analyzer.access(page)
        for addr in record.loads:
            character.loads += 1
            data_pages.add(addr // PAGE_BYTES)
            data_analyzer.access(addr // PAGE_BYTES)
        for addr in record.stores:
            character.stores += 1
            data_pages.add(addr // PAGE_BYTES)
            data_analyzer.access(addr // PAGE_BYTES)

    character.code_pages = len(code_pages)
    character.code_bytes = len(code_lines) * CACHE_LINE_BYTES
    character.data_pages = len(data_pages)
    character.instruction_page_profile = instr_analyzer.profile
    character.data_page_profile = data_analyzer.profile
    return character
