"""Offline analysis tools: stack distance, Belady's MIN, workload characterization."""

from .belady import BeladyResult, belady_min, belady_set_assoc, optimality_gap
from .characterize import WorkloadCharacter, characterize, characterize_records
from .probe import AccessProbe, probe_cache_input
from .stack_distance import StackDistanceAnalyzer, StackDistanceProfile

__all__ = [
    "AccessProbe",
    "BeladyResult",
    "StackDistanceAnalyzer",
    "StackDistanceProfile",
    "WorkloadCharacter",
    "belady_min",
    "belady_set_assoc",
    "characterize",
    "characterize_records",
    "optimality_gap",
    "probe_cache_input",
]
