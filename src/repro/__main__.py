"""``python -m repro`` — the quick policy-comparison CLI (see repro.cli)."""

import sys

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
