"""Deterministic fault injection for the experiment-execution stack.

The resilience machinery in :mod:`repro.experiments.parallel` — per-cell
retries, wall-clock timeouts, ``BrokenProcessPool`` recovery, checksummed
cache entries with quarantine — is only trustworthy if every recovery path
is exercised by *real* injected faults, not mocks.  This package provides
that harness:

* **Named injection sites** (:data:`SITES`): ``worker.crash`` (the worker
  process dies via ``os._exit``, surfacing as ``BrokenProcessPool``),
  ``worker.hang`` (the cell sleeps past its wall-clock budget),
  ``cache.corrupt-write`` (a stored result's payload is bit-flipped after
  its checksum was computed) and ``cache.torn-write`` (the stored entry is
  truncated mid-payload, as if the writer died between ``write`` and
  ``fsync``).
* **Deterministic arming**: whether a site fires for a given key is a pure
  hash of ``(seed, site, key)`` — independent of process, thread, worker
  scheduling and wall clock — so a chaos run is exactly reproducible and a
  test can *predict* which cells will be hit (:meth:`FaultPlan.would_fire`).
* **Two arming surfaces**: the ``REPRO_FAULTS`` environment variable
  (grammar ``site[:prob[:seed[:max[:match]]]]``, comma-separated; see
  :func:`parse_spec`) picked up lazily by every process including pool
  workers, or a programmatic :class:`FaultPlan` installed with
  :func:`install_plan` / shipped to workers via the pool initializer.

Worker-site faults (``worker.*``) are consulted only on a cell's *first*
attempt — a retried or requeued cell runs clean — so every chaos run
converges to the fault-free result, which is what the CI chaos-smoke job
asserts.  See ``docs/robustness.md`` for the full semantics.
"""

from .inject import (
    CRASH_EXIT_CODE,
    InjectedFault,
    InjectedWorkerCrash,
    hang_seconds,
    maybe_crash,
    maybe_hang,
    should_fire,
)
from .plan import (
    CACHE_CORRUPT_WRITE,
    CACHE_SITES,
    CACHE_TORN_WRITE,
    ENV_VAR,
    SITES,
    WORKER_CRASH,
    WORKER_HANG,
    WORKER_SITES,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    active_plan,
    install_plan,
    parse_spec,
    plan_scope,
)

__all__ = [
    "CACHE_CORRUPT_WRITE",
    "CACHE_SITES",
    "CACHE_TORN_WRITE",
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "InjectedFault",
    "InjectedWorkerCrash",
    "SITES",
    "WORKER_CRASH",
    "WORKER_HANG",
    "WORKER_SITES",
    "active_plan",
    "hang_seconds",
    "install_plan",
    "maybe_crash",
    "maybe_hang",
    "parse_spec",
    "plan_scope",
    "should_fire",
]
