"""Injection points: what happens when an armed site fires.

``worker.*`` sites act here (the process dies, or the cell sleeps); the
``cache.*`` sites only *decide* here — the byte-level corruption lives in
``ResultCache.store``, which owns the file format.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time

from .plan import WORKER_CRASH, WORKER_HANG, active_plan

#: Exit status of a worker killed by ``worker.crash`` (visible in pool
#: diagnostics; any non-zero hard exit breaks a ``ProcessPoolExecutor``).
CRASH_EXIT_CODE = 13

#: How long ``worker.hang`` sleeps (seconds); override with
#: ``REPRO_HANG_SECONDS``.  A hang is meant to exceed the runner's per-cell
#: ``timeout`` so the timeout/retry path is exercised — pair the two.
_DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """An armed fault site fired (raised form, for in-process sites)."""


class InjectedWorkerCrash(InjectedFault):
    """``worker.crash`` fired in a process with no parent to kill."""


def hang_seconds() -> float:
    value = os.environ.get("REPRO_HANG_SECONDS", "").strip()
    try:
        return float(value) if value else _DEFAULT_HANG_SECONDS
    except ValueError:
        return _DEFAULT_HANG_SECONDS


def should_fire(site: str, key: str) -> bool:
    """Consult the active plan at an injection point (counts the fire)."""
    plan = active_plan()
    return plan is not None and plan.should_fire(site, key)


def maybe_crash(key: str) -> None:
    """``worker.crash``: die the way the OOM killer would.

    In a pool worker the process hard-exits, so the parent observes a
    ``BrokenProcessPool`` — the real failure mode, not a stand-in
    exception.  In a process with no parent (serial mode) killing the
    process would take the whole run down, so the site degrades to raising
    :class:`InjectedWorkerCrash`, which exercises the retry path instead.
    """
    if not should_fire(WORKER_CRASH, key):
        return
    if multiprocessing.parent_process() is not None:
        sys.stderr.flush()
        os._exit(CRASH_EXIT_CODE)
    raise InjectedWorkerCrash(f"injected worker crash at cell {key!r}")


def maybe_hang(key: str) -> None:
    """``worker.hang``: stall the cell past its wall-clock budget.

    The sleep is interruptible by the runner's per-cell SIGALRM deadline,
    which is exactly the recovery path this site exists to exercise.
    """
    if not should_fire(WORKER_HANG, key):
        return
    time.sleep(hang_seconds())
