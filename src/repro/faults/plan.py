"""Fault plans: which injection sites are armed, and when they fire.

A :class:`FaultSpec` arms one site; a :class:`FaultPlan` is a set of specs
(at most one per site) plus per-process fire accounting.  The firing
decision for a ``(site, key)`` pair is a pure function — a sha256 draw over
``(seed, site, key)`` compared against the armed probability — so it is
identical in every process that holds the same plan, which is what lets
the runner *attribute* injected faults to cells without any cross-process
channel (:meth:`FaultPlan.would_fire`).

The environment grammar (``REPRO_FAULTS``)::

    site[:prob[:seed[:max[:match]]]] [, site...]

* ``site`` — one of :data:`SITES`;
* ``prob`` — firing probability in [0, 1] (default 1);
* ``seed`` — integer salt for the hash draw (default 0);
* ``max`` — per-process cap on fires, empty for unlimited (default);
* ``match`` — only keys containing this substring are eligible (default:
  every key).  Cell keys are the human-readable ``"label x workload"``
  cell names; cache keys are the sha256 job keys.

Examples::

    REPRO_FAULTS="worker.crash:0.4:7"
    REPRO_FAULTS="cache.torn-write:1:0:1"           # first store only
    REPRO_FAULTS="worker.hang:1:0::lru x w3"        # one specific cell
    REPRO_FAULTS="worker.crash:0.2:7,worker.hang:0.2:9"
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

WORKER_CRASH = "worker.crash"
WORKER_HANG = "worker.hang"
CACHE_CORRUPT_WRITE = "cache.corrupt-write"
CACHE_TORN_WRITE = "cache.torn-write"

#: Every named injection site.
SITES: Tuple[str, ...] = (
    WORKER_CRASH,
    WORKER_HANG,
    CACHE_CORRUPT_WRITE,
    CACHE_TORN_WRITE,
)
#: Sites consulted inside ``_execute`` (first attempt of a cell only).
WORKER_SITES: Tuple[str, ...] = (WORKER_CRASH, WORKER_HANG)
#: Sites consulted inside ``ResultCache.store``.
CACHE_SITES: Tuple[str, ...] = (CACHE_CORRUPT_WRITE, CACHE_TORN_WRITE)

ENV_VAR = "REPRO_FAULTS"


class FaultSpecError(ValueError):
    """``REPRO_FAULTS`` (or a programmatic spec string) could not be parsed."""


def _draw(seed: int, site: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for a ``(seed, site, key)``."""
    digest = hashlib.sha256(f"{seed}|{site}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultSpec:
    """One armed injection site."""

    site: str
    probability: float = 1.0
    seed: int = 0
    max_fires: Optional[int] = None
    match: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {self.site!r}; sites: {', '.join(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1], got {self.probability!r}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultSpecError(f"max fires must be >= 1, got {self.max_fires!r}")
        if ":" in self.match or "," in self.match:
            raise FaultSpecError(
                f"match filter may not contain ':' or ',': {self.match!r}"
            )

    def would_fire(self, key: str) -> bool:
        """Pure firing decision for ``key`` — ignores the per-process cap."""
        if self.match and self.match not in key:
            return False
        if self.probability <= 0.0:
            return False
        if self.probability >= 1.0:
            return True
        return _draw(self.seed, self.site, key) < self.probability

    def spec_string(self) -> str:
        """Round-trippable ``site:prob:seed:max:match`` form."""
        max_part = "" if self.max_fires is None else str(self.max_fires)
        text = f"{self.site}:{self.probability:g}:{self.seed}:{max_part}:{self.match}"
        while text.endswith(":"):
            text = text[:-1]
        return text


def parse_spec(entry: str) -> FaultSpec:
    """Parse one ``site[:prob[:seed[:max[:match]]]]`` entry."""
    fields = [f.strip() for f in entry.strip().split(":")]
    if len(fields) > 5:
        raise FaultSpecError(
            f"fault spec has too many fields (max 5): {entry!r}; "
            "grammar: site[:prob[:seed[:max[:match]]]]"
        )
    fields += [""] * (5 - len(fields))
    site, prob_text, seed_text, max_text, match = fields
    try:
        probability = float(prob_text) if prob_text else 1.0
    except ValueError:
        raise FaultSpecError(
            f"fault probability must be a float, got {prob_text!r} in {entry!r}"
        ) from None
    try:
        seed = int(seed_text) if seed_text else 0
    except ValueError:
        raise FaultSpecError(
            f"fault seed must be an integer, got {seed_text!r} in {entry!r}"
        ) from None
    try:
        max_fires = int(max_text) if max_text else None
    except ValueError:
        raise FaultSpecError(
            f"fault max-fires must be an integer or empty, got {max_text!r} in {entry!r}"
        ) from None
    return FaultSpec(site, probability, seed, max_fires, match)


class FaultPlan:
    """A set of armed sites plus per-process fire accounting.

    The hash draw (:meth:`would_fire`) is pure and process-independent;
    only the ``max_fires`` cap is per-process state (:attr:`fired`).
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self.specs:
                raise FaultSpecError(f"fault site {spec.site!r} armed twice")
            self.specs[spec.site] = spec
        self.fired: Dict[str, int] = {site: 0 for site in self.specs}

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` grammar (may be empty)."""
        entries = [e for e in (text or "").split(",") if e.strip()]
        return cls(parse_spec(e) for e in entries)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def armed(self, site: str) -> bool:
        return site in self.specs

    def would_fire(self, site: str, key: str) -> bool:
        """Pure, cap-free firing decision — safe for attribution queries."""
        spec = self.specs.get(site)
        return spec is not None and spec.would_fire(key)

    def should_fire(self, site: str, key: str) -> bool:
        """Firing decision at the injection point; counts against the cap."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        if spec.max_fires is not None and self.fired[site] >= spec.max_fires:
            return False
        if not spec.would_fire(key):
            return False
        self.fired[site] += 1
        return True

    def spec_string(self) -> str:
        """Round-trippable ``REPRO_FAULTS`` form (for pool initializers)."""
        return ",".join(spec.spec_string() for spec in self.specs.values())


# --------------------------------------------------------------------- #
# Process-wide active plan
# --------------------------------------------------------------------- #

_installed: Optional[FaultPlan] = None
#: Cache of the plan parsed from the environment, keyed by the env value so
#: tests that monkeypatch ``REPRO_FAULTS`` see the change immediately.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan governing this process, or ``None`` when nothing is armed.

    A programmatically installed plan (:func:`install_plan`) wins;
    otherwise the plan is parsed lazily from ``REPRO_FAULTS`` — which pool
    workers inherit, so env-armed faults fire in workers with no extra
    plumbing.
    """
    global _env_cache
    if _installed is not None:
        return _installed
    text = os.environ.get(ENV_VAR, "").strip() or None
    if _env_cache[0] != text:
        _env_cache = (text, FaultPlan.parse(text) if text else None)
    return _env_cache[1]


def install_plan(
    plan: Union[FaultPlan, str, None],
) -> Optional[FaultPlan]:
    """Install (or, with ``None``, clear) the process-wide plan.

    Accepts a :class:`FaultPlan` or a spec string — the latter makes this
    function directly usable as a ``ProcessPoolExecutor`` initializer.
    Returns the previously installed plan so callers can restore it.
    """
    global _installed
    previous = _installed
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan) or None
    _installed = plan
    return previous


@contextmanager
def plan_scope(plan: Union[FaultPlan, str, None]) -> Iterator[None]:
    """Temporarily install ``plan`` (no-op when ``plan`` is ``None``)."""
    if plan is None:
        yield
        return
    previous = install_plan(plan)
    try:
        yield
    finally:
        install_plan(previous)
