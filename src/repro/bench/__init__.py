"""Hot-path throughput benchmark harness.

Measures simulator throughput — trace records, committed instructions and
simulated cycles per wall-clock second — for each Table 2 technique on the
Figure 8 single-thread workload set.  The measurement loop is *record
bounded* (not instruction bounded) so every run executes exactly the same
deterministic record sequence regardless of how fast it goes, which makes
the records/sec figures comparable across code versions.

Results are written as JSON (``BENCH_hotpath.json`` by default) so the PR
that introduced this harness — and every PR after it — can regress against
a committed baseline:

    PYTHONPATH=src python -m repro.bench --output BENCH_hotpath.json
    PYTHONPATH=src python -m repro.bench --baseline benchmarks/hotpath_baseline.json

The ``--baseline`` check compares the aggregate records/sec geomean and
exits non-zero if throughput dropped below ``--min-ratio`` (default 0.7,
i.e. a 30 % regression budget for CI runner noise).

``--engines`` adds the execution engine (:mod:`repro.kernel`) as a matrix
dimension: each (technique, workload) cell is timed once per engine over
the identical record window, the report carries per-engine geomeans
(schema 2), and ``--min-speedup`` gates the batched/spec throughput ratio
so the batched kernel cannot silently rot back to scalar speed.  The
top-level ``aggregate`` block always reflects the *first* engine listed
(``spec`` in the committed baseline), keeping ``--baseline`` comparisons
meaningful across schema versions.

See ``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..common.params import SystemConfig
from ..core.cpu import Core
from ..core.system import System
from ..experiments.runner import POLICY_MATRIX, config_for
from ..kernel import DEFAULT_ENGINE, ENGINES, BatchedEngine
from ..workloads.base import SyntheticWorkload
from ..workloads.server import server_suite

#: Default benchmark windows, in trace records (a record averages ~3
#: instructions on the server workloads).
DEFAULT_WARMUP_RECORDS = 4_000
DEFAULT_MEASURE_RECORDS = 20_000

#: Techniques benchmarked by default: the paper's headline configurations,
#: covering every hot replacement path (plain LRU stacks, iTP depth
#: placement, xPTP victim scans, RRIP counters).
DEFAULT_TECHNIQUES = ("lru", "itp", "itp+xptp", "tdrrip")


def bench_cell(
    technique: str,
    workload: SyntheticWorkload,
    warmup_records: int = DEFAULT_WARMUP_RECORDS,
    measure_records: int = DEFAULT_MEASURE_RECORDS,
    base_config: Optional[SystemConfig] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, float]:
    """Time one (technique, workload, engine) cell; returns its metrics.

    Both engines execute the identical record window and produce identical
    statistics (the differential suite enforces this); only wall time and —
    for the batched engine — the fast-path coverage differ.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    config = config_for(technique, base_config)
    system = System(config, workload.size_policy)
    core = Core(system, thread_id=0)
    stream = workload.record_stream()

    coverage = None
    if engine == "batched":
        kernel = BatchedEngine(system, core, stream)
        kernel.run_records(warmup_records)
        system.reset_stats()
        kernel.reset_stats()
        start = time.perf_counter()
        cycles = kernel.run_records(measure_records)
        wall = time.perf_counter() - start
        coverage = kernel.fast_path_coverage
    else:
        execute = core.execute
        advance = stream.__next__
        for _ in range(warmup_records):
            execute(advance())
        system.reset_stats()
        cycles = 0.0
        start = time.perf_counter()
        for _ in range(measure_records):
            cycles += execute(advance())
        wall = time.perf_counter() - start
    wall = max(wall, 1e-9)
    stats = system.stats
    stats.cycles = cycles
    cell = {
        "technique": technique,
        "workload": workload.name,
        "engine": engine,
        "records": float(measure_records),
        "instructions": float(stats.instructions),
        "cycles": cycles,
        "wall_seconds": wall,
        "records_per_sec": measure_records / wall,
        "instructions_per_sec": stats.instructions / wall,
        "cycles_per_sec": cycles / wall,
        "ipc": stats.ipc,
    }
    if coverage is not None:
        cell["fast_path_coverage"] = coverage
    return cell


def _geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _engine_geomeans(cells: Sequence[Dict[str, float]]) -> Dict[str, float]:
    return {
        "records_per_sec_geomean": _geomean([c["records_per_sec"] for c in cells]),
        "instructions_per_sec_geomean": _geomean(
            [c["instructions_per_sec"] for c in cells]
        ),
        "cycles_per_sec_geomean": _geomean([c["cycles_per_sec"] for c in cells]),
    }


def run_bench(
    techniques: Optional[Sequence[str]] = None,
    workload_count: int = 2,
    warmup_records: int = DEFAULT_WARMUP_RECORDS,
    measure_records: int = DEFAULT_MEASURE_RECORDS,
    repeats: int = 1,
    verbose: bool = True,
    engines: Optional[Sequence[str]] = None,
) -> Dict:
    """Benchmark every (technique, workload, engine) cell and aggregate.

    With ``repeats > 1`` each cell is timed that many times and the fastest
    repeat is kept (standard practice: the minimum is the least noisy
    estimator of the true cost).

    ``engines`` defaults to ``("spec",)``.  The top-level ``aggregate``
    block reflects the first engine listed (so spec-only baselines stay
    comparable); ``aggregate["per_engine"]`` carries one geomean block per
    engine for speedup gating via :func:`compare_engines`.
    """
    techniques = list(techniques or DEFAULT_TECHNIQUES)
    unknown = [t for t in techniques if t not in POLICY_MATRIX]
    if unknown:
        raise ValueError(f"unknown technique(s): {', '.join(unknown)}")
    engines = list(engines or (DEFAULT_ENGINE,))
    bad = [e for e in engines if e not in ENGINES]
    if bad:
        raise ValueError(f"unknown engine(s): {', '.join(bad)}")
    workloads = server_suite(workload_count)

    cells: List[Dict[str, float]] = []
    for engine in engines:
        for technique in techniques:
            for workload in workloads:
                best: Optional[Dict[str, float]] = None
                for _ in range(max(1, repeats)):
                    cell = bench_cell(
                        technique, workload, warmup_records, measure_records,
                        engine=engine,
                    )
                    if best is None or cell["wall_seconds"] < best["wall_seconds"]:
                        best = cell
                cells.append(best)
                if verbose:
                    cov = best.get("fast_path_coverage")
                    cov_txt = f"  cov={cov:.1%}" if cov is not None else ""
                    print(
                        f"  {engine:>7s} {technique:>12s} / {best['workload']:<12s} "
                        f"{best['records_per_sec']:>10.0f} rec/s  "
                        f"{best['instructions_per_sec']:>10.0f} instr/s  "
                        f"{best['cycles_per_sec']:>12.0f} cyc/s{cov_txt}",
                        file=sys.stderr,
                    )

    per_engine = {
        engine: _engine_geomeans([c for c in cells if c["engine"] == engine])
        for engine in engines
    }
    aggregate = dict(per_engine[engines[0]])
    aggregate["per_engine"] = per_engine
    return {
        "schema": 2,
        "kind": "repro.bench.hotpath",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "params": {
            "techniques": techniques,
            "engines": engines,
            "workload_count": workload_count,
            "warmup_records": warmup_records,
            "measure_records": measure_records,
            "repeats": repeats,
        },
        "cells": cells,
        "aggregate": aggregate,
    }


def compare_to_baseline(current: Dict, baseline: Dict, min_ratio: float) -> Dict:
    """Compare two bench reports on the aggregate records/sec geomean.

    Returns a summary dict with ``ratio`` (current / baseline) and ``ok``
    (True iff the ratio is at least ``min_ratio``).
    """
    cur = current["aggregate"]["records_per_sec_geomean"]
    base = baseline["aggregate"]["records_per_sec_geomean"]
    ratio = cur / base if base > 0 else float("inf")
    return {
        "current_records_per_sec": cur,
        "baseline_records_per_sec": base,
        "ratio": ratio,
        "min_ratio": min_ratio,
        "ok": ratio >= min_ratio,
    }


def compare_engines(report: Dict, min_speedup: float) -> Dict:
    """Gate the batched/spec throughput ratio within one schema-2 report.

    Returns a summary dict with ``speedup`` (batched geomean / spec geomean
    on records/sec) and ``ok`` (True iff speedup >= ``min_speedup``).
    Raises :class:`ValueError` when the report lacks either engine.
    """
    per_engine = report.get("aggregate", {}).get("per_engine", {})
    missing = [e for e in ("spec", "batched") if e not in per_engine]
    if missing:
        raise ValueError(
            f"report lacks per-engine aggregates for: {', '.join(missing)}; "
            "run with engines=('spec', 'batched')"
        )
    spec = per_engine["spec"]["records_per_sec_geomean"]
    batched = per_engine["batched"]["records_per_sec_geomean"]
    speedup = batched / spec if spec > 0 else float("inf")
    return {
        "spec_records_per_sec": spec,
        "batched_records_per_sec": batched,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "ok": speedup >= min_speedup,
    }


def load_report(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
