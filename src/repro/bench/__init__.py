"""Hot-path throughput benchmark harness.

Measures simulator throughput — trace records, committed instructions and
simulated cycles per wall-clock second — for each Table 2 technique on the
Figure 8 single-thread workload set.  The measurement loop is *record
bounded* (not instruction bounded) so every run executes exactly the same
deterministic record sequence regardless of how fast it goes, which makes
the records/sec figures comparable across code versions.

Results are written as JSON (``BENCH_hotpath.json`` by default) so the PR
that introduced this harness — and every PR after it — can regress against
a committed baseline:

    PYTHONPATH=src python -m repro.bench --output BENCH_hotpath.json
    PYTHONPATH=src python -m repro.bench --baseline benchmarks/hotpath_baseline.json

The ``--baseline`` check compares the aggregate records/sec geomean and
exits non-zero if throughput dropped below ``--min-ratio`` (default 0.7,
i.e. a 30 % regression budget for CI runner noise).

See ``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..common.params import SystemConfig
from ..core.cpu import Core
from ..core.system import System
from ..experiments.runner import POLICY_MATRIX, config_for
from ..workloads.base import SyntheticWorkload
from ..workloads.server import server_suite

#: Default benchmark windows, in trace records (a record averages ~3
#: instructions on the server workloads).
DEFAULT_WARMUP_RECORDS = 4_000
DEFAULT_MEASURE_RECORDS = 20_000

#: Techniques benchmarked by default: the paper's headline configurations,
#: covering every hot replacement path (plain LRU stacks, iTP depth
#: placement, xPTP victim scans, RRIP counters).
DEFAULT_TECHNIQUES = ("lru", "itp", "itp+xptp", "tdrrip")


def bench_cell(
    technique: str,
    workload: SyntheticWorkload,
    warmup_records: int = DEFAULT_WARMUP_RECORDS,
    measure_records: int = DEFAULT_MEASURE_RECORDS,
    base_config: Optional[SystemConfig] = None,
) -> Dict[str, float]:
    """Time one (technique, workload) cell; returns its throughput metrics."""
    config = config_for(technique, base_config)
    system = System(config, workload.size_policy)
    core = Core(system, thread_id=0)
    stream = workload.record_stream()
    execute = core.execute
    advance = stream.__next__

    for _ in range(warmup_records):
        execute(advance())
    system.reset_stats()

    cycles = 0.0
    start = time.perf_counter()
    for _ in range(measure_records):
        cycles += execute(advance())
    wall = time.perf_counter() - start
    wall = max(wall, 1e-9)
    stats = system.stats
    stats.cycles = cycles
    return {
        "technique": technique,
        "workload": workload.name,
        "records": float(measure_records),
        "instructions": float(stats.instructions),
        "cycles": cycles,
        "wall_seconds": wall,
        "records_per_sec": measure_records / wall,
        "instructions_per_sec": stats.instructions / wall,
        "cycles_per_sec": cycles / wall,
        "ipc": stats.ipc,
    }


def _geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_bench(
    techniques: Optional[Sequence[str]] = None,
    workload_count: int = 2,
    warmup_records: int = DEFAULT_WARMUP_RECORDS,
    measure_records: int = DEFAULT_MEASURE_RECORDS,
    repeats: int = 1,
    verbose: bool = True,
) -> Dict:
    """Benchmark every (technique, workload) cell and aggregate the result.

    With ``repeats > 1`` each cell is timed that many times and the fastest
    repeat is kept (standard practice: the minimum is the least noisy
    estimator of the true cost).
    """
    techniques = list(techniques or DEFAULT_TECHNIQUES)
    unknown = [t for t in techniques if t not in POLICY_MATRIX]
    if unknown:
        raise ValueError(f"unknown technique(s): {', '.join(unknown)}")
    workloads = server_suite(workload_count)

    cells: List[Dict[str, float]] = []
    for technique in techniques:
        for workload in workloads:
            best: Optional[Dict[str, float]] = None
            for _ in range(max(1, repeats)):
                cell = bench_cell(
                    technique, workload, warmup_records, measure_records
                )
                if best is None or cell["wall_seconds"] < best["wall_seconds"]:
                    best = cell
            cells.append(best)
            if verbose:
                print(
                    f"  {technique:>12s} / {best['workload']:<12s} "
                    f"{best['records_per_sec']:>10.0f} rec/s  "
                    f"{best['instructions_per_sec']:>10.0f} instr/s  "
                    f"{best['cycles_per_sec']:>12.0f} cyc/s",
                    file=sys.stderr,
                )

    aggregate = {
        "records_per_sec_geomean": _geomean([c["records_per_sec"] for c in cells]),
        "instructions_per_sec_geomean": _geomean(
            [c["instructions_per_sec"] for c in cells]
        ),
        "cycles_per_sec_geomean": _geomean([c["cycles_per_sec"] for c in cells]),
    }
    return {
        "schema": 1,
        "kind": "repro.bench.hotpath",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "params": {
            "techniques": techniques,
            "workload_count": workload_count,
            "warmup_records": warmup_records,
            "measure_records": measure_records,
            "repeats": repeats,
        },
        "cells": cells,
        "aggregate": aggregate,
    }


def compare_to_baseline(current: Dict, baseline: Dict, min_ratio: float) -> Dict:
    """Compare two bench reports on the aggregate records/sec geomean.

    Returns a summary dict with ``ratio`` (current / baseline) and ``ok``
    (True iff the ratio is at least ``min_ratio``).
    """
    cur = current["aggregate"]["records_per_sec_geomean"]
    base = baseline["aggregate"]["records_per_sec_geomean"]
    ratio = cur / base if base > 0 else float("inf")
    return {
        "current_records_per_sec": cur,
        "baseline_records_per_sec": base,
        "ratio": ratio,
        "min_ratio": min_ratio,
        "ok": ratio >= min_ratio,
    }


def load_report(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
