"""CLI for the hot-path throughput benchmark.

Examples::

    # Full default sweep, write BENCH_hotpath.json in the current directory
    PYTHONPATH=src python -m repro.bench

    # CI smoke: one cheap cell, regression-gated against the committed baseline
    PYTHONPATH=src python -m repro.bench \
        --techniques lru itp+xptp --workloads 1 --measure-records 6000 \
        --baseline benchmarks/hotpath_baseline.json --min-ratio 0.7

    # Engine matrix: time both engines, gate the batched kernel's speedup
    PYTHONPATH=src python -m repro.bench \
        --engines spec batched --min-speedup 1.05
"""

from __future__ import annotations

import argparse
import sys

from ..kernel import DEFAULT_ENGINE, ENGINES
from . import (
    DEFAULT_MEASURE_RECORDS,
    DEFAULT_TECHNIQUES,
    DEFAULT_WARMUP_RECORDS,
    compare_engines,
    compare_to_baseline,
    load_report,
    run_bench,
    save_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulator hot-path throughput per technique.",
    )
    parser.add_argument(
        "--techniques", nargs="+", default=list(DEFAULT_TECHNIQUES),
        help="Table 2 technique names to benchmark",
    )
    parser.add_argument(
        "--engines", nargs="+", default=[DEFAULT_ENGINE], choices=ENGINES,
        metavar="ENGINE",
        help=f"execution engines to time ({', '.join(ENGINES)}); the first "
             "one listed defines the top-level aggregate",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless batched records/sec geomean is at least X times "
             "the spec geomean (requires --engines spec batched)",
    )
    parser.add_argument(
        "--workloads", type=int, default=2, metavar="N",
        help="number of fig08 single-thread server workloads (default 2)",
    )
    parser.add_argument(
        "--warmup-records", type=int, default=DEFAULT_WARMUP_RECORDS,
        help="records executed before timing starts",
    )
    parser.add_argument(
        "--measure-records", type=int, default=DEFAULT_MEASURE_RECORDS,
        help="records executed inside the timed window",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="time each cell this many times, keep the fastest",
    )
    parser.add_argument(
        "--output", default="BENCH_hotpath.json",
        help="where to write the JSON report (default BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare against a previously saved report",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.7,
        help="fail if records/sec falls below this fraction of the baseline",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    args = parser.parse_args(argv)

    report = run_bench(
        techniques=args.techniques,
        workload_count=args.workloads,
        warmup_records=args.warmup_records,
        measure_records=args.measure_records,
        repeats=args.repeats,
        verbose=not args.quiet,
        engines=args.engines,
    )

    status = 0
    if args.min_speedup is not None:
        summary = compare_engines(report, args.min_speedup)
        report["engine_comparison"] = summary
        print(
            f"engine speedup: {summary['speedup']:.2f}x "
            f"(batched {summary['batched_records_per_sec']:.0f} rec/s vs "
            f"spec {summary['spec_records_per_sec']:.0f} rec/s, "
            f"floor {summary['min_speedup']:.2f}x)"
        )
        if not summary["ok"]:
            print(
                "FAIL: batched engine speedup below the allowed floor",
                file=sys.stderr,
            )
            status = 1
    if args.baseline:
        summary = compare_to_baseline(
            report, load_report(args.baseline), args.min_ratio
        )
        report["baseline_comparison"] = summary
        print(
            f"records/sec geomean: {summary['current_records_per_sec']:.0f} "
            f"(baseline {summary['baseline_records_per_sec']:.0f}, "
            f"ratio {summary['ratio']:.2f}x, floor {summary['min_ratio']:.2f}x)"
        )
        if not summary["ok"]:
            print("FAIL: throughput regressed below the allowed floor", file=sys.stderr)
            status = 1
    else:
        agg = report["aggregate"]
        print(
            f"records/sec geomean: {agg['records_per_sec_geomean']:.0f}  "
            f"instr/sec geomean: {agg['instructions_per_sec_geomean']:.0f}  "
            f"cycles/sec geomean: {agg['cycles_per_sec_geomean']:.0f}"
        )

    save_report(report, args.output)
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
