"""STLB prefetching (extension).

Section 7 of the paper notes that "iTP is orthogonal to STLB prefetching
and could be extended to consider STLB prefetching in its decision-making".
This module provides that extension: two classic translation prefetchers
that run on STLB misses and install prefetched translations through the
normal insertion path (so iTP's type-aware insertion applies to them too).

* **sequential**: on a miss for virtual page ``v``, prefetch ``v+1``
  (Kandiraju & Sivasubramaniam's next-page scheme).
* **distance**: a small table keyed by the distance between successive
  missing pages predicts the next distance (the core of distance
  prefetching [36] and of Morrigan-style instruction TLB prefetchers [80]).

Prefetch walks consume real memory-hierarchy bandwidth (their PTE reads go
through the caches) but are off the demand path, so they add no latency to
the triggering miss.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from ..common.types import AccessType


class STLBPrefetcher(abc.ABC):
    """Base class: observes STLB misses, returns virtual pages to prefetch."""

    name = "base"

    @abc.abstractmethod
    def on_stlb_miss(self, vpn: int, access_type: AccessType) -> tuple:
        """Virtual page numbers worth prefetching after a miss on ``vpn``."""


class SequentialSTLBPrefetcher(STLBPrefetcher):
    """Prefetch the next ``degree`` virtual pages after every STLB miss."""

    name = "sequential"

    def __init__(self, degree: int = 1) -> None:
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree

    def on_stlb_miss(self, vpn: int, access_type: AccessType) -> tuple:
        return tuple(vpn + step for step in range(1, self.degree + 1))


class DistanceSTLBPrefetcher(STLBPrefetcher):
    """Distance prefetching: predict the next miss distance from the last.

    Keeps separate last-miss state per translation type, since instruction
    and data miss streams interleave but have independent structure.
    """

    name = "distance"

    TABLE_ENTRIES = 1024

    def __init__(self) -> None:
        self._last_vpn: Dict[AccessType, Optional[int]] = {
            AccessType.INSTRUCTION: None,
            AccessType.DATA: None,
        }
        self._last_distance: Dict[AccessType, int] = {
            AccessType.INSTRUCTION: 0,
            AccessType.DATA: 0,
        }
        # distance -> predicted next distance
        self.table: Dict[int, int] = {}

    def on_stlb_miss(self, vpn: int, access_type: AccessType) -> tuple:
        last_vpn = self._last_vpn[access_type]
        self._last_vpn[access_type] = vpn
        if last_vpn is None:
            return ()
        distance = vpn - last_vpn
        previous = self._last_distance[access_type]
        self._last_distance[access_type] = distance
        if previous:
            key = previous % self.TABLE_ENTRIES
            self.table[key] = distance
        predicted = self.table.get(distance % self.TABLE_ENTRIES)
        if not predicted:
            return ()
        return (vpn + predicted,)


def make_stlb_prefetcher(name: Optional[str]) -> Optional[STLBPrefetcher]:
    """Instantiate an STLB prefetcher by name; ``None`` disables prefetching."""
    if name is None:
        return None
    if name == "sequential":
        return SequentialSTLBPrefetcher()
    if name == "distance":
        return DistanceSTLBPrefetcher()
    raise ValueError(f"unknown STLB prefetcher {name!r}; available: sequential, distance")
