"""TLB entry metadata.

Per Section 4.1.3, iTP adds two fields to every STLB entry: a 1-bit ``Type``
(instruction vs data translation) and a 3-bit ``Freq`` saturating counter.
Both live here; policies that do not use them simply ignore them.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..common.types import AccessType, PageSize


@dataclass(slots=True)
class TLBEntry:
    valid: bool = False
    key: int = 0                 # (vpn, page-size) lookup key, set by the TLB
    vpn: int = 0
    pfn: int = 0
    page_size: PageSize = PageSize.SIZE_4K
    access_type: AccessType = AccessType.DATA   # iTP's Type bit
    freq: int = 0                                # iTP's Freq counter
    # CHiRP scratch state
    signature: int = 0
    reused: bool = False

    @property
    def is_instruction(self) -> bool:
        return self.access_type is AccessType.INSTRUCTION

    def invalidate(self) -> None:
        self.valid = False
        self.freq = 0
        self.reused = False
