"""Instruction Translation Prioritization (iTP) — Section 4.1, Figure 5.

iTP keeps the LRU eviction rule (evict the entry at ``LRUpos``) but makes
insertion and promotion type-aware:

Insertion (end of page walk):
  * data translation  → insert at ``LRUpos``            (step 1)
  * instruction       → insert at ``MRUpos - N``        (step 2),
    with the 3-bit ``Freq`` counter reset to 0          (step 3);
  * every other entry shifts one position toward LRU    (step 4).

Promotion (STLB hit):
  * instruction, Freq not saturated → move to ``MRUpos - N``   (i)
  * instruction, Freq saturated     → move to ``MRUpos``       (ii)
  * increment Freq if not saturated                            (iii)
  * data → move to ``LRUpos + M``                              (iv)

``MRUpos`` is reserved for instruction translations whose Freq counter has
saturated, i.e. entries proven to be frequently re-referenced.
"""

from __future__ import annotations

from typing import Sequence

from ...common.params import ITPConfig
from ...common.types import AccessType
from ..entry import TLBEntry
from .lru import TLBLRUPolicy


class ITPPolicy(TLBLRUPolicy):
    name = "itp"

    def __init__(
        self, num_sets: int, associativity: int, config: ITPConfig = ITPConfig()
    ) -> None:
        super().__init__(num_sets, associativity)
        if not 0 <= config.insert_depth_n < associativity:
            raise ValueError("N must be in [0, associativity)")
        if not config.insert_depth_n < config.data_promote_m < associativity:
            raise ValueError("M must satisfy N < M < associativity")
        self.config = config

    def on_insert(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        stack = self.stacks[set_index]
        if access_type is AccessType.INSTRUCTION:
            entries[way].freq = 0
            stack.place_at_depth(way, self.config.insert_depth_n)
        else:
            # Highest eviction priority for fresh data translations.
            stack.place_above_lru(way, 0)

    def on_hit(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        stack = self.stacks[set_index]
        entry = entries[way]
        if access_type is AccessType.INSTRUCTION:
            if entry.freq >= self.config.freq_max:
                stack.place_at_depth(way, 0)
            else:
                stack.place_at_depth(way, self.config.insert_depth_n)
                entry.freq += 1
        else:
            stack.place_above_lru(way, self.config.data_promote_m)
