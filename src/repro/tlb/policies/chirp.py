"""CHiRP-simplified: Control-flow History Reuse Prediction [Mirbagher-Ajorpaz
et al., MICRO'20].

CHiRP predicts whether an STLB entry will be reused soon from a signature of
recent control flow.  This implementation keeps the published structure —

* a control-flow history register of recent instruction-page numbers,
  hashed with the missing VPN into a *signature*;
* a table of saturating confidence counters indexed by signature;
* training on observed outcomes: counters are incremented when an entry is
  reused before eviction and decremented when it dies unused;
* a type-oblivious insertion policy: predicted-reusable entries are
  inserted at MRU, others at a distant stack position

— while omitting the paper's multi-feature perceptron-style tables.  As in
the original, CHiRP does **not** distinguish data from instruction PTEs
(Section 2.3), which is why the paper finds it behaves like LRU on
big-code server workloads.
"""

from __future__ import annotations

from typing import Sequence

from ...common.types import AccessType
from ..entry import TLBEntry
from .lru import TLBLRUPolicy

TABLE_ENTRIES = 4096
CONF_MAX = 3
CONF_THRESHOLD = 2
HISTORY_LENGTH = 4
#: Predicted-dead entries are inserted this deep (distant but not LRU).
DISTANT_FRACTION = 0.75


class CHiRPPolicy(TLBLRUPolicy):
    name = "chirp"

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.table = [CONF_MAX // 2] * TABLE_ENTRIES
        self._history = [0] * HISTORY_LENGTH
        self._distant_depth = max(1, int(associativity * DISTANT_FRACTION))

    # ------------------------------------------------------------------ #

    def observe_fetch_page(self, instruction_vpn: int) -> None:
        """Feed the control-flow history (called by the MMU on fetches)."""
        if not self._history or self._history[-1] != instruction_vpn:
            self._history.pop(0)
            self._history.append(instruction_vpn)

    def signature(self, vpn: int) -> int:
        sig = vpn
        for i, page in enumerate(self._history):
            sig ^= page >> i ^ (page << (i + 1))
        return sig % TABLE_ENTRIES

    # ------------------------------------------------------------------ #

    def on_insert(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        entry = entries[way]
        sig = self.signature(entry.vpn)
        entry.signature = sig
        entry.reused = False
        if self.table[sig] >= CONF_THRESHOLD:
            self.stacks[set_index].place_at_depth(way, 0)
        else:
            self.stacks[set_index].place_at_depth(way, self._distant_depth)

    def on_hit(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        entry = entries[way]
        if not entry.reused:
            entry.reused = True
            if self.table[entry.signature] < CONF_MAX:
                self.table[entry.signature] += 1
        self.stacks[set_index].touch(way)

    def on_evict(self, set_index: int, way: int, entries: Sequence[TLBEntry]) -> None:
        entry = entries[way]
        if entry.valid and not entry.reused and self.table[entry.signature] > 0:
            self.table[entry.signature] -= 1
        super().on_evict(set_index, way, entries)
