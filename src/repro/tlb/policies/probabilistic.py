"""Probabilistic instruction-priority LRU — the motivation policy of Fig. 3.

A modified LRU whose *eviction* decision flips a biased coin: with
probability ``P`` the least-recently-used **data** translation is evicted,
otherwise the least-recently-used **instruction** translation.  If the set
holds only one type, the LRU entry of that type is evicted regardless of
the coin (exactly as Section 3.2 describes).  Insertion and promotion are
plain LRU.
"""

from __future__ import annotations

import random
from typing import Sequence

from ...common.types import AccessType
from ..entry import TLBEntry
from .lru import TLBLRUPolicy


class ProbabilisticLRUPolicy(TLBLRUPolicy):
    name = "problru"

    def __init__(
        self, num_sets: int, associativity: int, p_evict_data: float = 0.8, seed: int = 1234
    ) -> None:
        super().__init__(num_sets, associativity)
        if not 0.0 <= p_evict_data <= 1.0:
            raise ValueError("P must be a probability")
        self.p_evict_data = p_evict_data
        self._rng = random.Random(seed)

    def victim(self, set_index: int, entries: Sequence[TLBEntry]) -> int:
        stack = self.stacks[set_index]
        evict_data = self._rng.random() < self.p_evict_data
        wanted = AccessType.DATA if evict_data else AccessType.INSTRUCTION
        for way in stack.ways_from_lru():
            if entries[way].access_type == wanted:
                return way
        # Only the other type present: evict its LRU entry.
        return stack.lru_way
