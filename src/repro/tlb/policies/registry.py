"""Factory for STLB replacement policies by name.

Built on the shared :class:`repro.common.registry.Registry` base; each entry
is a factory ``(num_sets, associativity, **context) -> policy``.  The
context keywords (``itp_config``, ``p_evict_data``, ``seed``) are sourced
from :class:`SystemConfig` by the topology builder; factories take what
they need and ignore the rest.  Extensions register their own factories on
:data:`TLB_POLICIES` (see ``examples/custom_policy.py``).
"""

from __future__ import annotations

from typing import Callable, Optional

from ...common.params import ITPConfig
from ...common.registry import Registry
from .base import TLBReplacementPolicy
from .chirp import CHiRPPolicy
from .itp import ITPPolicy
from .lru import TLBLRUPolicy
from .probabilistic import ProbabilisticLRUPolicy

TLBPolicyFactory = Callable[..., TLBReplacementPolicy]

#: The process-wide TLB-policy registry.
TLB_POLICIES: Registry[TLBPolicyFactory] = Registry("TLB policy")


def _lru(num_sets: int, associativity: int, **_context: object) -> TLBLRUPolicy:
    return TLBLRUPolicy(num_sets, associativity)


def _itp(num_sets: int, associativity: int, **context: object) -> ITPPolicy:
    itp_config = context.get("itp_config") or ITPConfig()
    return ITPPolicy(num_sets, associativity, itp_config)


def _chirp(num_sets: int, associativity: int, **_context: object) -> CHiRPPolicy:
    return CHiRPPolicy(num_sets, associativity)


def _problru(
    num_sets: int, associativity: int, **context: object
) -> ProbabilisticLRUPolicy:
    return ProbabilisticLRUPolicy(
        num_sets,
        associativity,
        float(context.get("p_evict_data", 0.8)),
        int(context.get("seed", 1234)),
    )


TLB_POLICIES.register("lru", _lru)
TLB_POLICIES.register("itp", _itp)
TLB_POLICIES.register("chirp", _chirp)
TLB_POLICIES.register("problru", _problru)


def available_tlb_policies() -> tuple:
    return TLB_POLICIES.names()


def make_tlb_policy(
    name: str,
    num_sets: int,
    associativity: int,
    *,
    itp_config: Optional[ITPConfig] = None,
    p_evict_data: float = 0.8,
    seed: int = 1234,
) -> TLBReplacementPolicy:
    """Instantiate a TLB replacement policy by its registry name.

    ``problru`` accepts ``p_evict_data`` (the ``P`` of Figure 3);
    ``itp`` accepts an :class:`ITPConfig` (N, M, Freq width).
    """
    return TLB_POLICIES.get(name)(
        num_sets,
        associativity,
        itp_config=itp_config,
        p_evict_data=p_evict_data,
        seed=seed,
    )
