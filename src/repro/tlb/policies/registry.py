"""Factory for STLB replacement policies by name."""

from __future__ import annotations

from typing import Optional

from ...common.params import ITPConfig
from .base import TLBReplacementPolicy
from .chirp import CHiRPPolicy
from .itp import ITPPolicy
from .lru import TLBLRUPolicy
from .probabilistic import ProbabilisticLRUPolicy

_NAMES = ("lru", "itp", "chirp", "problru")


def available_tlb_policies() -> tuple:
    return _NAMES


def make_tlb_policy(
    name: str,
    num_sets: int,
    associativity: int,
    *,
    itp_config: Optional[ITPConfig] = None,
    p_evict_data: float = 0.8,
    seed: int = 1234,
) -> TLBReplacementPolicy:
    """Instantiate a TLB replacement policy by its registry name.

    ``problru`` accepts ``p_evict_data`` (the ``P`` of Figure 3);
    ``itp`` accepts an :class:`ITPConfig` (N, M, Freq width).
    """
    if name == "lru":
        return TLBLRUPolicy(num_sets, associativity)
    if name == "itp":
        return ITPPolicy(num_sets, associativity, itp_config or ITPConfig())
    if name == "chirp":
        return CHiRPPolicy(num_sets, associativity)
    if name == "problru":
        return ProbabilisticLRUPolicy(num_sets, associativity, p_evict_data, seed)
    raise ValueError(f"unknown TLB policy {name!r}; available: {', '.join(_NAMES)}")
