"""TLB replacement policy interface.

TLB policies differ from cache policies in that insertion and promotion
decisions may depend on the *translation type* (instruction vs data) — the
distinction iTP introduces and LRU/CHiRP ignore.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ...common.types import AccessType
from ..entry import TLBEntry


class TLBReplacementPolicy(abc.ABC):
    """Replacement decisions for one set-associative TLB."""

    name: str = "base"

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ValueError("num_sets and associativity must be positive")
        self.num_sets = num_sets
        self.associativity = associativity

    @abc.abstractmethod
    def victim(self, set_index: int, entries: Sequence[TLBEntry]) -> int:
        """Pick the way to evict from a full set."""

    @abc.abstractmethod
    def on_insert(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        """A translation of ``access_type`` was installed in ``way``."""

    @abc.abstractmethod
    def on_hit(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        """``way`` produced a hit for an access of ``access_type``."""

    def on_evict(self, set_index: int, way: int, entries: Sequence[TLBEntry]) -> None:
        """``way`` is being evicted.  Optional hook."""

    def on_miss(self, set_index: int, vaddr: int, access_type: AccessType) -> None:
        """A lookup missed (CHiRP trains its predictor here).  Optional hook."""
