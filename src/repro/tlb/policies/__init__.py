"""STLB replacement policies: LRU, probabilistic LRU, iTP, CHiRP."""

from .base import TLBReplacementPolicy
from .chirp import CHiRPPolicy
from .itp import ITPPolicy
from .lru import TLBLRUPolicy
from .probabilistic import ProbabilisticLRUPolicy
from .registry import available_tlb_policies, make_tlb_policy

__all__ = [
    "CHiRPPolicy",
    "ITPPolicy",
    "ProbabilisticLRUPolicy",
    "TLBLRUPolicy",
    "TLBReplacementPolicy",
    "available_tlb_policies",
    "make_tlb_policy",
]
