"""LRU TLB replacement — the vendor baseline (Section 2.3)."""

from __future__ import annotations

from typing import List, Sequence

from ...common.invariants import stack_factory
from ...common.recency import RecencyStack
from ...common.types import AccessType
from ..entry import TLBEntry
from .base import TLBReplacementPolicy


class TLBLRUPolicy(TLBReplacementPolicy):
    name = "lru"

    #: Stack implementation; the golden bit-identity test swaps in the
    #: naive list-based reference model here.
    stack_cls = RecencyStack

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        # stack_factory swaps in the differential checker under REPRO_CHECK=1.
        make_stack = stack_factory(self.stack_cls)
        self.stacks: List[RecencyStack] = [make_stack() for _ in range(num_sets)]

    def victim(self, set_index: int, entries: Sequence[TLBEntry]) -> int:
        return self.stacks[set_index].lru_way

    def on_insert(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        self.stacks[set_index].place_at_depth(way, 0)

    def on_hit(
        self, set_index: int, way: int, entries: Sequence[TLBEntry], access_type: AccessType
    ) -> None:
        self.stacks[set_index].touch(way)

    def on_evict(self, set_index: int, way: int, entries: Sequence[TLBEntry]) -> None:
        self.stacks[set_index].discard(way)
