"""MMU: the full translation hierarchy of Figure 7.

``translate`` walks ITLB/DTLB → STLB → page-table walker, charging the
latencies of Table 1.  First-level TLB hits are free (their 1-cycle latency
is pipelined into the base CPI); an STLB access charges the STLB latency; an
STLB miss additionally charges the full page walk.

The STLB MSHR Type bit of Figure 7 (step 2/4) is modelled with an
:class:`MSHRFile`: the miss allocates an entry annotated with the
translation type, and the insertion at walk completion reads the type back
from the MSHR — exactly the dataflow iTP requires.

Split-STLB designs (Section 6.6) instantiate two structures and route by
access type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..cache.mshr import make_mshr_file
from ..common.params import SystemConfig
from ..common.stats import SimStats
from ..common.types import AccessType, PAGE_BITS, PageSize, RequestType
from ..ptw.walker import PageTableWalker
from .policies.chirp import CHiRPPolicy
from .prefetch import make_stlb_prefetcher
from .tlb import TLB

if TYPE_CHECKING:  # pragma: no cover
    from ..topology.structures import MMUStructures


_INSTRUCTION = AccessType.INSTRUCTION
_SIZE_2M = PageSize.SIZE_2M

#: Translation-cycle counter names, precomputed so the warm accounting path
#: (runs on every first-level TLB miss) never builds an f-string.
_TRANSLATION_CYCLES_INSTR = "translation.instr_cycles"
_TRANSLATION_CYCLES_DATA = "translation.data_cycles"


@dataclass(slots=True)
class TranslationResult:
    """Outcome of one address translation.

    Slotted (not frozen) because one is allocated per memory reference —
    the single hottest allocation site in the simulator.
    """

    pfn: int
    latency: int          # cycles beyond a first-level TLB hit
    stlb_accessed: bool
    stlb_miss: bool
    page_size: PageSize


class MMU:
    """ITLB + DTLB + (unified or split) STLB + hardware walker."""

    def __init__(
        self,
        config: SystemConfig,
        walker: PageTableWalker,
        stats: SimStats,
        structures: Optional["MMUStructures"] = None,
    ) -> None:
        self.config = config
        self.walker = walker
        self.stats = stats

        if structures is None:
            # Compatibility path for direct construction (tests, downstream
            # code): derive the TLB set from the SystemConfig exactly as the
            # pre-topology wiring did.  Imported lazily — the topology
            # package imports repro.tlb, so a module-level import here would
            # close the cycle.
            from ..topology.structures import mmu_structures

            structures = mmu_structures(config, stats)

        self.itlb = structures.itlb
        self.dtlb = structures.dtlb
        self.split = structures.stlb_instr is not None
        if self.split:
            self.stlb_data = structures.stlb
            self.stlb_instr = structures.stlb_instr
        else:
            self.stlb = structures.stlb
        self.stlb_mshrs = make_mshr_file(config.stlb.mshr_entries)
        self.prefetcher = make_stlb_prefetcher(config.stlb_prefetcher)
        #: STLB misses since the adaptive controller last sampled (Section
        #: 4.3.1).  Adaptive-controller *state*, not a statistic: it is read
        #: and cleared by :meth:`take_stlb_miss_events`, never by the warmup
        #: reset, so it is exempt from the stats-reset rule.
        self.stlb_miss_events = 0  # repro: allow[RPR004]
        # Hot-path bindings: resolve the per-type structure routing and the
        # CHiRP isinstance check once instead of per translation.
        self._stlb_i = self._stlb_for(AccessType.INSTRUCTION)
        self._stlb_d = self._stlb_for(AccessType.DATA)
        policy = self._stlb_i.policy
        self._chirp = policy if isinstance(policy, CHiRPPolicy) else None
        self._stlb_latency = config.stlb.latency

    def reset_stats(self) -> None:
        """Clear MSHR event counters at the warmup/measurement boundary.

        ``stlb_miss_events`` is adaptive-controller *state* (the current
        window's sample), not a statistic, so it is left alone.
        """
        self.stlb_mshrs.reset_stats()

    # ------------------------------------------------------------------ #

    def _stlb_for(self, access_type: AccessType) -> TLB:
        if not self.split:
            return self.stlb
        return (
            self.stlb_instr if access_type is AccessType.INSTRUCTION else self.stlb_data
        )

    def translate(
        self, vaddr: int, access_type: AccessType, thread_id: int = 0
    ) -> TranslationResult:
        is_instr = access_type is _INSTRUCTION
        if is_instr:
            l1 = self.itlb
            stlb = self._stlb_i
            if self._chirp is not None:
                self._chirp.observe_fetch_page(vaddr >> PAGE_BITS)
        else:
            l1 = self.dtlb
            stlb = self._stlb_d

        entry = l1.lookup(vaddr, access_type)
        if entry is not None:
            pfn = entry.pfn
            if entry.page_size is _SIZE_2M:
                pfn += (vaddr >> PAGE_BITS) & 0x1FF
            # The sanctioned per-reference allocation (see TranslationResult).
            return TranslationResult(pfn, 0, False, False, entry.page_size)  # repro: allow[RPR001]

        latency = self._stlb_latency
        entry = stlb.lookup(vaddr, access_type)
        if entry is not None:
            l1.insert(vaddr, entry.pfn, entry.page_size, access_type)
            l1.record_miss(access_type, latency)
            self._account_translation(access_type, latency)
            pfn = entry.pfn
            if entry.page_size is _SIZE_2M:
                pfn += (vaddr >> PAGE_BITS) & 0x1FF
            return TranslationResult(pfn, latency, True, False, entry.page_size)  # repro: allow[RPR001]

        # STLB miss: allocate the typed MSHR entry (Figure 7, step 2) and walk.
        vpn = vaddr >> PAGE_BITS
        self.stlb_mshrs.allocate(vpn, RequestType.PTW, is_pte=True, translation_type=access_type)
        walk = self.walker.walk(vaddr, access_type, thread_id)
        latency += walk.latency
        mshr_entry = self.stlb_mshrs.release(vpn)
        insert_type = (
            mshr_entry.translation_type if mshr_entry is not None else access_type
        )

        # TLB entries for 2 MB pages store the base pfn of the whole page so a
        # later hit at any offset composes the right frame (walk.pfn reports
        # the covering 4 KB frame of this particular vaddr).
        stored_pfn = walk.pfn
        if walk.page_size is PageSize.SIZE_2M:
            stored_pfn -= (vaddr >> PAGE_BITS) & 0x1FF
        stlb.insert(vaddr, stored_pfn, walk.page_size, insert_type)
        stlb.record_miss(access_type, walk.latency)
        l1.insert(vaddr, stored_pfn, walk.page_size, access_type)
        l1.record_miss(access_type, latency)
        self.stlb_miss_events += 1
        self._account_translation(access_type, latency)
        if self.prefetcher is not None:
            self._stlb_prefetch(vpn, access_type, thread_id)
        return TranslationResult(walk.pfn, latency, True, True, walk.page_size)  # repro: allow[RPR001]

    def _stlb_prefetch(self, miss_vpn: int, access_type: AccessType, thread_id: int) -> None:
        """Section 7 extension: translation prefetching into the STLB.

        Prefetch walks go through the cache hierarchy (real bandwidth) but
        add no latency to the demand miss.  Prefetched entries are inserted
        through the STLB's normal insertion policy, so iTP treats them like
        any other translation of their type.
        """
        stlb = self._stlb_for(access_type)
        for vpn in self.prefetcher.on_stlb_miss(miss_vpn, access_type):
            if vpn < 0:
                continue
            vaddr = vpn << PAGE_BITS
            if stlb.probe(vaddr):
                continue
            walk = self.walker.walk(vaddr, access_type, thread_id, prefetch=True)
            stored_pfn = walk.pfn
            if walk.page_size is PageSize.SIZE_2M:
                stored_pfn -= vpn & 0x1FF
            stlb.insert(vaddr, stored_pfn, walk.page_size, access_type)
            self.stats.bump("stlb.prefetch_fills")

    @staticmethod
    def _entry_pfn(entry, vaddr: int) -> int:
        """Covering 4 KB frame for ``vaddr`` given a (possibly 2 MB) entry."""
        if entry.page_size is PageSize.SIZE_2M:
            return entry.pfn + ((vaddr >> PAGE_BITS) & 0x1FF)
        return entry.pfn

    def _account_translation(self, access_type: AccessType, latency: int) -> None:
        self.stats.bump(
            _TRANSLATION_CYCLES_INSTR
            if access_type is _INSTRUCTION
            else _TRANSLATION_CYCLES_DATA,
            latency,
        )

    def take_stlb_miss_events(self) -> int:
        """Read-and-reset the window miss counter for the adaptive switch."""
        events = self.stlb_miss_events
        self.stlb_miss_events = 0
        return events
