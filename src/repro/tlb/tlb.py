"""Set-associative TLB.

Entries for 4 KB and 2 MB pages coexist (Section 6.5): the lookup key
encodes the page size, and a lookup probes both sizes.  The replacement
policy is pluggable (LRU, probabilistic LRU, iTP, CHiRP).
"""

from __future__ import annotations

from typing import List, Optional

from ..common.params import TLBConfig
from ..common.stats import LevelStats
from ..common.types import AccessType, LARGE_PAGE_BITS, PAGE_BITS, PageSize
from .entry import TLBEntry
from .policies.base import TLBReplacementPolicy

_INSTRUCTION = AccessType.INSTRUCTION
_SIZE_4K = PageSize.SIZE_4K


def _key(vpn: int, page_size: PageSize) -> int:
    return (vpn << 1) | (1 if page_size is PageSize.SIZE_2M else 0)


class TLB:
    """One TLB level (ITLB, DTLB, STLB or one half of a split STLB)."""

    def __init__(
        self, config: TLBConfig, policy: TLBReplacementPolicy, stats: LevelStats
    ) -> None:
        if policy.num_sets != config.num_sets or policy.associativity != config.associativity:
            raise ValueError(
                f"{config.name}: policy geometry {policy.num_sets}x{policy.associativity} "
                f"does not match TLB {config.num_sets}x{config.associativity}"
            )
        self.config = config
        self.policy = policy
        self.stats = stats
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._set_mask = self.num_sets - 1
        self.sets: List[List[TLBEntry]] = [
            [TLBEntry() for _ in range(self.associativity)] for _ in range(self.num_sets)
        ]
        self._key_maps: List[dict] = [dict() for _ in range(self.num_sets)]
        # Hot-path bindings: the policy never changes after construction.
        self._on_hit = policy.on_hit
        self._on_miss = policy.on_miss
        self._on_insert = policy.on_insert
        self._victim = policy.victim
        self._policy_on_evict = policy.on_evict

    # ------------------------------------------------------------------ #

    def _find(self, vaddr: int, page_size: PageSize) -> Optional[tuple]:
        vpn = vaddr >> (PAGE_BITS if page_size is _SIZE_4K else LARGE_PAGE_BITS)
        key = _key(vpn, page_size)
        set_index = vpn & self._set_mask
        way = self._key_maps[set_index].get(key)
        if way is None:
            return None
        return set_index, way

    def lookup(self, vaddr: int, access_type: AccessType) -> Optional[TLBEntry]:
        """Look up ``vaddr``; on a hit the policy's promotion rule runs.

        The two page-size probes are unrolled with precomputed shifts —
        this is the hottest TLB operation (every reference translates).
        """
        set_mask = self._set_mask
        key_maps = self._key_maps
        # 4 KB probe: key = (vpn << 1) | 0.
        vpn = vaddr >> PAGE_BITS
        set_index = vpn & set_mask
        way = key_maps[set_index].get(vpn << 1)
        if way is None:
            # 2 MB probe: key = (vpn << 1) | 1.
            vpn2 = vaddr >> LARGE_PAGE_BITS
            set_index2 = vpn2 & set_mask
            way = key_maps[set_index2].get((vpn2 << 1) | 1)
            if way is None:
                self._on_miss(set_index, vaddr, access_type)
                # The caller records the miss with its resolved latency.
                return None
            set_index = set_index2
        entries = self.sets[set_index]
        entry = entries[way]
        self._on_hit(set_index, way, entries, access_type)
        stats = self.stats
        stats.accesses += 1
        stats.hits += 1
        stats.cat_accesses["i" if access_type is _INSTRUCTION else "d"] += 1
        return entry

    def record_miss(self, access_type: AccessType, miss_latency: int) -> None:
        stats = self.stats
        category = "i" if access_type is _INSTRUCTION else "d"
        stats.accesses += 1
        stats.misses += 1
        stats.miss_latency_sum += miss_latency
        stats.cat_accesses[category] += 1
        stats.cat_misses[category] += 1

    def insert(
        self,
        vaddr: int,
        pfn: int,
        page_size: PageSize,
        access_type: AccessType,
    ) -> TLBEntry:
        """Install a translation (end of page walk / refill from STLB)."""
        vpn = vaddr >> (PAGE_BITS if page_size is _SIZE_4K else LARGE_PAGE_BITS)
        key = _key(vpn, page_size)
        set_index = vpn & self._set_mask
        key_map = self._key_maps[set_index]
        entries = self.sets[set_index]

        way = key_map.get(key)
        if way is None:
            # A full key map means every way is valid: skip the scan.
            if len(key_map) < self.associativity:
                way = self._find_invalid_way(entries)
            if way is None:
                way = self._victim(set_index, entries)
                self._evict(set_index, way)
            key_map[key] = way
        entry = entries[way]
        entry.valid = True
        entry.key = key
        entry.vpn = vpn
        entry.pfn = pfn
        entry.page_size = page_size
        entry.access_type = access_type
        self._on_insert(set_index, way, entries, access_type)
        return entry

    def _find_invalid_way(self, entries: List[TLBEntry]) -> Optional[int]:
        for way, entry in enumerate(entries):
            if not entry.valid:
                return way
        return None

    def _evict(self, set_index: int, way: int) -> None:
        entries = self.sets[set_index]
        entry = entries[way]
        if not entry.valid:
            return
        self.stats.evictions += 1
        self._policy_on_evict(set_index, way, entries)
        del self._key_maps[set_index][entry.key]
        entry.invalidate()

    def invalidate(self, vaddr: int) -> bool:
        """Invalidate the translation covering ``vaddr`` (shootdown model).

        Probes both page sizes; returns True iff an entry was removed.  Goes
        through the same eviction path as replacement (the policy's
        ``on_evict`` must drop its recency/metadata state either way), so
        ``stats.evictions`` counts replacement and invalidation removals.
        """
        for size in (PageSize.SIZE_4K, PageSize.SIZE_2M):
            found = self._find(vaddr, size)
            if found is not None:
                self._evict(*found)
                return True
        return False

    # ------------------------------------------------------------------ #

    def probe(self, vaddr: int) -> bool:
        """Presence check without touching replacement state."""
        return any(
            self._find(vaddr, size) is not None
            for size in (PageSize.SIZE_4K, PageSize.SIZE_2M)
        )

    def occupancy(self) -> int:
        return sum(len(m) for m in self._key_maps)

    def instruction_entries(self) -> int:
        return sum(
            1
            for s in self.sets
            for e in s
            if e.valid and e.access_type is AccessType.INSTRUCTION
        )
