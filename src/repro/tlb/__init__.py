"""TLB subsystem: entries, set-associative TLBs, policies, MMU hierarchy."""

from .entry import TLBEntry
from .hierarchy import MMU, TranslationResult
from .policies import (
    CHiRPPolicy,
    ITPPolicy,
    ProbabilisticLRUPolicy,
    TLBLRUPolicy,
    TLBReplacementPolicy,
    available_tlb_policies,
    make_tlb_policy,
)
from .tlb import TLB

__all__ = [
    "CHiRPPolicy",
    "ITPPolicy",
    "MMU",
    "ProbabilisticLRUPolicy",
    "TLB",
    "TLBEntry",
    "TLBLRUPolicy",
    "TLBReplacementPolicy",
    "TranslationResult",
    "available_tlb_policies",
    "make_tlb_policy",
]
