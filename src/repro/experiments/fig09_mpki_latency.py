"""Figure 9: MPKI and average miss latency at the STLB, L2C and LLC.

Explains Figure 8: iTP+xPTP slightly cuts STLB MPKI, halves STLB miss
latency (data walks become L2C hits), raises L2C MPKI while cutting L2C
miss latency, and lowers LLC MPKI.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.mixes import smt_mixes
from ..workloads.server import server_suite
from ..fabric import ParallelRunner
from .reporting import FigureResult
from .runner import (
    MEASURE,
    POLICY_MATRIX,
    WARMUP,
    Comparison,
    compare_single_thread,
    compare_smt,
)

LEVELS = ("stlb", "l2c", "llc")


def as_figure(comparison: Comparison, figure: str, description: str) -> FigureResult:
    result = FigureResult(
        figure=figure,
        description=description,
        headers=[
            "technique",
            "stlb_mpki", "stlb_avg_miss_lat",
            "l2c_mpki", "l2c_dtmpki", "l2c_avg_miss_lat",
            "llc_mpki", "llc_avg_miss_lat",
        ],
        notes=[
            "paper (1T): iTP+xPTP cuts STLB miss latency 170.9->92.3, raises L2C MPKI "
            "30.6->46.5, cuts LLC MPKI 13.8->8.4 and L2C miss latency by 47.5%",
        ],
    )
    for technique in comparison.results:
        row = [technique]
        for level in LEVELS:
            row.append(comparison.mean_metric(technique, f"{level}.mpki"))
            if level == "l2c":
                # Section 6.2: the data-PTE component of L2C misses is the
                # quantity xPTP exists to reduce.
                row.append(comparison.mean_metric(technique, "l2c.dtmpki"))
            row.append(comparison.mean_metric(technique, f"{level}.avg_miss_latency"))
        result.add_row(*row)
    return result


def run(
    techniques: Optional[Sequence[str]] = None,
    server_count: int = 4,
    per_category: int = 1,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> Sequence[FigureResult]:
    techniques = list(techniques or POLICY_MATRIX)
    single = compare_single_thread(
        techniques, server_suite(server_count), None, warmup, measure, runner=runner, topology=topology
    )
    smt = compare_smt(
        techniques, smt_mixes(per_category), None, warmup, measure, runner=runner, topology=topology
    )
    return (
        as_figure(single, "Figure 9 (1T)", "MPKI / avg miss latency per level, single thread"),
        as_figure(smt, "Figure 9 (2T)", "MPKI / avg miss latency per level, SMT"),
    )
