"""Experiment drivers: one module per paper figure plus ablations.

Run everything from the command line::

    python -m repro.experiments            # all figures (slow)
    python -m repro.experiments fig08      # one figure

or call each module's ``run()`` from Python.  Benchmarks under
``benchmarks/`` wrap the same drivers.
"""

from . import (
    ablation_adaptive,
    ablation_params,
    ext_stlb_prefetch,
    fig01_itlb_cost,
    fig02_stlb_impki,
    fig03_probabilistic,
    fig04_mpki_breakdown,
    fig08_main_comparison,
    fig09_mpki_latency,
    fig10_stlb_breakdown,
    fig11_llc_sensitivity,
    fig12_itlb_sensitivity,
    fig13_large_pages,
    fig14_split_stlb,
)
from ..fabric import (
    CONTINUE,
    FAIL_FAST,
    CellReport,
    CellTimeout,
    ConfigurationError,
    MatrixError,
    MatrixReport,
    ParallelRunner,
    ResultCache,
    SimJob,
    SimulationError,
    configure_default_runner,
    get_default_runner,
    job_key,
    run_iter,
    run_jobs,
    set_default_runner,
)
from .reporting import FigureResult, format_figure, format_table
from .runner import (
    MEASURE,
    POLICY_MATRIX,
    WARMUP,
    Comparison,
    compare_single_thread,
    compare_smt,
    config_for,
    geomean,
)

__all__ = [
    "CONTINUE",
    "CellReport",
    "CellTimeout",
    "Comparison",
    "ConfigurationError",
    "FAIL_FAST",
    "FigureResult",
    "MEASURE",
    "MatrixError",
    "MatrixReport",
    "POLICY_MATRIX",
    "ParallelRunner",
    "ResultCache",
    "SimJob",
    "SimulationError",
    "WARMUP",
    "ablation_adaptive",
    "ablation_params",
    "ext_stlb_prefetch",
    "compare_single_thread",
    "compare_smt",
    "config_for",
    "configure_default_runner",
    "get_default_runner",
    "job_key",
    "run_iter",
    "run_jobs",
    "set_default_runner",
    "fig01_itlb_cost",
    "fig02_stlb_impki",
    "fig03_probabilistic",
    "fig04_mpki_breakdown",
    "fig08_main_comparison",
    "fig09_mpki_latency",
    "fig10_stlb_breakdown",
    "fig11_llc_sensitivity",
    "fig12_itlb_sensitivity",
    "fig13_large_pages",
    "fig14_split_stlb",
    "format_figure",
    "format_table",
    "geomean",
]
