"""Figure 1: cycles spent on instruction address translation vs ITLB size.

The paper sweeps the ITLB from 8 to 1024 entries and shows that Qualcomm
Server workloads spend ~12.5 % of cycles on instruction address
translation at realistic sizes while SPEC spends ~0.03 %.  We sweep the
scaled equivalents (×1/4) and report the fraction of total cycles spent
in instruction translation per workload class.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.params import TLBConfig, scaled_config
from ..workloads.server import server_suite
from ..workloads.speclike import spec_suite
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import MEASURE, WARMUP

#: scaled ITLB entry counts and the full-scale sizes they stand for.
ITLB_SIZES = ((8, 32), (16, 64), (32, 128), (128, 512), (256, 1024))


def run(
    itlb_sizes: Sequence = ITLB_SIZES,
    server_count: int = 3,
    spec_count: int = 2,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 1",
        description="% of cycles in instruction address translation vs ITLB size",
        headers=["class", "itlb_entries", "full_scale_equiv", "pct_cycles_instr_translation"],
        notes=["paper: server ~12.5% at 64-128 entries, SPEC ~0.03%; shrinks as ITLB grows"],
    )
    suites = [
        ("server", server_suite(server_count)),
        ("spec", spec_suite(spec_count)),
    ]
    # Fan the full size x suite sweep out as one batch of jobs.
    jobs = []
    for scaled_entries, full_equiv in itlb_sizes:
        itlb = TLBConfig("ITLB", entries=scaled_entries, associativity=4, latency=1)
        cfg = replace(scaled_config(), itlb=itlb)
        for label, workloads in suites:
            jobs.extend(
                SimJob(cfg, (wl,), warmup, measure, topology=topology, label=f"itlb{scaled_entries}")
                for wl in workloads
            )
    results = iter(run_jobs(jobs, runner))
    for scaled_entries, full_equiv in itlb_sizes:
        for label, workloads in suites:
            fractions = []
            for _ in workloads:
                r = next(results)
                fractions.append(
                    100.0 * r.get("translation.instr_cycles") / max(1.0, r.get("cycles"))
                )
            result.add_row(label, scaled_entries, full_equiv, sum(fractions) / len(fractions))
    return result
