"""Ablation: the adaptive xPTP/LRU switch (Section 4.3.1).

On a phase-alternating workload (high STLB pressure ↔ quiet), compares:

* all-LRU baseline;
* iTP+xPTP with xPTP forced always-on (adaptive disabled);
* iTP+xPTP with the adaptive switch at several T1 thresholds.

Expected shape: the adaptive scheme matches or beats always-on because it
reverts the L2C to LRU during quiet phases.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.params import AdaptiveConfig, scaled_config
from ..workloads.phased import PhasedWorkload
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import WARMUP

T1_VALUES = (0, 1, 2, 4)


def build_jobs(
    t1_values: Sequence[int] = T1_VALUES,
    warmup: int = WARMUP,
    measure: int = 300_000,
    phase_records: int = 12_000,
    topology: Optional[str] = None,
) -> list:
    """The ablation's job matrix, without running it.

    Exposed so harnesses (the CI fabric-smoke, overlap tests) can submit
    the same matrix several times and exercise cross-submission dedup.
    """
    wl = PhasedWorkload("phased", seed=7, phase_records=phase_records)
    base = scaled_config()
    always_on = replace(
        base.with_policies(stlb="itp", l2c="xptp"),
        adaptive=AdaptiveConfig(enabled=False),
    )
    jobs = [
        SimJob(base, (wl,), warmup, measure, topology=topology, label="lru"),
        SimJob(always_on, (wl,), warmup, measure, topology=topology, label="always-on"),
    ]
    for t1 in t1_values:
        cfg = replace(
            base.with_policies(stlb="itp", l2c="xptp"),
            adaptive=AdaptiveConfig(enabled=True, t1_misses=t1),
        )
        jobs.append(SimJob(cfg, (wl,), warmup, measure, topology=topology, label=f"adaptive T1={t1}"))
    return jobs


def run(
    t1_values: Sequence[int] = T1_VALUES,
    warmup: int = WARMUP,
    measure: int = 300_000,
    phase_records: int = 12_000,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Ablation adaptive",
        description="Adaptive xPTP/LRU switch on a phase-alternating workload",
        headers=["scheme", "ipc_improvement_pct", "windows_xptp_enabled_pct"],
        notes=["expected: adaptive >= always-on; T1 extremes degrade"],
    )
    jobs = build_jobs(
        t1_values, warmup=warmup, measure=measure,
        phase_records=phase_records, topology=topology,
    )
    results = run_jobs(jobs, runner)
    baseline = results[0].ipc
    result.add_row("always-on", 100.0 * (results[1].ipc / baseline - 1.0), 100.0)
    for t1, r in zip(t1_values, results[2:]):
        enabled_pct = 100.0 * r.get("adaptive.windows_enabled", 0.0) / max(
            1.0, r.get("adaptive.windows_total", 1.0)
        )
        result.add_row(f"adaptive T1={t1}", 100.0 * (r.ipc / baseline - 1.0), enabled_pct)
    return result
