"""Figure 13: allocating code and data on 2 MB pages.

Sweeps the fraction of the code+data footprint backed by 2 MB pages
(0/10/50/100 %).  Expected shape: all techniques' gains shrink as 2 MB
coverage grows (fewer STLB misses to optimise), with iTP+xPTP best at
every point and still positive at 100 %.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.mixes import smt_mixes
from ..workloads.server import server_suite
from ..fabric import ParallelRunner
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, compare_single_thread, compare_smt

PERCENTS = (0, 10, 50, 100)
TECHNIQUES = ("lru", "tdrrip", "ptp", "chirp", "itp+xptp")


def run(
    percents: Sequence[int] = PERCENTS,
    server_count: int = 3,
    per_category: int = 1,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 13",
        description="IPC improvement vs LRU as 2MB-page coverage of the footprint grows",
        headers=["scenario", "pct_2mb", "technique", "geomean_ipc_improvement_pct"],
        notes=[
            "paper (1T): iTP+xPTP 18.9/10.1/~0/~0 at 0/10/50/100%; "
            "(2T): 11.4/8.4/5.9/4.2 — gains shrink with 2MB coverage",
        ],
    )
    for pct in percents:
        single = compare_single_thread(
            TECHNIQUES,
            server_suite(server_count, large_page_percent=pct),
            None, warmup, measure, runner=runner, topology=topology,
        )
        smt = compare_smt(
            TECHNIQUES,
            smt_mixes(per_category, large_page_percent=pct),
            None, warmup, measure, runner=runner, topology=topology,
        )
        for scenario, comparison in (("1T", single), ("2T", smt)):
            for technique in TECHNIQUES[1:]:
                result.add_row(
                    scenario, pct, technique,
                    comparison.geomean_improvement_percent(technique),
                )
    return result
