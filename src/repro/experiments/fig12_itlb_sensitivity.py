"""Figure 12: sensitivity of iTP and iTP+xPTP to the ITLB size.

For each ITLB size the baseline is an all-LRU system with the *same*
ITLB.  Expected shape: gains are stable for realistic sizes and shrink
once the ITLB is large enough to absorb the instruction footprint
(paper: noticeable drop at 1024 entries for single-thread).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.params import TLBConfig, scaled_config
from ..workloads.mixes import smt_mixes
from ..workloads.server import server_suite
from ..fabric import ParallelRunner
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, compare_single_thread, compare_smt

#: (scaled entries, full-scale equivalent), matching Figure 12's 64..1024.
ITLB_SIZES = ((16, 64), (32, 128), (128, 512), (256, 1024))
TECHNIQUES = ("lru", "itp", "itp+xptp")


def run(
    itlb_sizes: Sequence = ITLB_SIZES,
    server_count: int = 4,
    per_category: int = 1,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 12",
        description="iTP / iTP+xPTP geomean IPC improvement across ITLB sizes",
        headers=[
            "scenario", "itlb_entries", "full_scale_equiv", "technique",
            "geomean_ipc_improvement_pct",
        ],
        notes=["paper: consistent gains at 64-512 entries, reduced at 1024 (1T)"],
    )
    for scaled_entries, full_equiv in itlb_sizes:
        itlb = TLBConfig("ITLB", entries=scaled_entries, associativity=4, latency=1)
        base = replace(scaled_config(), itlb=itlb)
        single = compare_single_thread(
            TECHNIQUES, server_suite(server_count), base, warmup, measure, runner=runner, topology=topology
        )
        smt = compare_smt(
            TECHNIQUES, smt_mixes(per_category), base, warmup, measure, runner=runner, topology=topology
        )
        for scenario, comparison in (("1T", single), ("2T", smt)):
            for technique in ("itp", "itp+xptp"):
                result.add_row(
                    scenario, scaled_entries, full_equiv, technique,
                    comparison.geomean_improvement_percent(technique),
                )
    return result
