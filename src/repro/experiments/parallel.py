"""Parallel experiment execution.

Every figure driver ultimately runs a matrix of independent simulations —
``simulate()`` builds a fresh :class:`repro.core.system.System` per call and
shares no state between cells — so the matrix fans out over a
:class:`concurrent.futures.ProcessPoolExecutor` trivially.  This module
provides the machinery:

* :class:`SimJob` — one simulation cell: a configuration, an optional
  topology (preset name or :class:`TopologySpec`), one workload (or two
  for SMT, or one per core for a multicore topology), the warmup/measure
  windows and a technique label;
* :class:`ParallelRunner` — executes a job list with ``workers`` processes,
  returning results in job order regardless of completion order.
  ``workers=1`` runs serially in-process (no pool, bit-identical to the
  pre-parallel code path — CI uses it for determinism checks);
* :class:`ResultCache` — an on-disk result store keyed by
  ``(label, workload, warmup, measure, config-hash, topology-hash)`` so
  re-running a figure driver skips completed cells.  The topology
  component is the spec's :meth:`~TopologySpec.content_hash` — resolved
  even for the default graph, so two jobs with identical
  :class:`SystemConfig` but different machine graphs can never collide;
* a process-wide default runner configured from the environment
  (``REPRO_WORKERS``, ``REPRO_CACHE_DIR``, ``REPRO_PROGRESS``) or from the
  CLI flags of ``repro.cli`` / ``python -m repro.experiments``.

Determinism: the simulator is seeded end to end, so a cell's result depends
only on the job description — never on which worker ran it or in what
order.  That is what makes both the fan-out and the cache sound.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..common.params import SystemConfig
from ..core.multicore import simulate_multicore
from ..core.simulator import SimulationResult, simulate, simulate_smt
from ..topology.presets import resolve_topology
from ..topology.spec import TopologySpec
from ..workloads.base import SyntheticWorkload

#: Bump to invalidate every cached result (e.g. after a simulator behaviour
#: change that job descriptions cannot see).
CACHE_VERSION = 3


class SimulationError(RuntimeError):
    """A cell of the experiment matrix failed; names the failing cell."""


@dataclass(frozen=True)
class SimJob:
    """One independent simulation: a ``(technique, workload)`` cell.

    ``workloads`` holds one workload for a single-thread run or two for an
    SMT co-location (dispatching to :func:`simulate` / :func:`simulate_smt`).
    ``topology`` selects the machine graph — ``None`` for the default
    Table 1 hierarchy, a preset name (``"split-stlb"``, ``"multicore-2"``,
    ...) or a full :class:`TopologySpec`.  A multi-core topology dispatches
    to :func:`simulate_multicore` and takes one workload per core.
    """

    config: SystemConfig
    workloads: Tuple[SyntheticWorkload, ...]
    warmup: int
    measure: int
    label: str = ""
    topology: Union[None, str, TopologySpec] = None

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("SimJob needs at least one workload")
        if self.topology is None and len(self.workloads) > 2:
            raise ValueError("SimJob takes one workload (1T) or two (SMT)")

    def resolved_topology(self) -> TopologySpec:
        """The job's machine graph as a spec (default graph when ``None``)."""
        return resolve_topology(self.topology, self.config)

    @property
    def workload_name(self) -> str:
        return "+".join(w.name for w in self.workloads)

    @property
    def cell(self) -> str:
        """Human-readable cell name for logs and errors."""
        return f"{self.label or 'default'} x {self.workload_name}"


def single(
    config: SystemConfig,
    workload: SyntheticWorkload,
    warmup: int,
    measure: int,
    label: str = "",
    topology: Union[None, str, TopologySpec] = None,
) -> SimJob:
    """Convenience constructor for a single-thread job."""
    return SimJob(config, (workload,), warmup, measure, label, topology)


def smt(
    config: SystemConfig,
    workloads: Sequence[SyntheticWorkload],
    warmup: int,
    measure: int,
    label: str = "",
    topology: Union[None, str, TopologySpec] = None,
) -> SimJob:
    """Convenience constructor for a two-thread SMT job."""
    return SimJob(config, tuple(workloads), warmup, measure, label, topology)


# --------------------------------------------------------------------- #
# Cache keys
# --------------------------------------------------------------------- #


def workload_fingerprint(workload: SyntheticWorkload) -> str:
    """Deterministic identity of a workload's generated stream.

    Workload generators are pure functions of their constructor parameters
    (all public attributes; derived state like pre-built function tables is
    underscore-prefixed), so class + public attributes pin the trace.
    """
    public = sorted(
        (k, v) for k, v in vars(workload).items() if not k.startswith("_")
    )
    return f"{type(workload).__module__}.{type(workload).__qualname__}{public!r}"


def job_key(job: SimJob) -> str:
    """Stable cache key for a job.

    ``SystemConfig`` is a tree of frozen dataclasses whose ``repr`` lists
    every field, so it serves as a canonical config hash input.  The
    topology is always resolved to a spec and keyed by its content hash —
    so a preset name and the equivalent explicit spec share cache entries,
    while jobs differing only in machine graph never collide.
    """
    parts = [
        f"cache-version={CACHE_VERSION}",
        f"label={job.label}",
        f"warmup={job.warmup}",
        f"measure={job.measure}",
        f"config={job.config!r}",
        f"topology={job.resolved_topology().content_hash()}",
    ]
    parts.extend(workload_fingerprint(w) for w in job.workloads)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk :class:`SimulationResult` store, one pickle per cell.

    Writes are atomic (temp file + ``os.replace``), so concurrent workers
    or concurrent figure drivers can share one cache directory.  Delete the
    directory (or bump :data:`CACHE_VERSION`) to invalidate.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Optional[SimulationResult]:
        path = self.path(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # A corrupt/truncated entry is a miss, never a crash; pickle can
            # raise nearly anything on garbage bytes (ValueError, ImportError,
            # UnpicklingError, ...).
            return None
        return result if isinstance(result, SimulationResult) else None

    def store(self, key: str, result: SimulationResult) -> None:
        path = self.path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with tmp.open("wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def clear(self) -> int:
        """Remove every cached result; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


def _execute(job: SimJob) -> Tuple[SimulationResult, float]:
    """Run one cell; returns (result, wall seconds).  Must stay module-level
    picklable — it is the function shipped to pool workers."""
    start = time.perf_counter()
    topology = job.resolved_topology() if job.topology is not None else None
    if topology is not None and topology.num_cores > 1:
        result = simulate_multicore(
            job.config, list(job.workloads), job.warmup, job.measure,
            config_label=job.label, topology=topology,
        )
    elif len(job.workloads) == 1:
        result = simulate(
            job.config, job.workloads[0], job.warmup, job.measure,
            config_label=job.label, topology=topology,
        )
    else:
        result = simulate_smt(
            job.config, list(job.workloads), job.warmup, job.measure,
            config_label=job.label, topology=topology,
        )
    return result, time.perf_counter() - start


def _env_workers() -> int:
    value = os.environ.get("REPRO_WORKERS", "").strip()
    if not value:
        return 1
    if value.lower() == "auto":
        return os.cpu_count() or 1
    return max(1, int(value))


class ParallelRunner:
    """Fans a :class:`SimJob` list out over worker processes.

    * ``workers`` — process count; ``1`` (default) runs serially in-process,
      ``None``/``"auto"`` uses every core.
    * ``cache_dir`` — enable the on-disk result cache at this directory.
    * ``progress`` — per-cell completion/timing lines on stderr.

    ``run`` preserves job order in its result list, independent of worker
    scheduling, so callers can zip results back onto their matrix.
    """

    def __init__(
        self,
        workers: Union[int, str, None] = 1,
        cache_dir: Union[str, Path, None] = None,
        progress: Optional[bool] = None,
    ) -> None:
        if workers is None or workers == "auto":
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.cache = ResultCache(cache_dir) if cache_dir else None
        if progress is None:
            progress = os.environ.get("REPRO_PROGRESS", "") == "1"
        self.progress = progress
        # Lifetime counters (tests and progress summaries read these).
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0

    # ----------------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.progress:
            print(f"[runner] {message}", file=sys.stderr, flush=True)

    def _finish(
        self, job: SimJob, key: Optional[str], outcome: Tuple[SimulationResult, float],
        done: int, total: int,
    ) -> SimulationResult:
        result, elapsed = outcome
        self.simulations += 1
        if self.cache is not None and key is not None:
            self.cache.store(key, result)
        self._log(f"{done}/{total} {job.cell}: {elapsed:.1f}s")
        return result

    def run(self, jobs: Iterable[SimJob]) -> List[SimulationResult]:
        """Execute all jobs; results come back in job order."""
        jobs = list(jobs)
        total = len(jobs)
        results: List[Optional[SimulationResult]] = [None] * total
        keys: List[Optional[str]] = [None] * total
        pending: List[int] = []
        done = 0

        for index, job in enumerate(jobs):
            if self.cache is not None:
                keys[index] = job_key(job)
                cached = self.cache.load(keys[index])
                if cached is not None:
                    self.cache_hits += 1
                    done += 1
                    results[index] = cached
                    self._log(f"{done}/{total} {job.cell}: cached")
                    continue
                self.cache_misses += 1
            pending.append(index)

        if not pending:
            return [r for r in results if r is not None]

        if self.workers == 1 or len(pending) == 1:
            for index in pending:
                done += 1
                results[index] = self._run_one(jobs[index], keys[index], done, total)
        else:
            pool = ProcessPoolExecutor(max_workers=min(self.workers, len(pending)))
            try:
                futures = {
                    pool.submit(_execute, jobs[index]): index for index in pending
                }
                for future in as_completed(futures):
                    index = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        raise SimulationError(
                            f"simulation failed for cell ({jobs[index].cell}): {exc}"
                        ) from exc
                    done += 1
                    results[index] = self._finish(
                        jobs[index], keys[index], future.result(), done, total
                    )
            finally:
                # Cancel queued cells on failure so a bad matrix fails fast
                # instead of draining the whole backlog first.
                pool.shutdown(wait=True, cancel_futures=True)
        return [r for r in results if r is not None]

    def _run_one(
        self, job: SimJob, key: Optional[str], done: int, total: int
    ) -> SimulationResult:
        try:
            outcome = _execute(job)
        except Exception as exc:
            raise SimulationError(
                f"simulation failed for cell ({job.cell}): {exc}"
            ) from exc
        return self._finish(job, key, outcome, done, total)


# --------------------------------------------------------------------- #
# Process-wide default runner
# --------------------------------------------------------------------- #

_default_runner: Optional[ParallelRunner] = None


def get_default_runner() -> ParallelRunner:
    """The runner used when an experiment API is called without one.

    First use builds it from the environment: ``REPRO_WORKERS`` (a count or
    ``auto``; default 1, keeping library calls serial and deterministic),
    ``REPRO_CACHE_DIR`` (default: no cache) and ``REPRO_PROGRESS=1``.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = ParallelRunner(
            workers=_env_workers(),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        )
    return _default_runner


def set_default_runner(runner: Optional[ParallelRunner]) -> Optional[ParallelRunner]:
    """Install (or, with ``None``, reset) the process-wide default runner.

    Returns the previously installed runner so callers can restore it.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


def configure_default_runner(
    workers: Union[int, str, None] = 1,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[bool] = None,
) -> ParallelRunner:
    """Build and install the default runner; returns it."""
    runner = ParallelRunner(workers=workers, cache_dir=cache_dir, progress=progress)
    set_default_runner(runner)
    return runner


def run_jobs(
    jobs: Iterable[SimJob], runner: Optional[ParallelRunner] = None
) -> List[SimulationResult]:
    """Run jobs on ``runner`` (or the process-wide default)."""
    return (runner or get_default_runner()).run(jobs)
