"""Parallel experiment execution.

Every figure driver ultimately runs a matrix of independent simulations —
``simulate()`` builds a fresh :class:`repro.core.system.System` per call and
shares no state between cells — so the matrix fans out over a
:class:`concurrent.futures.ProcessPoolExecutor` trivially.  This module
provides the machinery:

* :class:`SimJob` — one simulation cell: a configuration, an optional
  topology (preset name or :class:`TopologySpec`), one workload (or two
  for SMT, or one per core for a multicore topology), the warmup/measure
  windows and a technique label;
* :class:`ParallelRunner` — executes a job list with ``workers`` processes,
  returning results in job order regardless of completion order.
  ``workers=1`` runs serially in-process (no pool, bit-identical to the
  pre-parallel code path — CI uses it for determinism checks);
* **fault tolerance** — a failure ``policy`` (:data:`FAIL_FAST`, today's
  default: first failed cell raises and cancels the backlog; or
  :data:`CONTINUE`: every cell runs, successes are cached, and a
  :class:`MatrixError` summarising the failures is raised at the end),
  per-cell ``max_retries`` with exponential backoff and deterministic
  seeded jitter, a per-cell wall-clock ``timeout`` (SIGALRM in the
  executing process — a hung cell is cancelled and requeued), and
  ``BrokenProcessPool`` recovery that rebuilds the pool and requeues the
  in-flight cells, bounded by ``max_pool_restarts``.  Every ``run`` fills
  in a structured :class:`MatrixReport` (``runner.last_report``) with
  per-cell status, attempts and recovery events;
* :class:`ResultCache` — an on-disk result store keyed by
  ``(label, workload, warmup, measure, config-hash, topology-hash)`` so
  re-running a figure driver skips completed cells.  Entries carry a
  sha256 over the payload, verified on load — a torn or corrupt entry is
  quarantined and treated as a miss, never served;
* a process-wide default runner configured from the environment
  (``REPRO_WORKERS``, ``REPRO_CACHE_DIR``, ``REPRO_PROGRESS``,
  ``REPRO_FAILURE_POLICY``, ``REPRO_MAX_RETRIES``, ``REPRO_CELL_TIMEOUT``,
  ``REPRO_POOL_RESTARTS``) or from the CLI flags of ``repro.cli`` /
  ``python -m repro.experiments``.

Determinism: the simulator is seeded end to end, so a cell's result depends
only on the job description — never on which worker ran it, in what order,
or on which attempt after a crash or timeout.  That is what makes the
fan-out, the cache *and* the recovery paths sound; the recovery paths are
exercised by real injected faults via :mod:`repro.faults` (see
``docs/robustness.md``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..common.params import SystemConfig
from ..core.multicore import simulate_multicore
from ..core.simulator import SimulationResult, simulate, simulate_smt
from ..faults import inject as fault_inject
from ..faults import plan as fault_plans
from ..kernel import resolve_engine
from ..topology.presets import resolve_topology
from ..topology.spec import TopologySpec
from ..workloads.base import SyntheticWorkload

#: Bump to invalidate every cached result (e.g. after a simulator behaviour
#: change that job descriptions cannot see).  4: checksummed entry format.
#: 5: MSHR structural retirement preserves Type bits (and exports
#: ``*.mshr_retirements``), so cells simulated before the fix are stale.
#: 6: jobs carry an execution engine; pre-engine entries predate the
#: ``engine=`` key part and must not be served for either engine.
CACHE_VERSION = 6

#: Failure policies: fail-fast preserves the historical behaviour (first
#: failed cell raises :class:`SimulationError` and cancels the backlog);
#: collect-and-continue finishes every cell, caches the successes, and
#: raises a :class:`MatrixError` summarising the failures at the end.
FAIL_FAST = "fail-fast"
CONTINUE = "continue"
FAILURE_POLICIES = (FAIL_FAST, CONTINUE)


class SimulationError(RuntimeError):
    """A cell of the experiment matrix failed; names the failing cell."""


class ConfigurationError(ValueError):
    """A runner knob (flag or ``REPRO_*`` variable) could not be parsed."""


class CellTimeout(RuntimeError):
    """A cell exceeded the per-cell wall-clock ``timeout`` and was cancelled."""


@dataclass(frozen=True)
class SimJob:
    """One independent simulation: a ``(technique, workload)`` cell.

    ``workloads`` holds one workload for a single-thread run or two for an
    SMT co-location (dispatching to :func:`simulate` / :func:`simulate_smt`).
    ``topology`` selects the machine graph — ``None`` for the default
    Table 1 hierarchy, a preset name (``"split-stlb"``, ``"multicore-2"``,
    ...) or a full :class:`TopologySpec`.  A multi-core topology dispatches
    to :func:`simulate_multicore` and takes one workload per core.
    ``engine`` selects the execution engine (:mod:`repro.kernel`): ``None``
    defers to ``REPRO_ENGINE`` then the default, so the choice resolves on
    the executing worker and is pinned into the cache key.
    """

    config: SystemConfig
    workloads: Tuple[SyntheticWorkload, ...]
    warmup: int
    measure: int
    label: str = ""
    topology: Union[None, str, TopologySpec] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("SimJob needs at least one workload")
        resolve_engine(self.engine)  # validate eagerly, at job-build time
        if self.topology is None and len(self.workloads) > 2:
            raise ValueError("SimJob takes one workload (1T) or two (SMT)")

    def resolved_topology(self) -> TopologySpec:
        """The job's machine graph as a spec (default graph when ``None``)."""
        return resolve_topology(self.topology, self.config)

    @property
    def workload_name(self) -> str:
        return "+".join(w.name for w in self.workloads)

    @property
    def cell(self) -> str:
        """Human-readable cell name for logs, errors and fault-plan keys."""
        return f"{self.label or 'default'} x {self.workload_name}"


def single(
    config: SystemConfig,
    workload: SyntheticWorkload,
    warmup: int,
    measure: int,
    label: str = "",
    topology: Union[None, str, TopologySpec] = None,
    engine: Optional[str] = None,
) -> SimJob:
    """Convenience constructor for a single-thread job."""
    return SimJob(config, (workload,), warmup, measure, label, topology, engine)


def smt(
    config: SystemConfig,
    workloads: Sequence[SyntheticWorkload],
    warmup: int,
    measure: int,
    label: str = "",
    topology: Union[None, str, TopologySpec] = None,
    engine: Optional[str] = None,
) -> SimJob:
    """Convenience constructor for a two-thread SMT job."""
    return SimJob(config, tuple(workloads), warmup, measure, label, topology, engine)


# --------------------------------------------------------------------- #
# Cache keys
# --------------------------------------------------------------------- #


def workload_fingerprint(workload: SyntheticWorkload) -> str:
    """Deterministic identity of a workload's generated stream.

    Workload generators are pure functions of their constructor parameters
    (all public attributes; derived state like pre-built function tables is
    underscore-prefixed), so class + public attributes pin the trace.
    """
    public = sorted(
        (k, v) for k, v in vars(workload).items() if not k.startswith("_")
    )
    return f"{type(workload).__module__}.{type(workload).__qualname__}{public!r}"


def job_key(job: SimJob) -> str:
    """Stable cache key for a job.

    ``SystemConfig`` is a tree of frozen dataclasses whose ``repr`` lists
    every field, so it serves as a canonical config hash input.  The
    topology is always resolved to a spec and keyed by its content hash —
    so a preset name and the equivalent explicit spec share cache entries,
    while jobs differing only in machine graph never collide.  The engine
    is keyed *resolved* (both engines are bit-identical, but separate keys
    keep a per-engine provenance trail and make cross-engine cache hits an
    explicit non-goal); a job deferring to ``REPRO_ENGINE`` therefore maps
    to the same entry as one pinning that engine explicitly.
    """
    parts = [
        f"cache-version={CACHE_VERSION}",
        f"label={job.label}",
        f"warmup={job.warmup}",
        f"measure={job.measure}",
        f"engine={resolve_engine(job.engine)}",
        f"config={job.config!r}",
        f"topology={job.resolved_topology().content_hash()}",
    ]
    parts.extend(workload_fingerprint(w) for w in job.workloads)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Result cache
# --------------------------------------------------------------------- #

#: Entry layout: magic, then sha256(payload), then the pickled payload.
#: The digest is verified on every load — a mismatch (torn write, bit rot,
#: a pre-checksum cache) quarantines the file and reads as a miss.
_CACHE_MAGIC = b"repro-result-cache-v1\n"
_DIGEST_LEN = 32

#: Temp files from writers that died mid-store are swept at cache startup
#: once they are older than this (seconds) — young ones may be live writes.
STALE_TMP_SECONDS = 3600.0


class ResultCache:
    """On-disk :class:`SimulationResult` store, one checksummed file per cell.

    Writes are atomic (temp file + ``os.replace``; the temp file is removed
    even when the write fails), so concurrent workers or concurrent figure
    drivers can share one cache directory.  Loads verify a sha256 trailer
    over the payload: an entry that fails verification is moved to a
    ``quarantine/`` subdirectory — kept for forensics, never served — and
    the cell is transparently re-simulated.  Delete the directory (or bump
    :data:`CACHE_VERSION`) to invalidate.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.directory / "quarantine"
        # Observability for the runner's MatrixReport and for tests.
        self.quarantined = 0
        self.last_quarantined: Optional[str] = None
        self.store_failures = 0
        self.sweep_stale_tmp()

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def sweep_stale_tmp(self, max_age_seconds: float = STALE_TMP_SECONDS) -> int:
        """Remove temp files abandoned by dead writers; returns the count."""
        removed = 0
        cutoff = time.time() - max_age_seconds
        for tmp in self.directory.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def load(self, key: str) -> Optional[SimulationResult]:
        self.last_quarantined = None
        path = self.path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if not data.startswith(_CACHE_MAGIC):
            self._quarantine(path, "bad magic (foreign or pre-checksum format)")
            return None
        digest = data[len(_CACHE_MAGIC):len(_CACHE_MAGIC) + _DIGEST_LEN]
        payload = data[len(_CACHE_MAGIC) + _DIGEST_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            self._quarantine(path, "sha256 mismatch (torn or corrupt write)")
            return None
        try:
            result = pickle.loads(payload)
        except Exception:
            # Checksum-valid but unreadable: the bytes are what the writer
            # stored, the *code* moved underneath them (stale class layout).
            # A plain miss — re-simulation will overwrite with fresh bytes.
            return None
        return result if isinstance(result, SimulationResult) else None

    def store(self, key: str, result: SimulationResult) -> None:
        path = self.path(key)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        data = _CACHE_MAGIC + hashlib.sha256(payload).digest() + payload
        # Fault-injection sites: corrupt the bytes *after* the digest was
        # computed, exactly like bit rot or a torn write would.
        if fault_inject.should_fire(fault_plans.CACHE_CORRUPT_WRITE, key):
            data = data[:-1] + bytes([data[-1] ^ 0xFF])
        if fault_inject.should_fire(fault_plans.CACHE_TORN_WRITE, key):
            data = data[: max(len(_CACHE_MAGIC) + _DIGEST_LEN + 1, len(data) // 2)]
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            # On a failed write (disk full, replace error) the temp file
            # must not leak; after a successful replace this is a no-op.
            try:
                tmp.unlink()
            except OSError:
                pass

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside so it is never loaded again."""
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
            os.replace(path, self.quarantine_dir / f"{path.name}.{os.getpid()}")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1
        self.last_quarantined = reason

    def clear(self) -> int:
        """Remove every cached result; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# --------------------------------------------------------------------- #
# Matrix report
# --------------------------------------------------------------------- #


@dataclass
class CellReport:
    """Outcome of one matrix cell across all its attempts."""

    index: int
    cell: str
    status: str = "pending"  # pending | ok | cached | failed | timeout
    attempts: int = 0
    elapsed: float = 0.0
    error: Optional[str] = None
    #: Recovery events in order: retries, requeues after pool restarts,
    #: quarantined cache entries.
    events: List[str] = field(default_factory=list)
    #: Fault sites the active :class:`repro.faults.FaultPlan` arms for this
    #: cell (a pure function of the plan, so attribution is exact even for
    #: crashes that leave no exception behind).
    injected: Tuple[str, ...] = ()

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class MatrixReport:
    """Per-cell outcomes of one :meth:`ParallelRunner.run` call."""

    cells: List[CellReport]
    pool_restarts: int = 0

    @property
    def ok(self) -> bool:
        return all(cell.succeeded for cell in self.cells)

    def failures(self) -> List[CellReport]:
        return [cell for cell in self.cells if not cell.succeeded]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts

    def summary(self) -> str:
        """Multi-line human-readable report (drivers print this)."""
        counts = self.counts()
        parts = [
            f"{counts[status]} {status}"
            for status in ("ok", "cached", "failed", "timeout", "pending")
            if counts.get(status)
        ]
        head = f"matrix: {len(self.cells)} cell(s) — {', '.join(parts) or 'empty'}"
        if self.pool_restarts:
            head += f"; {self.pool_restarts} pool restart(s)"
        lines = [head]
        for cell in self.cells:
            notes = list(cell.events)
            if cell.injected:
                notes.insert(0, "injected: " + "+".join(cell.injected))
            if cell.succeeded and not notes:
                continue
            detail = f"  [{cell.status}] {cell.cell} (attempts={cell.attempts})"
            if cell.error:
                detail += f": {cell.error}"
            if notes:
                detail += " — " + "; ".join(notes)
            lines.append(detail)
        return "\n".join(lines)


class MatrixError(SimulationError):
    """Collect-and-continue run finished with failed cells.

    Carries the full :class:`MatrixReport` (``.report``) and the partial
    result list in job order with ``None`` for failed cells (``.results``),
    so callers can salvage the completed work.
    """

    def __init__(
        self, report: MatrixReport, results: List[Optional[SimulationResult]]
    ) -> None:
        failures = report.failures()
        names = ", ".join(cell.cell for cell in failures[:5])
        more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
        super().__init__(
            f"{len(failures)} of {len(report.cells)} matrix cell(s) failed: "
            f"{names}{more}"
        )
        self.report = report
        self.results = results


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


@contextmanager
def _cell_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Enforce a wall-clock limit on the enclosed cell via ``SIGALRM``.

    Armed in the process that executes the cell (a pool worker's task
    thread is its process's main thread), so a genuinely hung simulation —
    or an injected ``worker.hang`` — is interrupted even though
    ``concurrent.futures`` cannot cancel a running task.  No-op without a
    limit, off POSIX, or off the main thread (where signals cannot arm).
    """
    if (
        not seconds
        or os.name != "posix"
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise CellTimeout(f"cell exceeded its {seconds:g}s wall-clock limit")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute(
    job: SimJob, attempt: int = 0, timeout: Optional[float] = None
) -> Tuple[SimulationResult, float]:
    """Run one cell; returns (result, wall seconds).  Must stay module-level
    picklable — it is the function shipped to pool workers."""
    start = time.perf_counter()
    with _cell_deadline(timeout):
        if attempt == 0:
            # Worker faults arm only a cell's first attempt, so retried and
            # requeued cells run clean and every chaos run converges.
            fault_inject.maybe_crash(job.cell)
            fault_inject.maybe_hang(job.cell)
        topology = job.resolved_topology() if job.topology is not None else None
        if topology is not None and topology.num_cores > 1:
            result = simulate_multicore(
                job.config, list(job.workloads), job.warmup, job.measure,
                config_label=job.label, topology=topology, engine=job.engine,
            )
        elif len(job.workloads) == 1:
            result = simulate(
                job.config, job.workloads[0], job.warmup, job.measure,
                config_label=job.label, topology=topology, engine=job.engine,
            )
        else:
            result = simulate_smt(
                job.config, list(job.workloads), job.warmup, job.measure,
                config_label=job.label, topology=topology, engine=job.engine,
            )
    return result, time.perf_counter() - start


# --------------------------------------------------------------------- #
# Environment knobs
# --------------------------------------------------------------------- #


def _env_workers() -> int:
    value = os.environ.get("REPRO_WORKERS", "").strip()
    if not value:
        return 1
    if value.lower() == "auto":
        return os.cpu_count() or 1
    try:
        count = int(value)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_WORKERS must be a positive integer or 'auto', got {value!r}"
        ) from None
    return max(1, count)


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    return max(minimum, value)


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None


def _jitter(cell: str, attempt: int) -> float:
    """Deterministic retry jitter in [0.5, 1) — seeded by cell and attempt,
    so backoff schedules are reproducible run to run."""
    digest = hashlib.sha256(f"backoff|{cell}|{attempt}".encode("utf-8")).digest()
    return 0.5 + 0.5 * (int.from_bytes(digest[:8], "big") / 2.0**64)


class ParallelRunner:
    """Fans a :class:`SimJob` list out over worker processes.

    * ``workers`` — process count; ``1`` (default) runs serially in-process,
      ``None``/``"auto"`` uses every core.
    * ``cache_dir`` — enable the on-disk result cache at this directory.
    * ``progress`` — per-cell completion/timing lines on stderr.
    * ``policy`` — :data:`FAIL_FAST` (default; unchanged historical
      behaviour) or :data:`CONTINUE` (finish every cell, raise
      :class:`MatrixError` at the end if any failed).
    * ``max_retries`` — extra attempts per failed/timed-out cell (default
      0), with exponential backoff ``backoff_base * 2**(attempt-1)`` times
      a deterministic jitter.
    * ``timeout`` — per-cell wall-clock seconds; a cell over budget raises
      :class:`CellTimeout` in its process and is retried like any failure.
    * ``max_pool_restarts`` — how many times a ``BrokenProcessPool`` (a
      worker killed by the OS) may be rebuilt, requeuing the in-flight
      cells (default 2; a separate budget from per-cell retries).
    * ``faults`` — a programmatic :class:`repro.faults.FaultPlan` (or spec
      string) for this runner; default: the ambient ``REPRO_FAULTS`` plan.

    Unset knobs fall back to ``REPRO_FAILURE_POLICY``, ``REPRO_MAX_RETRIES``,
    ``REPRO_CELL_TIMEOUT`` and ``REPRO_POOL_RESTARTS``.  ``run`` preserves
    job order in its result list, independent of worker scheduling, so
    callers can zip results back onto their matrix; each run also fills in
    a :class:`MatrixReport` at ``runner.last_report``.
    """

    def __init__(
        self,
        workers: Union[int, str, None] = 1,
        cache_dir: Union[str, Path, None] = None,
        progress: Optional[bool] = None,
        *,
        policy: Optional[str] = None,
        max_retries: Optional[int] = None,
        timeout: Optional[float] = None,
        backoff_base: float = 0.25,
        max_pool_restarts: Optional[int] = None,
        faults: Union["fault_plans.FaultPlan", str, None] = None,
    ) -> None:
        if workers is None or workers == "auto":
            workers = os.cpu_count() or 1
        try:
            self.workers = max(1, int(workers))
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            ) from None
        self.cache = ResultCache(cache_dir) if cache_dir else None
        if progress is None:
            progress = os.environ.get("REPRO_PROGRESS", "") == "1"
        self.progress = progress
        if policy is None:
            policy = os.environ.get("REPRO_FAILURE_POLICY", "").strip() or FAIL_FAST
        if policy not in FAILURE_POLICIES:
            raise ConfigurationError(
                f"failure policy must be one of {FAILURE_POLICIES}, got {policy!r} "
                "(set via policy= or REPRO_FAILURE_POLICY)"
            )
        self.policy = policy
        if max_retries is None:
            max_retries = _env_int("REPRO_MAX_RETRIES", 0)
        self.max_retries = max(0, int(max_retries))
        if timeout is None:
            timeout = _env_float("REPRO_CELL_TIMEOUT", None)
        self.timeout = timeout if timeout and timeout > 0 else None
        self.backoff_base = max(0.0, float(backoff_base))
        if max_pool_restarts is None:
            max_pool_restarts = _env_int("REPRO_POOL_RESTARTS", 2)
        self.max_pool_restarts = max(0, int(max_pool_restarts))
        if isinstance(faults, str):
            faults = fault_plans.FaultPlan.parse(faults)
        self.fault_plan: Optional[fault_plans.FaultPlan] = faults or None
        if self.fault_plan is None:
            # Surface a malformed REPRO_FAULTS now, as a configuration
            # error, rather than as a traceback mid-matrix.
            try:
                fault_plans.active_plan()
            except fault_plans.FaultSpecError as exc:
                raise ConfigurationError(f"{fault_plans.ENV_VAR}: {exc}") from exc
        # Lifetime counters (tests and progress summaries read these).
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0
        self.failed_cells = 0
        self.last_report: Optional[MatrixReport] = None
        self.reports: List[MatrixReport] = []

    # ----------------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.progress:
            print(f"[runner] {message}", file=sys.stderr, flush=True)

    def _finish(
        self, job: SimJob, key: Optional[str], outcome: Tuple[SimulationResult, float],
        done: int, total: int,
    ) -> SimulationResult:
        result, elapsed = outcome
        self.simulations += 1
        if self.cache is not None and key is not None:
            try:
                self.cache.store(key, result)
            except Exception as exc:
                # A result that cannot be cached is still a result; surface
                # the problem without failing the cell.
                self.cache.store_failures += 1
                self._log(f"cache store failed for {job.cell}: {exc}")
        self._log(f"{done}/{total} {job.cell}: {elapsed:.1f}s")
        return result

    def _fail_cell(self, cell: CellReport, error: str, timed_out: bool) -> None:
        cell.status = "timeout" if timed_out else "failed"
        cell.error = error
        self.failed_cells += 1
        self._log(f"{cell.cell}: {cell.status} after {cell.attempts} attempt(s): {error}")

    def _backoff(self, cell: str, attempt: int) -> None:
        if self.backoff_base <= 0:
            return
        delay = self.backoff_base * (2.0 ** (attempt - 1)) * _jitter(cell, attempt)
        self._log(f"{cell}: backing off {delay:.2f}s before attempt {attempt + 1}")
        time.sleep(delay)

    # ----------------------------------------------------------------- #

    def run(self, jobs: Iterable[SimJob]) -> List[SimulationResult]:
        """Execute all jobs; results come back in job order.

        Under :data:`FAIL_FAST` (default) the first permanently failed cell
        raises :class:`SimulationError`; under :data:`CONTINUE` every cell
        runs and a :class:`MatrixError` carrying the report and partial
        results is raised at the end if any cell failed.
        """
        jobs = list(jobs)
        total = len(jobs)
        results: List[Optional[SimulationResult]] = [None] * total
        keys: List[Optional[str]] = [None] * total
        report = MatrixReport([CellReport(i, job.cell) for i, job in enumerate(jobs)])
        self.last_report = report
        self.reports.append(report)
        pending: List[int] = []
        done = 0

        with fault_plans.plan_scope(self.fault_plan):
            for index, job in enumerate(jobs):
                cell = report.cells[index]
                if self.cache is not None:
                    keys[index] = job_key(job)
                    cached = self.cache.load(keys[index])
                    if self.cache.last_quarantined:
                        cell.events.append(
                            "quarantined corrupt cache entry "
                            f"({self.cache.last_quarantined}); re-simulating"
                        )
                    if cached is not None:
                        self.cache_hits += 1
                        done += 1
                        results[index] = cached
                        cell.status = "cached"
                        self._log(f"{done}/{total} {job.cell}: cached")
                        continue
                    self.cache_misses += 1
                pending.append(index)

            plan = fault_plans.active_plan()
            if plan is not None:
                for index in pending:
                    injected = [
                        site for site in fault_plans.WORKER_SITES
                        if plan.would_fire(site, jobs[index].cell)
                    ]
                    key = keys[index]
                    if key is not None:
                        injected.extend(
                            site for site in fault_plans.CACHE_SITES
                            if plan.would_fire(site, key)
                        )
                    report.cells[index].injected = tuple(injected)

            if pending:
                if self.workers == 1 or len(pending) == 1:
                    self._run_serial(jobs, keys, results, report, pending, done, total)
                else:
                    self._run_pool(jobs, keys, results, report, pending, done, total)

        if report.failures():
            raise MatrixError(report, results)
        missing = [report.cells[i].cell for i, r in enumerate(results) if r is None]
        if missing:
            # Every slot must be filled or accounted for as a failure above;
            # anything else is a runner bug and must fail loudly, never be
            # silently dropped from the result list.
            raise SimulationError(
                f"internal error: {len(missing)} matrix cell(s) finished without a "
                f"result or a recorded failure: {', '.join(missing)}"
            )
        return [r for r in results if r is not None]

    # ----------------------------------------------------------------- #

    def _run_serial(
        self,
        jobs: List[SimJob],
        keys: List[Optional[str]],
        results: List[Optional[SimulationResult]],
        report: MatrixReport,
        pending: List[int],
        done: int,
        total: int,
    ) -> None:
        for index in pending:
            job = jobs[index]
            cell = report.cells[index]
            attempt = 0
            while True:
                try:
                    outcome = _execute(job, attempt, self.timeout)
                except Exception as exc:
                    attempt += 1
                    cell.attempts = attempt
                    if attempt <= self.max_retries:
                        cell.events.append(f"retry after {type(exc).__name__}: {exc}")
                        self._backoff(job.cell, attempt)
                        continue
                    self._fail_cell(
                        cell, f"{type(exc).__name__}: {exc}",
                        isinstance(exc, CellTimeout),
                    )
                    if self.policy == FAIL_FAST:
                        raise SimulationError(
                            f"simulation failed for cell ({job.cell}): {exc}"
                        ) from exc
                    break
                attempt += 1
                done += 1
                cell.attempts = attempt
                cell.elapsed = outcome[1]
                results[index] = self._finish(job, keys[index], outcome, done, total)
                cell.status = "ok"
                break

    def _new_pool(self, pending_count: int) -> ProcessPoolExecutor:
        kwargs: Dict[str, object] = {}
        if self.fault_plan is not None:
            # Explicit plans must reach the workers; env-armed plans get
            # there for free because workers inherit the environment.
            kwargs.update(
                initializer=fault_plans.install_plan,
                initargs=(self.fault_plan.spec_string(),),
            )
        return ProcessPoolExecutor(
            max_workers=min(self.workers, pending_count), **kwargs
        )

    def _run_pool(
        self,
        jobs: List[SimJob],
        keys: List[Optional[str]],
        results: List[Optional[SimulationResult]],
        report: MatrixReport,
        pending: List[int],
        done: int,
        total: int,
    ) -> None:
        consumed = {index: 0 for index in pending}
        to_submit = list(pending)
        futures: Dict["Future[Tuple[SimulationResult, float]]", int] = {}
        restarts = 0
        pool = self._new_pool(len(pending))
        try:
            while to_submit or futures:
                broken = False
                while to_submit and not broken:
                    index = to_submit[0]
                    try:
                        future = pool.submit(
                            _execute, jobs[index], consumed[index], self.timeout
                        )
                    except (BrokenProcessPool, RuntimeError):
                        # The pool broke between harvest and submit; the
                        # cell never started, so it keeps its attempt count.
                        broken = True
                        break
                    futures[future] = index
                    to_submit.pop(0)

                if not broken and futures:
                    ready, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                    completed = []
                    for future in ready:
                        if isinstance(future.exception(), BrokenProcessPool):
                            broken = True
                        else:
                            completed.append(future)
                    for future in completed:
                        index = futures.pop(future)
                        cell = report.cells[index]
                        exc = future.exception()
                        consumed[index] += 1
                        cell.attempts = consumed[index]
                        if exc is not None:
                            if consumed[index] <= self.max_retries:
                                cell.events.append(
                                    f"retry after {type(exc).__name__}: {exc}"
                                )
                                self._backoff(jobs[index].cell, consumed[index])
                                to_submit.append(index)
                                continue
                            self._fail_cell(
                                cell, f"{type(exc).__name__}: {exc}",
                                isinstance(exc, CellTimeout),
                            )
                            if self.policy == FAIL_FAST:
                                raise SimulationError(
                                    f"simulation failed for cell "
                                    f"({jobs[index].cell}): {exc}"
                                ) from exc
                            continue
                        done += 1
                        outcome = future.result()
                        cell.elapsed = outcome[1]
                        results[index] = self._finish(
                            jobs[index], keys[index], outcome, done, total
                        )
                        cell.status = "ok"

                if broken:
                    restarts += 1
                    report.pool_restarts = restarts
                    interrupted = sorted(futures.values())
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    exhausted = restarts > self.max_pool_restarts
                    for index in interrupted:
                        # The in-flight attempt was consumed by the crash;
                        # requeued cells resume at the next attempt number,
                        # so first-attempt-only injected faults cannot
                        # re-fire and the matrix converges.
                        consumed[index] += 1
                        cell = report.cells[index]
                        cell.attempts = consumed[index]
                        if exhausted:
                            cell.events.append(
                                f"worker crash (pool restart {restarts} exceeds "
                                f"budget {self.max_pool_restarts})"
                            )
                        else:
                            cell.events.append(
                                "interrupted by worker crash; requeued "
                                f"(pool restart {restarts})"
                            )
                            to_submit.append(index)
                    if exhausted:
                        stranded = interrupted + [
                            i for i in to_submit if i not in interrupted
                        ]
                        to_submit = []
                        for index in stranded:
                            self._fail_cell(
                                report.cells[index],
                                f"worker pool broke {restarts} times "
                                f"(max_pool_restarts={self.max_pool_restarts})",
                                False,
                            )
                        if self.policy == FAIL_FAST:
                            names = ", ".join(jobs[i].cell for i in stranded[:5])
                            raise SimulationError(
                                f"worker pool broke {restarts} times "
                                f"(max_pool_restarts={self.max_pool_restarts}); "
                                f"stranded cells: {names}"
                            )
                    else:
                        self._log(
                            f"worker pool broken; rebuilding "
                            f"(restart {restarts}/{self.max_pool_restarts}, "
                            f"{len(interrupted)} cell(s) requeued)"
                        )
                        pool = self._new_pool(len(pending))
        finally:
            # Cancel queued cells on failure so a bad matrix fails fast
            # instead of draining the whole backlog first.
            pool.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------------- #
# Process-wide default runner
# --------------------------------------------------------------------- #

_default_runner: Optional[ParallelRunner] = None


def get_default_runner() -> ParallelRunner:
    """The runner used when an experiment API is called without one.

    First use builds it from the environment: ``REPRO_WORKERS`` (a count or
    ``auto``; default 1, keeping library calls serial and deterministic),
    ``REPRO_CACHE_DIR`` (default: no cache), ``REPRO_PROGRESS=1``, plus the
    resilience knobs ``REPRO_FAILURE_POLICY``, ``REPRO_MAX_RETRIES``,
    ``REPRO_CELL_TIMEOUT`` and ``REPRO_POOL_RESTARTS``.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = ParallelRunner(
            workers=_env_workers(),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        )
    return _default_runner


def set_default_runner(runner: Optional[ParallelRunner]) -> Optional[ParallelRunner]:
    """Install (or, with ``None``, reset) the process-wide default runner.

    Returns the previously installed runner so callers can restore it.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


def configure_default_runner(
    workers: Union[int, str, None] = 1,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[bool] = None,
    *,
    policy: Optional[str] = None,
    max_retries: Optional[int] = None,
    timeout: Optional[float] = None,
    backoff_base: float = 0.25,
    max_pool_restarts: Optional[int] = None,
    faults: Union["fault_plans.FaultPlan", str, None] = None,
) -> ParallelRunner:
    """Build and install the default runner; returns it."""
    runner = ParallelRunner(
        workers=workers, cache_dir=cache_dir, progress=progress,
        policy=policy, max_retries=max_retries, timeout=timeout,
        backoff_base=backoff_base, max_pool_restarts=max_pool_restarts,
        faults=faults,
    )
    set_default_runner(runner)
    return runner


def run_jobs(
    jobs: Iterable[SimJob], runner: Optional[ParallelRunner] = None
) -> List[SimulationResult]:
    """Run jobs on ``runner`` (or the process-wide default)."""
    return (runner or get_default_runner()).run(jobs)
