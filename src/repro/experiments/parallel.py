"""Backward-compatible facade over :mod:`repro.fabric`.

The parallel-execution machinery that lived here — job identity, the
result cache, the retry/timeout/failure-policy scheduler and the
process-pool loop — moved to the :mod:`repro.fabric` package (jobs /
store / backends / scheduler as separate seams; see ``docs/fabric.md``).
This module re-exports the historical surface unchanged, so existing
imports, the ``REPRO_*`` environment knobs and every error message keep
working bit-for-bit.  New code should import from :mod:`repro.fabric`;
new capabilities (streaming ``run_iter``, cross-submission dedup via
:class:`repro.fabric.Scheduler`, pluggable backends) live only there.
"""

from __future__ import annotations

from ..fabric.api import (
    ParallelRunner,
    configure_default_runner,
    get_default_runner,
    run_iter,
    run_jobs,
    set_default_runner,
)
from ..fabric.backends.base import _cell_deadline, execute_cell
from ..fabric.jobs import (
    CACHE_VERSION,
    CONTINUE,
    FAIL_FAST,
    FAILURE_POLICIES,
    CellTimeout,
    ConfigurationError,
    SimJob,
    SimulationError,
    _env_float,
    _env_int,
    _env_workers,
    _jitter,
    job_key,
    single,
    smt,
    workload_fingerprint,
)
from ..fabric.scheduler import (
    CellReport,
    MatrixError,
    MatrixReport,
    Scheduler,
    SchedulerConfig,
    Submission,
)
from ..fabric.store import (
    _CACHE_MAGIC,
    _DIGEST_LEN,
    STALE_TMP_SECONDS,
    ResultCache,
)

#: Legacy private name for the worker entry point (pre-fabric callers and
#: tests execute cells through this).
_execute = execute_cell

__all__ = [
    "CACHE_VERSION",
    "CONTINUE",
    "CellReport",
    "CellTimeout",
    "ConfigurationError",
    "FAILURE_POLICIES",
    "FAIL_FAST",
    "MatrixError",
    "MatrixReport",
    "ParallelRunner",
    "ResultCache",
    "STALE_TMP_SECONDS",
    "Scheduler",
    "SchedulerConfig",
    "SimJob",
    "SimulationError",
    "Submission",
    "_CACHE_MAGIC",
    "_DIGEST_LEN",
    "_cell_deadline",
    "_env_float",
    "_env_int",
    "_env_workers",
    "_execute",
    "_jitter",
    "configure_default_runner",
    "execute_cell",
    "get_default_runner",
    "job_key",
    "run_iter",
    "run_jobs",
    "set_default_runner",
    "single",
    "smt",
    "workload_fingerprint",
]
