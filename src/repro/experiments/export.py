"""Result export: CSV and JSON.

The paper's artifact parses experiment output into CSV files
(``scripts/parse_data.sh``); this module is the equivalent for our
figure drivers.  ``python -m repro.experiments --csv-dir out/ figXX``
writes one CSV per reproduced figure.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from .reporting import FigureResult


def _slug(name: str) -> str:
    return "".join(c.lower() if c.isalnum() else "_" for c in name).strip("_")


def write_csv(result: FigureResult, directory: Union[str, Path]) -> Path:
    """Write one figure's rows to ``<directory>/<figure>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{_slug(result.figure)}.csv"
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return path


def write_json(results: Iterable[FigureResult], path: Union[str, Path]) -> Path:
    """Write several figures' results to one JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [
        {
            "figure": r.figure,
            "description": r.description,
            "headers": r.headers,
            "rows": r.rows,
            "notes": r.notes,
        }
        for r in results
    ]
    path.write_text(json.dumps(payload, indent=2))
    return path


def read_csv(path: Union[str, Path]) -> FigureResult:
    """Round-trip helper: load a CSV written by :func:`write_csv`."""
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        headers = next(reader)
        result = FigureResult(figure=path.stem, description="", headers=headers)
        for row in reader:
            result.add_row(*row)
    return result
