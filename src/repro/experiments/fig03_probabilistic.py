"""Figure 3: IPC improvement of probabilistic instruction-priority LRU.

The motivation study: a modified STLB LRU evicts a *data* translation
with probability P (an *instruction* translation otherwise).  High P
(favouring instruction retention) should win, low P should lose —
exactly the asymmetry iTP exploits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.params import scaled_config
from ..workloads.server import server_suite
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, geomean

P_VALUES = (0.2, 0.4, 0.6, 0.8)


def run(
    p_values: Sequence[float] = P_VALUES,
    server_count: int = 4,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 3",
        description="IPC improvement of probabilistic LRU (evict data with prob P) vs LRU",
        headers=["P", "workload", "ipc_improvement_pct"],
        notes=["paper: P=0.8 gains a few %, P=0.2 loses; monotonic in P"],
    )
    base = scaled_config()
    workloads = server_suite(server_count)
    # Baseline and every P value go out as one batch.
    jobs = [SimJob(base, (wl,), warmup, measure, topology=topology, label="lru") for wl in workloads]
    for p in p_values:
        cfg = replace(base.with_policies(stlb="problru"), problru_p=p)
        jobs.extend(
            SimJob(cfg, (wl,), warmup, measure, topology=topology, label=f"problru_p{p}")
            for wl in workloads
        )
    results = iter(run_jobs(jobs, runner))
    baseline = {wl.name: next(results).ipc for wl in workloads}
    for p in p_values:
        ratios = []
        for wl in workloads:
            ratio = next(results).ipc / baseline[wl.name]
            ratios.append(ratio)
            result.add_row(p, wl.name, 100.0 * (ratio - 1.0))
        result.add_row(p, "GEOMEAN", 100.0 * (geomean(ratios) - 1.0))
    return result
