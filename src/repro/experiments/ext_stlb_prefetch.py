"""Extension study: STLB prefetching with and without iTP+xPTP (Section 7).

The paper states iTP is orthogonal to STLB prefetching.  This driver
measures a sequential and a distance translation prefetcher on the LRU
baseline and on top of iTP+xPTP.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.params import scaled_config
from ..workloads.server import server_suite
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, geomean

SCHEMES = (
    ("lru", {}, None),
    ("lru+seq-pf", {}, "sequential"),
    ("lru+dist-pf", {}, "distance"),
    ("itp+xptp", {"stlb": "itp", "l2c": "xptp"}, None),
    ("itp+xptp+seq-pf", {"stlb": "itp", "l2c": "xptp"}, "sequential"),
)


def run(
    schemes: Sequence = SCHEMES,
    server_count: int = 3,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Extension: STLB prefetching",
        description="Translation prefetchers on LRU and on iTP+xPTP (Section 7)",
        headers=[
            "scheme", "geomean_ipc_improvement_pct", "mean_stlb_mpki",
            "mean_pf_fills_pki",
        ],
        notes=["paper: iTP is orthogonal to STLB prefetching (no numbers given)"],
    )
    base = scaled_config()
    workloads = server_suite(server_count)
    jobs = [SimJob(base, (wl,), warmup, measure, topology=topology, label="lru") for wl in workloads]
    for name, policies, prefetcher in schemes:
        cfg = replace(base.with_policies(**policies), stlb_prefetcher=prefetcher)
        jobs.extend(
            SimJob(cfg, (wl,), warmup, measure, topology=topology, label=name) for wl in workloads
        )
    results = iter(run_jobs(jobs, runner))
    baseline = {wl.name: next(results).ipc for wl in workloads}
    for name, policies, prefetcher in schemes:
        ratios, mpki, fills = [], [], []
        for wl in workloads:
            r = next(results)
            ratios.append(r.ipc / baseline[wl.name])
            mpki.append(r.get("stlb.mpki"))
            fills.append(1000.0 * r.get("stlb.prefetch_fills") / r.get("instructions"))
        result.add_row(
            name,
            100.0 * (geomean(ratios) - 1.0),
            sum(mpki) / len(mpki),
            sum(fills) / len(fills),
        )
    return result
