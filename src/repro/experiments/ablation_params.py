"""Ablation: iTP's N/M and xPTP's K (Section 5.1 parameter exploration).

The paper reports that N and M cause little variation while K matters
most, with mid-stack values (K=6, K=8) best.  This driver regenerates the
sweep on the scaled system.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.params import ITPConfig, XPTPConfig, scaled_config
from ..workloads.server import server_suite
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, geomean

NM_VALUES = ((1, 2), (2, 4), (2, 8), (4, 8), (6, 8))
K_VALUES = (1, 2, 4, 6, 8)


def run_nm(
    nm_values: Sequence = NM_VALUES,
    server_count: int = 2,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Ablation N/M",
        description="iTP insertion depth N and data-promotion height M sweep (iTP alone)",
        headers=["N", "M", "geomean_ipc_improvement_pct", "mean_impki", "mean_dmpki"],
        notes=["paper: N/M cause no significant performance variation"],
    )
    base = scaled_config()
    workloads = server_suite(server_count)
    jobs = [SimJob(base, (wl,), warmup, measure, topology=topology, label="lru") for wl in workloads]
    for n, m in nm_values:
        cfg = replace(
            base.with_policies(stlb="itp"),
            itp=ITPConfig(insert_depth_n=n, data_promote_m=m),
        )
        jobs.extend(
            SimJob(cfg, (wl,), warmup, measure, topology=topology, label=f"itp N={n} M={m}")
            for wl in workloads
        )
    results = iter(run_jobs(jobs, runner))
    baseline = {wl.name: next(results).ipc for wl in workloads}
    for n, m in nm_values:
        ratios, impki, dmpki = [], [], []
        for wl in workloads:
            r = next(results)
            ratios.append(r.ipc / baseline[wl.name])
            impki.append(r.get("stlb.impki"))
            dmpki.append(r.get("stlb.dmpki"))
        result.add_row(
            n, m, 100.0 * (geomean(ratios) - 1.0),
            sum(impki) / len(impki), sum(dmpki) / len(dmpki),
        )
    return result


def run_k(
    k_values: Sequence[int] = K_VALUES,
    server_count: int = 2,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Ablation K",
        description="xPTP eviction threshold K sweep (iTP+xPTP)",
        headers=["K", "geomean_ipc_improvement_pct", "mean_l2c_dtmpki"],
        notes=["paper: K has the highest impact; mid-stack values (6, 8) best"],
    )
    base = scaled_config()
    workloads = server_suite(server_count)
    jobs = [SimJob(base, (wl,), warmup, measure, topology=topology, label="lru") for wl in workloads]
    for k in k_values:
        cfg = replace(
            base.with_policies(stlb="itp", l2c="xptp"), xptp=XPTPConfig(k=k)
        )
        jobs.extend(
            SimJob(cfg, (wl,), warmup, measure, topology=topology, label=f"itp+xptp K={k}")
            for wl in workloads
        )
    results = iter(run_jobs(jobs, runner))
    baseline = {wl.name: next(results).ipc for wl in workloads}
    for k in k_values:
        ratios, dtmpki = [], []
        for wl in workloads:
            r = next(results)
            ratios.append(r.ipc / baseline[wl.name])
            dtmpki.append(r.get("l2c.dtmpki"))
        result.add_row(
            k, 100.0 * (geomean(ratios) - 1.0), sum(dtmpki) / len(dtmpki)
        )
    return result
