"""CLI entry point: ``python -m repro.experiments [options] [figure ...]``.

Figure names: fig01, fig02, fig03, fig04, fig08, fig09, fig10, fig11,
fig12, fig13, fig14, ablation_params, ablation_adaptive,
ext_stlb_prefetch, or ``all``.  With ``--csv-dir DIR`` each reproduced
figure is also written to ``DIR/<figure>.csv``.  ``--workers N`` fans
the simulations of each figure over N processes (default: all cores);
``--cache-dir DIR`` reuses previously computed simulation results;
``--topology NAME`` runs every figure on a non-default machine graph
(a preset such as ``split-stlb`` or ``no-llc`` — see
``repro.topology.presets``).

Fault tolerance (see ``docs/robustness.md``): ``--failure-policy
fail-fast|continue`` (continue finishes the whole matrix and reports the
failed cells instead of aborting on the first), ``--max-retries N``
re-runs failed or timed-out cells, and ``--cell-timeout SECONDS`` bounds
each cell's wall clock.  A run with failed cells prints the per-cell
``MatrixReport`` and exits non-zero.
"""

from __future__ import annotations

import os
import sys
import time

from ..kernel import resolve_engine
from . import (
    ablation_adaptive,
    ablation_params,
    ext_stlb_prefetch,
    fig01_itlb_cost,
    fig02_stlb_impki,
    fig03_probabilistic,
    fig04_mpki_breakdown,
    fig08_main_comparison,
    fig09_mpki_latency,
    fig10_stlb_breakdown,
    fig11_llc_sensitivity,
    fig12_itlb_sensitivity,
    fig13_large_pages,
    fig14_split_stlb,
)
from .export import write_csv
from ..fabric import (
    FAILURE_POLICIES,
    ConfigurationError,
    MatrixError,
    ParallelRunner,
    set_default_runner,
)
from .reporting import format_figure


def _results(value):
    """Normalise run() return types to a list of FigureResult."""
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


RUNNERS = {
    "fig01": fig01_itlb_cost.run,
    "fig02": fig02_stlb_impki.run,
    "fig03": fig03_probabilistic.run,
    "fig04": fig04_mpki_breakdown.run,
    "fig08": fig08_main_comparison.run,
    "fig09": fig09_mpki_latency.run,
    "fig10": fig10_stlb_breakdown.run,
    "fig11": fig11_llc_sensitivity.run,
    "fig12": fig12_itlb_sensitivity.run,
    "fig13": fig13_large_pages.run,
    "fig14": fig14_split_stlb.run,
    "ablation_params": lambda **kw: [
        ablation_params.run_nm(**kw), ablation_params.run_k(**kw)
    ],
    "ablation_adaptive": ablation_adaptive.run,
    "ext_stlb_prefetch": ext_stlb_prefetch.run,
}


class _OptionError(Exception):
    pass


def _take_option(argv, name):
    """Pop ``name VALUE`` from argv, returning VALUE (or None if absent)."""
    if name not in argv:
        return None
    index = argv.index(name)
    try:
        value = argv[index + 1]
    except IndexError:
        raise _OptionError(f"{name} needs an argument") from None
    del argv[index:index + 2]
    return value


def main(argv) -> int:
    argv = list(argv)
    try:
        csv_dir = _take_option(argv, "--csv-dir")
        workers = _take_option(argv, "--workers")
        cache_dir = _take_option(argv, "--cache-dir")
        topology = _take_option(argv, "--topology")
        failure_policy = _take_option(argv, "--failure-policy")
        max_retries = _take_option(argv, "--max-retries")
        cell_timeout = _take_option(argv, "--cell-timeout")
        if failure_policy is not None and failure_policy not in FAILURE_POLICIES:
            raise _OptionError(
                f"--failure-policy takes one of {', '.join(FAILURE_POLICIES)}, "
                f"got {failure_policy!r}"
            )
        if max_retries is not None and not max_retries.isdigit():
            raise _OptionError(f"--max-retries takes a count, got {max_retries!r}")
        if cell_timeout is not None:
            try:
                float(cell_timeout)
            except ValueError:
                raise _OptionError(
                    f"--cell-timeout takes seconds, got {cell_timeout!r}"
                ) from None
        if topology is not None:
            # Fail fast on a bad preset name before any simulation runs.
            from ..common.params import scaled_config
            from ..topology.presets import resolve_topology
            from ..topology.spec import TopologyError

            try:
                resolve_topology(topology, scaled_config())
            except TopologyError as exc:
                raise _OptionError(str(exc)) from None
        if workers is None:
            workers = os.cpu_count() or 1
        elif not (workers.isdigit() or workers == "auto"):
            raise _OptionError(f"--workers takes a count or 'auto', got {workers!r}")
        try:
            # Jobs resolve their engine lazily; a bad REPRO_ENGINE value
            # should fail here with a usage error, not mid-matrix.
            resolve_engine(None)
        except ValueError as exc:
            raise _OptionError(str(exc)) from None
    except _OptionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    names = argv or ["all"]
    if names == ["all"]:
        names = list(RUNNERS)
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(RUNNERS)} or 'all'", file=sys.stderr)
        return 2
    try:
        runner = ParallelRunner(
            workers=workers, cache_dir=cache_dir, progress=True,
            policy=failure_policy,
            max_retries=None if max_retries is None else int(max_retries),
            timeout=None if cell_timeout is None else float(cell_timeout),
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    previous = set_default_runner(runner)
    run_kwargs = {} if topology is None else {"topology": topology}
    failed_figures = []
    try:
        for name in names:
            start = time.time()
            try:
                figures = _results(RUNNERS[name](**run_kwargs))
            except MatrixError as exc:
                # Collect-and-continue: the matrix finished, some cells
                # failed.  Report them and move on to the next figure.
                failed_figures.append(name)
                print(exc.report.summary(), file=sys.stderr)
                print(f"[{name}: FAILED — {exc}]\n", file=sys.stderr)
                continue
            for figure in figures:
                print(format_figure(figure))
                print()
                if csv_dir is not None:
                    path = write_csv(figure, csv_dir)
                    print(f"[wrote {path}]")
            print(f"[{name}: {time.time() - start:.0f}s]\n")
    finally:
        set_default_runner(previous)
    if failed_figures:
        print(f"failed figures: {', '.join(failed_figures)}", file=sys.stderr)
        return 1
    return 0


def cli() -> None:
    """Console-script entry point (``repro-experiments``)."""
    raise SystemExit(main(sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
