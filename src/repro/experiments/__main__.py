"""CLI entry point: ``python -m repro.experiments [options] [figure ...]``.

Figure names: fig01, fig02, fig03, fig04, fig08, fig09, fig10, fig11,
fig12, fig13, fig14, ablation_params, ablation_adaptive,
ext_stlb_prefetch, or ``all``.  With ``--csv-dir DIR`` each reproduced
figure is also written to ``DIR/<figure>.csv``.  ``--workers N`` fans
the simulations of each figure over N processes (default: all cores);
``--cache-dir DIR`` reuses previously computed simulation results;
``--topology NAME`` runs every figure on a non-default machine graph
(a preset such as ``split-stlb`` or ``no-llc`` — see
``repro.topology.presets``).
"""

from __future__ import annotations

import os
import sys
import time

from . import (
    ablation_adaptive,
    ablation_params,
    ext_stlb_prefetch,
    fig01_itlb_cost,
    fig02_stlb_impki,
    fig03_probabilistic,
    fig04_mpki_breakdown,
    fig08_main_comparison,
    fig09_mpki_latency,
    fig10_stlb_breakdown,
    fig11_llc_sensitivity,
    fig12_itlb_sensitivity,
    fig13_large_pages,
    fig14_split_stlb,
)
from .export import write_csv
from .parallel import ParallelRunner, set_default_runner
from .reporting import format_figure


def _results(value):
    """Normalise run() return types to a list of FigureResult."""
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


RUNNERS = {
    "fig01": fig01_itlb_cost.run,
    "fig02": fig02_stlb_impki.run,
    "fig03": fig03_probabilistic.run,
    "fig04": fig04_mpki_breakdown.run,
    "fig08": fig08_main_comparison.run,
    "fig09": fig09_mpki_latency.run,
    "fig10": fig10_stlb_breakdown.run,
    "fig11": fig11_llc_sensitivity.run,
    "fig12": fig12_itlb_sensitivity.run,
    "fig13": fig13_large_pages.run,
    "fig14": fig14_split_stlb.run,
    "ablation_params": lambda **kw: [
        ablation_params.run_nm(**kw), ablation_params.run_k(**kw)
    ],
    "ablation_adaptive": ablation_adaptive.run,
    "ext_stlb_prefetch": ext_stlb_prefetch.run,
}


class _OptionError(Exception):
    pass


def _take_option(argv, name):
    """Pop ``name VALUE`` from argv, returning VALUE (or None if absent)."""
    if name not in argv:
        return None
    index = argv.index(name)
    try:
        value = argv[index + 1]
    except IndexError:
        raise _OptionError(f"{name} needs an argument") from None
    del argv[index:index + 2]
    return value


def main(argv) -> int:
    argv = list(argv)
    try:
        csv_dir = _take_option(argv, "--csv-dir")
        workers = _take_option(argv, "--workers")
        cache_dir = _take_option(argv, "--cache-dir")
        topology = _take_option(argv, "--topology")
        if topology is not None:
            # Fail fast on a bad preset name before any simulation runs.
            from ..common.params import scaled_config
            from ..topology.presets import resolve_topology
            from ..topology.spec import TopologyError

            try:
                resolve_topology(topology, scaled_config())
            except TopologyError as exc:
                raise _OptionError(str(exc)) from None
        if workers is None:
            workers = os.cpu_count() or 1
        elif not (workers.isdigit() or workers == "auto"):
            raise _OptionError(f"--workers takes a count or 'auto', got {workers!r}")
    except _OptionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    names = argv or ["all"]
    if names == ["all"]:
        names = list(RUNNERS)
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(RUNNERS)} or 'all'", file=sys.stderr)
        return 2
    runner = ParallelRunner(workers=workers, cache_dir=cache_dir, progress=True)
    previous = set_default_runner(runner)
    run_kwargs = {} if topology is None else {"topology": topology}
    try:
        for name in names:
            start = time.time()
            for figure in _results(RUNNERS[name](**run_kwargs)):
                print(format_figure(figure))
                print()
                if csv_dir is not None:
                    path = write_csv(figure, csv_dir)
                    print(f"[wrote {path}]")
            print(f"[{name}: {time.time() - start:.0f}s]\n")
    finally:
        set_default_runner(previous)
    return 0


def cli() -> None:
    """Console-script entry point (``repro-experiments``)."""
    raise SystemExit(main(sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
