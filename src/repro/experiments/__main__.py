"""CLI entry point: ``python -m repro.experiments [--csv-dir DIR] [figure ...]``.

Figure names: fig01, fig02, fig03, fig04, fig08, fig09, fig10, fig11,
fig12, fig13, fig14, ablation_params, ablation_adaptive,
ext_stlb_prefetch, or ``all``.  With ``--csv-dir DIR`` each reproduced
figure is also written to ``DIR/<figure>.csv``.
"""

from __future__ import annotations

import sys
import time

from . import (
    ablation_adaptive,
    ablation_params,
    ext_stlb_prefetch,
    fig01_itlb_cost,
    fig02_stlb_impki,
    fig03_probabilistic,
    fig04_mpki_breakdown,
    fig08_main_comparison,
    fig09_mpki_latency,
    fig10_stlb_breakdown,
    fig11_llc_sensitivity,
    fig12_itlb_sensitivity,
    fig13_large_pages,
    fig14_split_stlb,
)
from .export import write_csv
from .reporting import format_figure


def _results(value):
    """Normalise run() return types to a list of FigureResult."""
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


RUNNERS = {
    "fig01": fig01_itlb_cost.run,
    "fig02": fig02_stlb_impki.run,
    "fig03": fig03_probabilistic.run,
    "fig04": fig04_mpki_breakdown.run,
    "fig08": fig08_main_comparison.run,
    "fig09": fig09_mpki_latency.run,
    "fig10": fig10_stlb_breakdown.run,
    "fig11": fig11_llc_sensitivity.run,
    "fig12": fig12_itlb_sensitivity.run,
    "fig13": fig13_large_pages.run,
    "fig14": fig14_split_stlb.run,
    "ablation_params": lambda: [ablation_params.run_nm(), ablation_params.run_k()],
    "ablation_adaptive": ablation_adaptive.run,
    "ext_stlb_prefetch": ext_stlb_prefetch.run,
}


def main(argv) -> int:
    argv = list(argv)
    csv_dir = None
    if "--csv-dir" in argv:
        index = argv.index("--csv-dir")
        try:
            csv_dir = argv[index + 1]
        except IndexError:
            print("--csv-dir needs a directory argument", file=sys.stderr)
            return 2
        del argv[index:index + 2]
    names = argv or ["all"]
    if names == ["all"]:
        names = list(RUNNERS)
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(RUNNERS)} or 'all'", file=sys.stderr)
        return 2
    for name in names:
        start = time.time()
        for figure in _results(RUNNERS[name]()):
            print(format_figure(figure))
            print()
            if csv_dir is not None:
                path = write_csv(figure, csv_dir)
                print(f"[wrote {path}]")
        print(f"[{name}: {time.time() - start:.0f}s]\n")
    return 0


def cli() -> None:
    """Console-script entry point (``repro-experiments``)."""
    raise SystemExit(main(sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
