"""Shared experiment machinery.

Encodes Table 2 (the policy matrix) and provides comparison helpers used
by every figure driver.  All experiments run on the 1/4-scale system of
:func:`repro.common.params.scaled_config` against the scaled workload
suites (DESIGN.md §3).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..common.params import SystemConfig, scaled_config
from ..core.simulator import SimulationResult
from ..topology.spec import TopologySpec
from ..topology.suites import SUITES, suite_for
from ..workloads.base import SyntheticWorkload
from ..workloads.mixes import SMTMix
from ..fabric import ParallelRunner, SimJob, run_iter

#: Default simulation windows (instructions).  The paper uses 50 M + 100 M;
#: these are scaled for Python speed (DESIGN.md §3).
WARMUP = 60_000
MEASURE = 200_000

#: Table 2 of the paper: technique -> replacement policy per structure
#: (structures not listed use LRU).  Derived from the policy-suite registry
#: (:data:`repro.topology.suites.SUITES`) — the single source of truth for
#: technique names, ordering and per-structure assignments.
POLICY_MATRIX: "OrderedDict[str, Dict[str, str]]" = OrderedDict(
    (name, suite.policies()) for name, suite in SUITES.items()
)


def config_for(technique: str, base: Optional[SystemConfig] = None) -> SystemConfig:
    """System configuration for a Table 2 technique name.

    Unknown techniques raise a ``ValueError`` whose candidate list comes
    from the suite registry itself.
    """
    suite = suite_for(technique)
    base = base or scaled_config()
    return suite.apply(base)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; empty input returns 0."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Comparison:
    """Results of running several techniques over a workload set."""

    baseline: str
    # technique -> workload name -> result
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def speedups(self, technique: str) -> List[float]:
        """Per-workload IPC ratios vs the baseline technique."""
        base = self.results[self.baseline]
        return [
            self.results[technique][w].ipc / base[w].ipc
            for w in self.results[technique]
            if base[w].ipc > 0
        ]

    def geomean_speedup(self, technique: str) -> float:
        return geomean(self.speedups(technique))

    def geomean_improvement_percent(self, technique: str) -> float:
        return 100.0 * (self.geomean_speedup(technique) - 1.0)

    def mean_metric(self, technique: str, metric: str) -> float:
        rows = self.results[technique]
        if not rows:
            return 0.0
        return sum(r.get(metric) for r in rows.values()) / len(rows)


def _collect(
    jobs: List[SimJob],
    slots: Sequence[tuple],
    techniques: Sequence[str],
    baseline: str,
    runner: Optional[ParallelRunner],
) -> Comparison:
    """Stream the matrix and place results by index.

    ``run_iter`` yields cells as they settle (cached cells immediately,
    simulated cells in completion order), so progress is visible while the
    matrix is still running; placement by index keeps the result grid
    independent of completion order.
    """
    grid: List[Optional[SimulationResult]] = [None] * len(jobs)
    for index, _cell, result in run_iter(jobs, runner):
        grid[index] = result
    comparison = Comparison(baseline=baseline)
    for technique in techniques:
        comparison.results[technique] = {}
    for (technique, name), result in zip(slots, grid):
        assert result is not None  # fail-fast/continue both raise before here
        comparison.results[technique][name] = result
    return comparison


def compare_single_thread(
    techniques: Sequence[str],
    workloads: Sequence[SyntheticWorkload],
    base: Optional[SystemConfig] = None,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    baseline: str = "lru",
    runner: Optional[ParallelRunner] = None,
    topology: Union[None, str, TopologySpec] = None,
) -> Comparison:
    """Run each technique over each workload on one hardware thread.

    The full technique x workload matrix is fanned out through ``runner``
    (default: the process-wide runner — serial unless configured otherwise).
    ``topology`` selects a non-default machine graph by preset name or spec.
    """
    jobs = [
        SimJob(config_for(technique, base), (wl,), warmup, measure,
               label=technique, topology=topology)
        for technique in techniques
        for wl in workloads
    ]
    slots = [(technique, wl.name) for technique in techniques for wl in workloads]
    return _collect(jobs, slots, techniques, baseline, runner)


def compare_smt(
    techniques: Sequence[str],
    mixes: Sequence[SMTMix],
    base: Optional[SystemConfig] = None,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    baseline: str = "lru",
    runner: Optional[ParallelRunner] = None,
    topology: Union[None, str, TopologySpec] = None,
) -> Comparison:
    """Run each technique over each two-thread mix on the SMT core."""
    jobs = [
        SimJob(config_for(technique, base), mix.workloads, warmup, measure,
               label=technique, topology=topology)
        for technique in techniques
        for mix in mixes
    ]
    slots = [(technique, mix.name) for technique in techniques for mix in mixes]
    return _collect(jobs, slots, techniques, baseline, runner)
