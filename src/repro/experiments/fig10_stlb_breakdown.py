"""Figure 10: STLB MPKI breakdown (iMPKI vs dMPKI), LRU vs iTP.

The signature result of iTP: instruction STLB MPKI drops substantially
while data STLB MPKI rises — the deliberate trade Section 4.1 makes.
"""

from __future__ import annotations

from typing import Optional

from ..workloads.mixes import smt_mixes
from ..workloads.server import server_suite
from ..fabric import ParallelRunner
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, compare_single_thread, compare_smt

TECHNIQUES = ("lru", "itp")


def run(
    server_count: int = 4,
    per_category: int = 1,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 10",
        description="STLB MPKI breakdown: instruction (iMPKI) vs data (dMPKI), LRU vs iTP",
        headers=["scenario", "technique", "impki", "dmpki"],
        notes=["paper: iTP reduces iMPKI and increases dMPKI in both scenarios"],
    )
    single = compare_single_thread(
        TECHNIQUES, server_suite(server_count), None, warmup, measure, runner=runner, topology=topology
    )
    smt = compare_smt(
        TECHNIQUES, smt_mixes(per_category), None, warmup, measure, runner=runner, topology=topology
    )
    for scenario, comparison in (("1T", single), ("2T", smt)):
        for technique in TECHNIQUES:
            result.add_row(
                scenario,
                technique,
                comparison.mean_metric(technique, "stlb.impki"),
                comparison.mean_metric(technique, "stlb.dmpki"),
            )
    return result
