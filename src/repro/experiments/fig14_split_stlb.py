"""Figure 14: unified STLB with iTP+xPTP vs split STLB designs.

Compares, against a baseline unified STLB with LRU (scaled: 384 entries):

* unified STLB + iTP+xPTP (same capacity);
* split STLB (half capacity each for instruction/data) with LRU;
* 2x-capacity variants of both.

Expected shape (Section 6.6): an equal-capacity split STLB is slightly
behind unified iTP+xPTP; doubling the split STLB's capacity roughly
matches the 1x unified iTP+xPTP; the 2x unified STLB with iTP+xPTP beats
the 2x split design.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.params import TLBConfig, scaled_config
from ..workloads.server import server_suite
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, geomean


def _stlb(entries: int, name: str = "STLB") -> TLBConfig:
    return TLBConfig(name, entries=entries, associativity=12, latency=8, mshr_entries=16)


def _designs(base_entries: int) -> Sequence:
    base = scaled_config()
    return (
        ("unified-1x LRU (baseline)", replace(base, stlb=_stlb(base_entries))),
        (
            "unified-1x iTP+xPTP",
            replace(base, stlb=_stlb(base_entries)).with_policies(stlb="itp", l2c="xptp"),
        ),
        (
            "split-1x LRU",
            replace(
                base,
                stlb=_stlb(base_entries // 2, "DSTLB"),
                istlb=_stlb(base_entries // 2, "ISTLB"),
            ),
        ),
        (
            "unified-2x iTP+xPTP",
            replace(base, stlb=_stlb(base_entries * 2)).with_policies(stlb="itp", l2c="xptp"),
        ),
        (
            "split-2x LRU",
            replace(
                base,
                stlb=_stlb(base_entries, "DSTLB"),
                istlb=_stlb(base_entries, "ISTLB"),
            ),
        ),
    )


def run(
    base_entries: int = 384,
    server_count: int = 4,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 14",
        description="Unified STLB with iTP+xPTP vs split STLB (scaled entries)",
        headers=["design", "geomean_ipc_improvement_pct"],
        notes=[
            "paper: split-1x slightly behind unified-1x iTP+xPTP; unified-2x iTP+xPTP "
            "beats split-2x",
        ],
    )
    workloads = server_suite(server_count)
    designs = _designs(base_entries)
    jobs = [
        SimJob(cfg, (wl,), warmup, measure, topology=topology, label=label)
        for label, cfg in designs
        for wl in workloads
    ]
    results = iter(run_jobs(jobs, runner))
    rows = []
    for label, cfg in designs:
        ipcs = {wl.name: next(results).ipc for wl in workloads}
        rows.append((label, ipcs))
    baseline_ipc = rows[0][1]
    for label, ipcs in rows:
        ratios = [ipcs[w] / baseline_ipc[w] for w in ipcs]
        result.add_row(label, 100.0 * (geomean(ratios) - 1.0))
    return result
