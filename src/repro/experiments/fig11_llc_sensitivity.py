"""Figure 11: sensitivity to the LLC replacement policy.

iTP and iTP+xPTP are evaluated with LRU, SHiP and Mockingjay driving LLC
replacement.  Each scenario's baseline uses LRU at STLB and L2C but the
*same* LLC policy, per Section 6.3.  Expected shape: iTP's gains are
stable across LLC policies; iTP+xPTP gains are large with LRU/SHiP and
smaller with Mockingjay.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.params import scaled_config
from ..workloads.mixes import smt_mixes
from ..workloads.server import server_suite
from ..fabric import ParallelRunner
from .reporting import FigureResult
from .runner import MEASURE, WARMUP, compare_single_thread, compare_smt

LLC_POLICIES = ("lru", "ship", "mockingjay")
TECHNIQUES = ("lru", "itp", "itp+xptp")


def run(
    server_count: int = 4,
    per_category: int = 1,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    llc_policies: Sequence[str] = LLC_POLICIES,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 11",
        description="iTP / iTP+xPTP geomean IPC improvement under different LLC policies",
        headers=["scenario", "llc_policy", "technique", "geomean_ipc_improvement_pct"],
        notes=[
            "paper (1T): iTP 2.2/2.3/1.4 and iTP+xPTP 18.9/15.8/1.6 for LRU/SHiP/Mockingjay",
        ],
    )
    for llc in llc_policies:
        base = scaled_config().with_policies(llc=llc)
        single = compare_single_thread(
            TECHNIQUES, server_suite(server_count), base, warmup, measure, runner=runner, topology=topology
        )
        smt = compare_smt(
            TECHNIQUES, smt_mixes(per_category), base, warmup, measure, runner=runner, topology=topology
        )
        for scenario, comparison in (("1T", single), ("2T", smt)):
            for technique in ("itp", "itp+xptp"):
                result.add_row(
                    scenario, llc, technique,
                    comparison.geomean_improvement_percent(technique),
                )
    return result
