"""Plain-text reporting for experiment results.

Each figure driver returns a :class:`FigureResult`; ``format_figure``
renders it as the rows/series the paper's figure reports, suitable both
for terminal output and for pasting into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class FigureResult:
    """Structured output of one figure/table reproduction."""

    figure: str
    description: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"{self.figure}: row width {len(values)} != headers {len(self.headers)}"
            )
        self.rows.append(list(values))

    def column(self, header: str) -> List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.headers, row)) for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "-" * len(line)
    body = "\n".join(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)) for row in cells
    )
    return f"{line}\n{rule}\n{body}" if body else f"{line}\n{rule}"


def format_figure(result: FigureResult) -> str:
    """Render a full figure report."""
    parts = [f"== {result.figure}: {result.description}"]
    parts.append(format_table(result.headers, result.rows))
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
