"""Figure 8: the headline comparison.

IPC improvement over an all-LRU baseline for every Table 2 technique, in
both the single-hardware-thread (8a) and two-hardware-thread SMT (8b)
scenarios.  The paper's qualitative result:

    iTP+xPTP > TDRRIP > PTP > iTP > CHiRP ≈ LRU   (single thread)

with iTP+xPTP best under SMT as well.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.mixes import smt_mixes
from ..workloads.server import server_suite
from ..fabric import ParallelRunner
from .reporting import FigureResult
from .runner import (
    MEASURE,
    POLICY_MATRIX,
    WARMUP,
    Comparison,
    compare_single_thread,
    compare_smt,
)


def run_single_thread(
    techniques: Optional[Sequence[str]] = None,
    server_count: int = 6,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> Comparison:
    techniques = list(techniques or POLICY_MATRIX)
    return compare_single_thread(
        techniques, server_suite(server_count), None, warmup, measure, runner=runner, topology=topology
    )


def run_smt(
    techniques: Optional[Sequence[str]] = None,
    per_category: int = 2,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> Comparison:
    techniques = list(techniques or POLICY_MATRIX)
    return compare_smt(
        techniques, smt_mixes(per_category), None, warmup, measure, runner=runner, topology=topology
    )


def as_figure(comparison: Comparison, figure: str, description: str) -> FigureResult:
    """Summarise a comparison as the violin-style distribution of Figure 8."""
    result = FigureResult(
        figure=figure,
        description=description,
        headers=[
            "technique", "geomean_ipc_improvement_pct",
            "min_pct", "p25_pct", "median_pct", "p75_pct", "max_pct",
        ],
        notes=[
            "paper (1T): iTP+xPTP 18.9, TDRRIP 9.3, PTP 7.1, iTP 2.2, CHiRP ~0",
            "paper (2T): iTP+xPTP 11.4, TDRRIP 8.5, PTP ~0, iTP 0.3",
        ],
    )

    def percentile(sorted_values, q):
        if not sorted_values:
            return 0.0
        index = q * (len(sorted_values) - 1)
        low = int(index)
        high = min(low + 1, len(sorted_values) - 1)
        frac = index - low
        return sorted_values[low] * (1 - frac) + sorted_values[high] * frac

    for technique in comparison.results:
        speedups = sorted(comparison.speedups(technique))
        as_pct = [100.0 * (s - 1.0) for s in speedups]
        result.add_row(
            technique,
            comparison.geomean_improvement_percent(technique),
            as_pct[0],
            percentile(as_pct, 0.25),
            percentile(as_pct, 0.5),
            percentile(as_pct, 0.75),
            as_pct[-1],
        )
    return result


def smt_category_breakdown(
    techniques: Optional[Sequence[str]] = None,
    per_category: int = 2,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    """Geomean IPC improvement per SMT mix category (Section 5.2).

    The paper aggregates all 75 mixes into Figure 8b; this breakdown shows
    the expected gradient — intense mixes (two high-STLB-pressure threads)
    benefit most from translation-aware policies, relaxed mixes least.
    """
    techniques = list(techniques or ("lru", "tdrrip", "itp", "itp+xptp"))
    mixes = smt_mixes(per_category)
    comparison = compare_smt(techniques, mixes, None, warmup, measure, runner=runner, topology=topology)
    by_category = {}
    for mix in mixes:
        by_category.setdefault(mix.category, []).append(mix.name)

    result = FigureResult(
        figure="Figure 8b (by category)",
        description="SMT geomean IPC improvement per co-location category",
        headers=["category", "technique", "geomean_ipc_improvement_pct"],
        notes=["expected gradient: intense >= medium >= relaxed for iTP+xPTP"],
    )
    from .runner import geomean

    base = comparison.results["lru"]
    for category, names in by_category.items():
        for technique in techniques[1:]:
            ratios = [
                comparison.results[technique][name].ipc / base[name].ipc
                for name in names
            ]
            result.add_row(category, technique, 100.0 * (geomean(ratios) - 1.0))
    return result


def run(
    server_count: int = 6,
    per_category: int = 2,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> Sequence[FigureResult]:
    single = run_single_thread(None, server_count, warmup, measure, runner=runner, topology=topology)
    smt = run_smt(None, per_category, warmup, measure, runner=runner, topology=topology)
    return (
        as_figure(single, "Figure 8a", "IPC improvement vs LRU, single hardware thread"),
        as_figure(smt, "Figure 8b", "IPC improvement vs LRU, two hardware threads (SMT)"),
    )
