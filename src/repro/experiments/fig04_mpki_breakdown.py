"""Figure 4: L2C/LLC MPKI breakdown, LRU vs Keep-Instructions (P=0.8).

Decomposes cache misses into the paper's four categories — data (dMPKI),
instruction (iMPKI), data-translation page walks (dtMPKI) and
instruction-translation page walks (itMPKI) — and shows that favouring
instruction translations in the STLB *increases* dtMPKI (Finding 3),
which is what motivates xPTP.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..common.params import scaled_config
from ..workloads.server import server_suite
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import MEASURE, WARMUP


def run(
    server_count: int = 4,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 4",
        description="MPKI breakdown at L2C and LLC: LRU vs Keep-Instructions (P=0.8)",
        headers=["level", "policy", "dMPKI", "iMPKI", "dtMPKI", "itMPKI", "dt_refs_pki"],
        notes=[
            "paper: dtMPKI increases under Keep-Instructions (Finding 3)",
            "model note: the extra data page walks mostly re-hit resident PTE "
            "lines here, so the pressure increase shows up in dt references "
            "per kilo-instruction (dt_refs_pki) more than in dtMPKI",
        ],
    )
    base = scaled_config()
    keep_instr = replace(base.with_policies(stlb="problru"), problru_p=0.8)
    workloads = server_suite(server_count)
    policies = (("LRU", base), ("KeepInstr(P=0.8)", keep_instr))

    jobs = [
        SimJob(cfg, (wl,), warmup, measure, topology=topology, label=policy_name)
        for policy_name, cfg in policies
        for wl in workloads
    ]
    results = iter(run_jobs(jobs, runner))
    for policy_name, cfg in policies:
        sums = {lvl: {c: 0.0 for c in ("d", "i", "dt", "it")} for lvl in ("l2c", "llc")}
        dt_refs_pki = 0.0
        for wl in workloads:
            r = next(results)
            for lvl in ("l2c", "llc"):
                for cat in ("d", "i", "dt", "it"):
                    sums[lvl][cat] += r.get(f"{lvl}.{cat}mpki")
            dt_refs_pki += 1000.0 * r.get("ptw.data_walk_refs") / r.get("instructions")
        n = len(workloads)
        for lvl in ("l2c", "llc"):
            result.add_row(
                lvl.upper(),
                policy_name,
                sums[lvl]["d"] / n,
                sums[lvl]["i"] / n,
                sums[lvl]["dt"] / n,
                sums[lvl]["it"] / n,
                dt_refs_pki / n,
            )
    return result
