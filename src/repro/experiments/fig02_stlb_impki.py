"""Figure 2: STLB MPKI due to instruction references, server vs SPEC.

The paper measures up to ~0.9 instruction STLB MPKI for Qualcomm Server
workloads and near-zero for SPEC (whose code fits the ITLB).  We report
the per-workload instruction STLB MPKI and the class means on the scaled
system.
"""

from __future__ import annotations

from typing import Optional

from ..common.params import scaled_config
from ..workloads.server import server_suite
from ..workloads.speclike import spec_suite
from ..fabric import ParallelRunner, SimJob, run_jobs
from .reporting import FigureResult
from .runner import MEASURE, WARMUP


def run(
    server_count: int = 4,
    spec_count: int = 3,
    warmup: int = WARMUP,
    measure: int = MEASURE,
    runner: Optional[ParallelRunner] = None,
    topology: Optional[str] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Figure 2",
        description="STLB MPKI for instruction references (server vs SPEC)",
        headers=["class", "workload", "stlb_impki"],
        notes=["paper: server up to 0.9 iMPKI, SPEC negligible"],
    )
    cfg = scaled_config()
    suites = [
        ("server", server_suite(server_count)),
        ("spec", spec_suite(spec_count)),
    ]
    jobs = [
        SimJob(cfg, (wl,), warmup, measure, topology=topology, label=label)
        for label, workloads in suites
        for wl in workloads
    ]
    results = iter(run_jobs(jobs, runner))
    for label, workloads in suites:
        values = []
        for wl in workloads:
            impki = next(results).get("stlb.impki")
            values.append(impki)
            result.add_row(label, wl.name, impki)
        result.add_row(label, "MEAN", sum(values) / len(values))
    return result
