"""Quick policy-comparison command line.

``python -m repro`` (or the ``repro-compare`` console script) runs a set of
techniques on a workload and prints IPC, speedups and the key TLB/cache
metrics — the fastest way to poke at the system without writing code.

Examples::

    python -m repro --techniques lru itp itp+xptp --workload server --seed 3
    python -m repro --workload spec --measure 100000
    python -m repro --techniques lru itp --workers 4 --cache-dir .repro-cache
    python -m repro --topology split-stlb --techniques lru itp
    python -m repro --topology multicore-2 --techniques lru itp+xptp
    python -m repro --list
    python -m repro --describe
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from .common.energy import energy_report
from .common.params import SystemConfig, scaled_config
from .fabric import (
    FAILURE_POLICIES,
    ConfigurationError,
    MatrixError,
    ParallelRunner,
    SimJob,
)
from .experiments.reporting import format_table
from .experiments.runner import MEASURE, POLICY_MATRIX, WARMUP, config_for
from .kernel import ENGINES, resolve_engine
from .topology.presets import PRESET_NAMES, resolve_topology
from .topology.spec import TopologyError
from .workloads.phased import PhasedWorkload
from .workloads.server import ServerWorkload
from .workloads.speclike import SpecLikeWorkload

WORKLOAD_KINDS = ("server", "spec", "phased")


def describe(config: SystemConfig) -> str:
    """Render a configuration as a Table 1-style listing."""
    rows = [
        ["ITLB", f"{config.itlb.entries}e", f"{config.itlb.associativity}-way",
         f"{config.itlb.latency}c", "lru"],
        ["DTLB", f"{config.dtlb.entries}e", f"{config.dtlb.associativity}-way",
         f"{config.dtlb.latency}c", "lru"],
        ["STLB", f"{config.stlb.entries}e", f"{config.stlb.associativity}-way",
         f"{config.stlb.latency}c", config.stlb_policy],
        ["L1I", f"{config.l1i.size_bytes // 1024}KB", f"{config.l1i.associativity}-way",
         f"{config.l1i.latency}c", f"lru + {config.l1i.prefetcher or '-'}"],
        ["L1D", f"{config.l1d.size_bytes // 1024}KB", f"{config.l1d.associativity}-way",
         f"{config.l1d.latency}c", f"lru + {config.l1d.prefetcher or '-'}"],
        ["L2C", f"{config.l2c.size_bytes // 1024}KB", f"{config.l2c.associativity}-way",
         f"{config.l2c.latency}c", f"{config.l2c_policy} + {config.l2c.prefetcher or '-'}"],
        ["LLC", f"{config.llc.size_bytes // 1024}KB", f"{config.llc.associativity}-way",
         f"{config.llc.latency}c", config.llc_policy],
        ["DRAM", "-", "-", f"{config.dram.latency}c", "-"],
    ]
    header = format_table(["structure", "capacity", "assoc", "latency", "policy"], rows)
    extras = (
        f"iTP: N={config.itp.insert_depth_n} M={config.itp.data_promote_m} "
        f"Freq={config.itp.freq_bits}b | xPTP: K={config.xptp.k} | "
        f"adaptive: T1={config.adaptive.t1_misses}/"
        f"{config.adaptive.window_instructions} instr"
        f" ({'on' if config.adaptive.enabled else 'off'})"
    )
    return f"{header}\n{extras}"


def make_workload(kind: str, seed: int):
    if kind == "server":
        return ServerWorkload(f"server_{seed}", seed)
    if kind == "spec":
        return SpecLikeWorkload(f"spec_{seed}", seed)
    if kind == "phased":
        return PhasedWorkload(f"phased_{seed}", seed)
    raise ValueError(f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Compare TLB/cache replacement techniques on a synthetic workload.",
    )
    parser.add_argument(
        "--techniques", nargs="+", default=["lru", "itp", "itp+xptp"],
        metavar="TECH", help=f"techniques from Table 2: {', '.join(POLICY_MATRIX)}",
    )
    parser.add_argument("--workload", choices=WORKLOAD_KINDS, default="server")
    parser.add_argument(
        "--topology", default=None, metavar="NAME",
        help="machine graph preset (default: the Table 1 hierarchy); "
             f"one of: {', '.join(PRESET_NAMES)}",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine (default: REPRO_ENGINE, then 'spec'); both "
             "engines produce bit-identical statistics",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup", type=int, default=WARMUP)
    parser.add_argument("--measure", type=int, default=MEASURE)
    parser.add_argument(
        "--large-pages", type=int, default=0, metavar="PCT",
        help="percent of the footprint on 2MB pages (Section 6.5)",
    )
    parser.add_argument("--energy", action="store_true", help="include pJ/instruction")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the technique sweep (default: all cores)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="reuse simulation results cached under DIR (created if missing)",
    )
    parser.add_argument(
        "--failure-policy", choices=FAILURE_POLICIES, default=None,
        help="fail-fast (default) aborts on the first failed cell; "
             "continue finishes the matrix and reports the failures",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="re-run a failed or timed-out cell up to N times (default 0)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock limit; over-budget cells are cancelled "
             "and retried (default: none)",
    )
    parser.add_argument("--list", action="store_true", help="list techniques and exit")
    parser.add_argument("--describe", action="store_true",
                        help="print the simulated system configuration and exit")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, policies in POLICY_MATRIX.items():
            spec = ", ".join(f"{k}={v}" for k, v in policies.items()) or "all-LRU baseline"
            print(f"{name:<14} {spec}")
        return 0
    if args.describe:
        print(describe(scaled_config()))
        return 0

    unknown = [t for t in args.techniques if t not in POLICY_MATRIX]
    if unknown:
        print(f"unknown technique(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    try:
        # Argparse restricts --engine; this catches a bad REPRO_ENGINE value.
        resolve_engine(args.engine)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    try:
        spec = resolve_topology(args.topology, scaled_config())
    except TopologyError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    # One workload per core (a single-core topology gets exactly one);
    # extra cores run the same workload kind at distinct seeds.
    workloads = tuple(
        make_workload(args.workload, args.seed + index)
        for index in range(spec.num_cores)
    )
    for workload in workloads:
        if args.large_pages:
            workload.large_page_percent = args.large_pages
    workload = workloads[0]

    headers = ["technique", "ipc", "speedup_%", "stlb_impki", "stlb_dmpki",
               "stlb_miss_lat", "l2c_dtmpki", "llc_mpki"]
    if args.energy:
        headers.append("pj_per_instr")
    try:
        runner = ParallelRunner(
            workers=args.workers if args.workers is not None else os.cpu_count() or 1,
            cache_dir=args.cache_dir,
            progress=True,
            policy=args.failure_policy,
            max_retries=args.max_retries,
            timeout=args.cell_timeout,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        results = runner.run(
            SimJob(config_for(t), workloads, args.warmup, args.measure,
                   label=t, topology=args.topology, engine=args.engine)
            for t in args.techniques
        )
    except MatrixError as exc:
        print(exc.report.summary(), file=sys.stderr)
        print(str(exc), file=sys.stderr)
        return 1
    rows = []
    baseline_ipc = results[0].ipc
    for technique, result in zip(args.techniques, results):
        row = [
            technique,
            result.ipc,
            100.0 * (result.ipc / baseline_ipc - 1.0),
            result.get("stlb.impki"),
            result.get("stlb.dmpki"),
            result.get("stlb.avg_miss_latency"),
            result.get("l2c.dtmpki"),
            result.get("llc.mpki"),
        ]
        if args.energy:
            row.append(energy_report(result.stats).pj_per_instruction)
        rows.append(row)
    print(format_table(headers, rows))
    names = "+".join(w.name for w in workloads)
    print(f"(speedup vs first technique: {args.techniques[0]}; "
          f"topology={spec.name}, workload={names}, "
          f"{args.measure} measured instructions)")
    return 0


def cli() -> None:
    """Console-script entry point."""
    raise SystemExit(main())


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
