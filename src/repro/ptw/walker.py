"""Hardware page-table walker with split page structure caches.

On an STLB miss the walker resolves the translation by reading page-table
entries through the cache hierarchy, starting at the L2C (ChampSim
convention — "entries from all page table levels are stored in the cache
hierarchy", Section 5.1).  Every PTE read is tagged ``is_pte`` with the
instruction/data translation type, which is what xPTP's Type bit observes.

Timing simplification (DESIGN.md §3): the paper's walker supports up to 4
concurrent walks; this model charges walks sequentially, which is the
conservative choice and does not change policy orderings.
"""

from __future__ import annotations

from typing import NamedTuple

from ..common.params import PSCConfig
from ..common.stats import SimStats
from ..common.types import AccessType, MemoryRequest, PAGE_BITS, PageSize, RequestType
from .page_table import PageTable, WalkPath
from .psc import SplitPSC


class WalkResult(NamedTuple):
    latency: int
    pfn: int
    page_size: PageSize
    memory_references: int


class PageTableWalker:
    """Walks the radix page table through the cache hierarchy."""

    def __init__(
        self,
        page_table: PageTable,
        psc_config: PSCConfig,
        memory_level,
        stats: SimStats,
    ) -> None:
        self.page_table = page_table
        self.psc = SplitPSC(psc_config)
        self.psc_latency = psc_config.latency
        self.memory_level = memory_level
        self.stats = stats
        # Reusable PTE-read request (walks are sequential; the request is
        # consumed synchronously by the cache hierarchy).
        self._ptw_req = MemoryRequest(
            address=0, req_type=RequestType.PTW, is_pte=True
        )

    def walk(
        self,
        vaddr: int,
        translation_type: AccessType,
        thread_id: int = 0,
        prefetch: bool = False,
    ) -> WalkResult:
        vpn = vaddr >> PAGE_BITS
        path: WalkPath = self.page_table.walk_path(vaddr)

        latency = self.psc_latency
        hit = self.psc.deepest_hit(vpn)
        if hit is not None:
            resume_level = hit[0] - 1  # PSCLk knows the level-(k-1) table
            steps = [s for s in path.steps if s.level <= resume_level]
            self.stats.bump(f"ptw.pscl{hit[0]}_hits")
        else:
            steps = list(path.steps)
            self.stats.bump("ptw.psc_misses")

        references = 0
        req = self._ptw_req
        req.translation_type = translation_type
        req.thread_id = thread_id
        access = self.memory_level.access
        for step in steps:
            req.address = step.entry_address
            latency += access(req)
            references += 1

        # Refill the PSCs along the traversed path: reading the level-k
        # entry reveals the level-(k-1) table frame.
        for upper, lower in zip(path.steps, path.steps[1:]):
            self.psc.fill(vpn, upper.level, lower.entry_address >> PAGE_BITS)

        kind = "instr" if translation_type == AccessType.INSTRUCTION else "data"
        prefix = "ptw.pf_" if prefetch else "ptw."
        self.stats.bump(f"{prefix}{kind}_walks")
        self.stats.bump(f"{prefix}{kind}_walk_cycles", latency)
        self.stats.bump(f"{prefix}{kind}_walk_refs", references)
        return WalkResult(latency, path.pfn, path.page_size, references)
