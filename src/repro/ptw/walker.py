"""Hardware page-table walker with split page structure caches.

On an STLB miss the walker resolves the translation by reading page-table
entries through the cache hierarchy, starting at the L2C (ChampSim
convention — "entries from all page table levels are stored in the cache
hierarchy", Section 5.1).  Every PTE read is tagged ``is_pte`` with the
instruction/data translation type, which is what xPTP's Type bit observes.

Timing simplification (DESIGN.md §3): the paper's walker supports up to 4
concurrent walks; this model charges walks sequentially, which is the
conservative choice and does not change policy orderings.

Hot-path notes: :meth:`PageTableWalker.walk` runs on every STLB miss, so the
counter names it bumps are precomputed module constants (no f-strings) and
the step/PSC-refill loops iterate the walk path in place instead of building
filtered copies.
"""

from __future__ import annotations

from typing import NamedTuple

from ..common.params import PSCConfig
from ..common.stats import SimStats
from ..common.types import AccessType, MemoryRequest, PAGE_BITS, PageSize, RequestType
from .page_table import PageTable, WalkPath
from .psc import SplitPSC

_INSTRUCTION = AccessType.INSTRUCTION

#: PSC hit counters by the level that hit (PSCLk), precomputed for the hot
#: walk path.  Level 1 never appears: PSCL2 is the deepest structure.
_PSCL_HIT_COUNTERS = {
    2: "ptw.pscl2_hits",
    3: "ptw.pscl3_hits",
    4: "ptw.pscl4_hits",
    5: "ptw.pscl5_hits",
}
_PSC_MISS_COUNTER = "ptw.psc_misses"

#: (walks, walk_cycles, walk_refs) counter-name triples, by translation kind
#: and demand/prefetch origin.
_WALK_COUNTERS = {
    (False, False): ("ptw.data_walks", "ptw.data_walk_cycles", "ptw.data_walk_refs"),
    (False, True): ("ptw.instr_walks", "ptw.instr_walk_cycles", "ptw.instr_walk_refs"),
    (True, False): ("ptw.pf_data_walks", "ptw.pf_data_walk_cycles", "ptw.pf_data_walk_refs"),
    (True, True): ("ptw.pf_instr_walks", "ptw.pf_instr_walk_cycles", "ptw.pf_instr_walk_refs"),
}

#: Sentinel resume level on a full PSC miss: deeper than any real table level,
#: so every step of the walk path is charged.
_WALK_ALL_LEVELS = 99


class WalkResult(NamedTuple):
    latency: int
    pfn: int
    page_size: PageSize
    memory_references: int


class PageTableWalker:
    """Walks the radix page table through the cache hierarchy."""

    def __init__(
        self,
        page_table: PageTable,
        psc_config: PSCConfig,
        memory_level,
        stats: SimStats,
    ) -> None:
        self.page_table = page_table
        self.psc = SplitPSC(psc_config)
        self.psc_latency = psc_config.latency
        self.memory_level = memory_level
        self.stats = stats
        # Reusable PTE-read request (walks are sequential; the request is
        # consumed synchronously by the cache hierarchy).
        self._ptw_req = MemoryRequest(
            address=0, req_type=RequestType.PTW, is_pte=True
        )

    def reset_stats(self) -> None:
        """Clear PSC hit/miss diagnostics at the warmup/measurement boundary."""
        self.psc.reset_stats()

    def walk(
        self,
        vaddr: int,
        translation_type: AccessType,
        thread_id: int = 0,
        prefetch: bool = False,
    ) -> WalkResult:
        vpn = vaddr >> PAGE_BITS
        path: WalkPath = self.page_table.walk_path(vaddr)
        steps = path.steps
        bump = self.stats.bump

        latency = self.psc_latency
        hit = self.psc.deepest_hit(vpn)
        if hit is not None:
            resume_level = hit[0] - 1  # PSCLk knows the level-(k-1) table
            bump(_PSCL_HIT_COUNTERS[hit[0]])
        else:
            resume_level = _WALK_ALL_LEVELS
            bump(_PSC_MISS_COUNTER)

        references = 0
        req = self._ptw_req
        req.translation_type = translation_type
        req.thread_id = thread_id
        access = self.memory_level.access
        for step in steps:
            if step.level > resume_level:
                continue
            req.address = step.entry_address
            latency += access(req)
            references += 1

        # Refill the PSCs along the traversed path: reading the level-k
        # entry reveals the level-(k-1) table frame.
        fill = self.psc.fill
        for i in range(len(steps) - 1):
            fill(vpn, steps[i].level, steps[i + 1].entry_address >> PAGE_BITS)

        names = _WALK_COUNTERS[(prefetch, translation_type is _INSTRUCTION)]
        bump(names[0])
        bump(names[1], latency)
        bump(names[2], references)
        # One WalkResult per resolved miss: walks are off the per-reference
        # fast path, and the caller needs the four fields together.
        return WalkResult(latency, path.pfn, path.page_size, references)  # repro: allow[RPR001]
