"""Split Page Structure Caches (Table 1: PSCL5/4/3/2).

``PSCLk`` caches pointers to level-(k-1) page-table frames keyed by the
virtual-page-number prefix that identifies them (``vpn >> 9*(k-1)``).  A hit
in ``PSCLk`` lets the walker skip straight to the level-(k-1) table, so a
PSCL2 hit leaves a single memory reference (the leaf PTE) — the case xPTP
is designed to make an L2C hit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from ..common.params import PSCConfig
from .page_table import INDEX_BITS


class PageStructureCache:
    """Small set-associative LRU cache of vpn-prefix → table-frame pointers."""

    def __init__(self, name: str, entries: int, associativity: int) -> None:
        if entries % associativity:
            raise ValueError(f"{name}: entries not divisible by associativity")
        self.name = name
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._sets: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_for(self, key: int) -> "OrderedDict[int, int]":
        return self._sets[key % self.num_sets]

    def lookup(self, key: int) -> Optional[int]:
        entries = self._set_for(key)
        frame = entries.get(key)
        if frame is None:
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return frame

    def insert(self, key: int, frame: int) -> None:
        entries = self._set_for(key)
        if key in entries:
            entries[key] = frame
            entries.move_to_end(key)
            return
        if len(entries) >= self.associativity:
            entries.popitem(last=False)
        entries[key] = frame

    def reset_stats(self) -> None:
        """Clear hit/miss diagnostics at the warmup/measurement boundary.

        Cached pointers are microarchitectural state and survive the reset.
        """
        self.hits = 0
        self.misses = 0

    def invalidate_all(self) -> None:
        for entries in self._sets:
            entries.clear()

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)


class SplitPSC:
    """The four split PSCs, indexed by the table level they point *into*."""

    #: PSCLk exists for these k values; a PSCLk hit leaves k-1 memory reads.
    LEVELS = (2, 3, 4, 5)

    def __init__(self, config: PSCConfig) -> None:
        self.config = config
        self.caches: Dict[int, PageStructureCache] = {
            2: PageStructureCache("PSCL2", config.pscl2_entries, config.pscl2_assoc),
            3: PageStructureCache("PSCL3", config.pscl3_entries, config.pscl3_assoc),
            4: PageStructureCache("PSCL4", config.pscl4_entries, config.pscl4_assoc),
            5: PageStructureCache("PSCL5", config.pscl5_entries, config.pscl5_assoc),
        }

    def reset_stats(self) -> None:
        """Clear per-structure hit/miss diagnostics (warmup boundary)."""
        for cache in self.caches.values():
            cache.reset_stats()

    @staticmethod
    def key_for(vpn: int, level: int) -> int:
        """Prefix of ``vpn`` identifying the level-(level-1) table."""
        return vpn >> (INDEX_BITS * (level - 1))

    def deepest_hit(self, vpn: int) -> Optional[tuple]:
        """Find the deepest PSC hit for ``vpn``.

        Returns ``(level, frame)`` where ``frame`` is the level-(level-1)
        table to resume the walk from, or ``None`` on a full miss.  Checked
        deepest-first (PSCL2 → PSCL5) because a deeper hit skips more.
        """
        for level in self.LEVELS:
            frame = self.caches[level].lookup(self.key_for(vpn, level))
            if frame is not None:
                return level, frame
        return None

    def fill(self, vpn: int, level: int, frame: int) -> None:
        """Record that the level-(level-1) table for ``vpn`` is ``frame``."""
        if level in self.caches:
            self.caches[level].insert(self.key_for(vpn, level), frame)
