"""5-level radix-tree page table (Section 5.1: "We simulate a 5-level radix
tree page table").

Table levels are numbered L5 (root) down to L1 (leaf PTE tables).  Each
table holds 512 eight-byte entries in one 4 KB frame, so a 64-byte cache
line holds 8 PTEs — the property xPTP exploits: one resident leaf-PTE line
in the L2C serves page walks for 8 adjacent virtual pages.

Pages are mapped lazily on first touch (the paper assumes all pages are
resident; no page-fault modelling).  A ``size_policy`` callback decides
whether a virtual address lives in a 4 KB or a 2 MB page (Section 6.5);
2 MB mappings terminate the walk at the L2 entry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from ..common.types import PAGE_BITS, PTE_BYTES, PageSize

ENTRIES_PER_TABLE = 512
INDEX_BITS = 9
INDEX_MASK = ENTRIES_PER_TABLE - 1
NUM_LEVELS = 5

#: Physical frame numbers for page-table frames are allocated from here so
#: they never collide with data frames.
PT_FRAME_BASE = 1 << 26
DATA_FRAME_BASE = 1 << 8


class WalkStep(NamedTuple):
    """One page-table entry read: table level and physical byte address."""

    level: int
    entry_address: int


class WalkPath(NamedTuple):
    """Full result of translating a virtual address."""

    steps: Tuple[WalkStep, ...]
    pfn: int
    page_size: PageSize

    @property
    def leaf_level(self) -> int:
        return 2 if self.page_size is PageSize.SIZE_2M else 1


def level_index(vpn: int, level: int) -> int:
    """9-bit radix index used at table ``level`` for 4 KB page number ``vpn``."""
    return (vpn >> (INDEX_BITS * (level - 1))) & INDEX_MASK


class PageTable:
    """Lazily-populated radix page table with a deterministic frame allocator."""

    def __init__(self, size_policy: Optional[Callable[[int], PageSize]] = None) -> None:
        self.size_policy = size_policy or (lambda vaddr: PageSize.SIZE_4K)
        self._next_pt_frame = PT_FRAME_BASE
        self._next_data_frame = DATA_FRAME_BASE
        # table frame -> {index: child frame}
        self.tables: Dict[int, Dict[int, int]] = {}
        # leaf mappings: 4K vpn -> pfn; 2M vpn21 -> pfn (2 MB-aligned frame number)
        self._leaves_4k: Dict[int, int] = {}
        self._leaves_2m: Dict[int, int] = {}
        self.root_frame = self._alloc_table()
        self.pages_mapped_4k = 0
        self.pages_mapped_2m = 0

    # ------------------------------------------------------------------ #

    def _alloc_table(self) -> int:
        frame = self._next_pt_frame
        self._next_pt_frame += 1
        self.tables[frame] = {}
        return frame

    def _alloc_data_frames(self, count: int) -> int:
        """Allocate ``count`` contiguous, count-aligned physical frames."""
        base = self._next_data_frame
        if base % count:
            base += count - base % count
        self._next_data_frame = base + count
        return base

    # ------------------------------------------------------------------ #

    def walk_path(self, vaddr: int) -> WalkPath:
        """Translate ``vaddr``, mapping it on first touch.

        Returns every entry address a hardware walker starting at the root
        would read, in L5→leaf order.
        """
        if vaddr < 0:
            raise ValueError("virtual address must be non-negative")
        vpn = vaddr >> PAGE_BITS
        page_size = self.size_policy(vaddr)
        leaf_level = 2 if page_size is PageSize.SIZE_2M else 1

        steps: List[WalkStep] = []
        table = self.root_frame
        for level in range(NUM_LEVELS, leaf_level, -1):
            index = level_index(vpn, level)
            steps.append(WalkStep(level, self._entry_address(table, index)))
            entries = self.tables[table]
            child = entries.get(index)
            if child is None:
                child = self._alloc_table()
                entries[index] = child
            table = child

        index = level_index(vpn, leaf_level)
        steps.append(WalkStep(leaf_level, self._entry_address(table, index)))
        pfn = self._map_leaf(vpn, page_size)
        return WalkPath(tuple(steps), pfn, page_size)

    def _map_leaf(self, vpn: int, page_size: PageSize) -> int:
        if page_size is PageSize.SIZE_2M:
            vpn2m = vpn >> INDEX_BITS
            pfn = self._leaves_2m.get(vpn2m)
            if pfn is None:
                pfn = self._alloc_data_frames(ENTRIES_PER_TABLE)
                self._leaves_2m[vpn2m] = pfn
                self.pages_mapped_2m += 1
            # pfn of the covering 4 KB frame inside the 2 MB page
            return pfn + (vpn & INDEX_MASK)
        pfn = self._leaves_4k.get(vpn)
        if pfn is None:
            pfn = self._alloc_data_frames(1)
            self._leaves_4k[vpn] = pfn
            self.pages_mapped_4k += 1
        return pfn

    @staticmethod
    def _entry_address(table_frame: int, index: int) -> int:
        return (table_frame << PAGE_BITS) | (index * PTE_BYTES)

    # ------------------------------------------------------------------ #

    def translate(self, vaddr: int) -> int:
        """Virtual → physical byte address (mapping on first touch).

        ``walk_path`` always reports the pfn of the covering 4 KB frame
        (even inside a 2 MB page), so composition is uniform.
        """
        path = self.walk_path(vaddr)
        return (path.pfn << PAGE_BITS) | (vaddr & (PageSize.SIZE_4K - 1))

    @property
    def table_count(self) -> int:
        return len(self.tables)
