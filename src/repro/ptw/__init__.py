"""Virtual-memory substrate: radix page table, page structure caches, walker."""

from .page_table import ENTRIES_PER_TABLE, PageTable, WalkPath, WalkStep, level_index
from .psc import PageStructureCache, SplitPSC
from .walker import PageTableWalker, WalkResult

__all__ = [
    "ENTRIES_PER_TABLE",
    "PageStructureCache",
    "PageTable",
    "PageTableWalker",
    "SplitPSC",
    "WalkPath",
    "WalkResult",
    "WalkStep",
    "level_index",
]
