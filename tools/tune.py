"""Workload/model tuning harness (development tool, not part of the library)."""
import sys
import time

from repro.common.params import scaled_config
from repro import simulate, ServerWorkload

POLICIES = [
    ("lru", dict()),
    ("itp", dict(stlb="itp")),
    ("itp+xptp", dict(stlb="itp", l2c="xptp")),
    ("tdrrip", dict(l2c="tdrrip")),
    ("ptp", dict(l2c="ptp")),
    ("chirp", dict(stlb="chirp")),
]


def run(tag, wl_kw, warmup=100_000, measure=300_000, base=None):
    base = base or scaled_config()
    wl = ServerWorkload("tune", seed=1, **wl_kw)
    res = {}
    t0 = time.time()
    for name, pol in POLICIES:
        cfg = base.with_policies(**pol)
        r = simulate(cfg, wl, warmup, measure)
        res[name] = r
        iw = r.get("ptw.instr_walk_cycles") / max(1, r.get("ptw.instr_walks"))
        dw = r.get("ptw.data_walk_cycles") / max(1, r.get("ptw.data_walks"))
        print(
            "%-9s ipc=%.4f stlb(i/d)=%.2f/%.2f iwalk=%.0f dwalk=%.0f itlb=%.1f "
            "l1i=%.1f l2c=%.1f l2c_dt=%.2f llc=%.1f" % (
                name, r.ipc, r.get("stlb.impki"), r.get("stlb.dmpki"), iw, dw,
                r.get("itlb.mpki"), r.get("l1i.mpki"), r.get("l2c.mpki"),
                r.get("l2c.dtmpki"), r.get("llc.mpki"),
            )
        )
    b = res["lru"].ipc
    print(tag, {n: round(100 * (r.ipc / b - 1), 2) for n, r in res.items()},
          "%.0fs" % (time.time() - t0))
    return res


if __name__ == "__main__":
    variants = {
        "A": dict(code_pages=640, zipf_alpha=1.05, data_pages=12000, hot_data_pages=256,
                  hot_zipf_alpha=1.1, lines_per_hot_page=4, local_pages=512,
                  warm_pages=3000, warm_fraction=0.05, hot_fraction=0.7,
                  load_probability=0.35, loop_probability=0.5),
        "B": dict(code_pages=1024, zipf_alpha=1.0, data_pages=12000, hot_data_pages=256,
                  hot_zipf_alpha=1.1, lines_per_hot_page=4, local_pages=512,
                  warm_pages=3000, warm_fraction=0.05, hot_fraction=0.7,
                  load_probability=0.35, loop_probability=0.5),
        "C": dict(code_pages=896, zipf_alpha=1.1, data_pages=12000, hot_data_pages=256,
                  hot_zipf_alpha=1.2, lines_per_hot_page=4, local_pages=512,
                  warm_pages=3000, warm_fraction=0.05, hot_fraction=0.72,
                  load_probability=0.35, loop_probability=0.5),
        "D": dict(code_pages=896, zipf_alpha=1.1, data_pages=12000, hot_data_pages=256,
                  hot_zipf_alpha=1.2, lines_per_hot_page=4, local_pages=512,
                  warm_pages=3000, warm_fraction=0.02, hot_fraction=0.74,
                  load_probability=0.35, loop_probability=0.5),
        "E": dict(code_pages=640, zipf_alpha=1.05, data_pages=12000, hot_data_pages=256,
                  hot_zipf_alpha=1.2, lines_per_hot_page=4, local_pages=512,
                  warm_pages=3000, warm_fraction=0.02, hot_fraction=0.74,
                  load_probability=0.35, loop_probability=0.5),
        "F": dict(code_pages=640, zipf_alpha=1.05, data_pages=12000, hot_data_pages=192,
                  hot_zipf_alpha=1.4, lines_per_hot_page=4, local_pages=128,
                  warm_pages=3000, warm_fraction=0.02, hot_fraction=0.74,
                  load_probability=0.35, loop_probability=0.5),
        "G": dict(code_pages=640, zipf_alpha=1.05, data_pages=12000, hot_data_pages=192,
                  hot_zipf_alpha=1.4, lines_per_hot_page=4, local_pages=128,
                  warm_pages=3000, warm_fraction=0.02, hot_fraction=0.74,
                  load_probability=0.35, loop_probability=0.5,
                  page_reuse_probability=0.8),
        "H": dict(code_pages=640, zipf_alpha=1.05, data_pages=16000, hot_data_pages=192,
                  hot_zipf_alpha=1.4, lines_per_hot_page=8, local_pages=128,
                  warm_pages=8000, warm_fraction=0.05, hot_fraction=0.71,
                  load_probability=0.35, loop_probability=0.5,
                  page_reuse_probability=0.8),
        "I": dict(code_pages=640, zipf_alpha=1.05, data_pages=24000, hot_data_pages=192,
                  hot_zipf_alpha=1.4, lines_per_hot_page=8, local_pages=128,
                  warm_pages=16000, warm_fraction=0.08, hot_fraction=0.68,
                  load_probability=0.35, loop_probability=0.5,
                  page_reuse_probability=0.8),
        "J": dict(code_pages=640, zipf_alpha=1.05, data_pages=16000, hot_data_pages=192,
                  hot_zipf_alpha=1.4, lines_per_hot_page=4, local_pages=128,
                  warm_pages=4800, warm_fraction=0.06, hot_fraction=0.70,
                  load_probability=0.35, loop_probability=0.5,
                  page_reuse_probability=0.8),
    }
    for tag in sys.argv[1:] or list(variants):
        print("=== variant", tag)
        run(tag, variants[tag])
