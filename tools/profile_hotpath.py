#!/usr/bin/env python
"""Profile the simulator's per-access hot path with cProfile.

Runs one (technique, workload) cell — the same record-bounded loop the
throughput benchmark (``python -m repro.bench``) times — under cProfile and
prints the top functions, so regressions found by the benchmark can be
attributed to specific call sites.

Usage::

    python tools/profile_hotpath.py                        # defaults
    python tools/profile_hotpath.py --technique itp+xptp --records 30000
    python tools/profile_hotpath.py --sort tottime --limit 40
    python tools/profile_hotpath.py --output hotpath.pstats  # for snakeviz etc.
    python tools/profile_hotpath.py --engine batched       # profile the kernel

With ``--engine batched`` the run also reports the kernel's fast-path
coverage (the fraction of records retired without falling back to the
scalar spec path) — the first thing to check when the batched engine's
speedup drops.

No PYTHONPATH needed: the script adds the repo's ``src/`` itself.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import DEFAULT_WARMUP_RECORDS  # noqa: E402
from repro.core.cpu import Core  # noqa: E402
from repro.core.system import System  # noqa: E402
from repro.experiments.runner import POLICY_MATRIX, config_for  # noqa: E402
from repro.kernel import DEFAULT_ENGINE, ENGINES, BatchedEngine  # noqa: E402
from repro.workloads.server import server_suite  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--technique", default="itp+xptp", choices=sorted(POLICY_MATRIX),
        help="Table 2 technique to profile (default itp+xptp)",
    )
    parser.add_argument(
        "--engine", default=DEFAULT_ENGINE, choices=ENGINES,
        help="execution engine to profile (default spec)",
    )
    parser.add_argument(
        "--records", type=int, default=20_000,
        help="trace records in the profiled window (default 20000)",
    )
    parser.add_argument(
        "--warmup-records", type=int, default=DEFAULT_WARMUP_RECORDS,
        help="records executed before profiling starts",
    )
    parser.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "ncalls", "pcalls", "filename"],
        help="pstats sort key (default cumulative)",
    )
    parser.add_argument(
        "--limit", type=int, default=30, help="rows to print (default 30)"
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump raw pstats data to FILE",
    )
    args = parser.parse_args(argv)

    workload = server_suite(1)[0]
    system = System(config_for(args.technique), workload.size_policy)
    core = Core(system, thread_id=0)
    stream = workload.record_stream()

    profiler = cProfile.Profile()
    kernel = None
    if args.engine == "batched":
        kernel = BatchedEngine(system, core, stream)
        kernel.run_records(args.warmup_records)
        system.reset_stats()
        kernel.reset_stats()
        profiler.enable()
        kernel.run_records(args.records)
        profiler.disable()
    else:
        for _ in range(args.warmup_records):
            core.execute(next(stream))
        system.reset_stats()
        execute = core.execute
        advance = stream.__next__
        profiler.enable()
        for _ in range(args.records):
            execute(advance())
        profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if kernel is not None:
        print(
            f"fast-path coverage: {kernel.fast_path_coverage:.1%} "
            f"({kernel.fast_records} fast / {kernel.issue_records} issuing / "
            f"{kernel.total_records - kernel.fast_records - kernel.issue_records}"
            f" scalar of {kernel.total_records} records)"
        )
    if args.output:
        stats.dump_stats(args.output)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
