"""CI smoke for the execution fabric's cross-submission dedup.

Submits two *overlapping* ``ablation_adaptive`` matrices concurrently (two
consumer threads, one :class:`repro.fabric.Scheduler`, one shared cache
directory) and asserts the fabric's core invariants:

* each unique ``job_key`` is simulated exactly once, no matter how many
  submissions name it (``simulations == unique job_keys``);
* every submission still receives a complete, order-preserved result list;
* a second pair of submissions against the same cache directory is served
  entirely from the store (``simulations == 0``).

Usage: ``PYTHONPATH=src python tools/fabric_smoke.py [cache_dir]``
"""

from __future__ import annotations

import sys
import threading
from typing import List, Optional

from repro.core.simulator import SimulationResult
from repro.experiments import ablation_adaptive
from repro.fabric import Scheduler, SchedulerConfig, job_key
from repro.fabric.store import ResultCache


def _overlapping_matrices():
    # Matrix B shares lru / always-on / T1 in {1, 2, 4} with matrix A and
    # contributes one novel cell (T1=8).
    a = ablation_adaptive.build_jobs(t1_values=(0, 1, 2, 4))
    b = ablation_adaptive.build_jobs(t1_values=(1, 2, 4, 8))
    return a, b


def _run_pass(cache_dir: str, workers: int = 2) -> Scheduler:
    jobs_a, jobs_b = _overlapping_matrices()
    scheduler = Scheduler(
        SchedulerConfig.from_knobs(workers, True), cache=ResultCache(cache_dir)
    )
    results: List[Optional[List[SimulationResult]]] = [None, None]
    errors: List[BaseException] = []

    def consume(slot: int, jobs) -> None:
        try:
            results[slot] = scheduler.submit(jobs).collect()
        except BaseException as exc:  # surfaced below with a real traceback
            errors.append(exc)

    threads = [
        threading.Thread(target=consume, args=(0, jobs_a)),
        threading.Thread(target=consume, args=(1, jobs_b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]

    for slot, jobs in ((0, jobs_a), (1, jobs_b)):
        got = results[slot]
        assert got is not None and len(got) == len(jobs), (
            f"submission {slot}: expected {len(jobs)} results, got "
            f"{None if got is None else len(got)}"
        )
        assert all(r is not None for r in got), f"submission {slot}: missing cells"
    # Order preservation: overlapping cells must resolve to the same result
    # object in both submissions, at the index their own matrix put them.
    keys_a = [job_key(j) for j in jobs_a]
    keys_b = [job_key(j) for j in jobs_b]
    shared = {k: results[0][i] for i, k in enumerate(keys_a) if k in set(keys_b)}
    for i, k in enumerate(keys_b):
        if k in shared:
            assert results[1][i] is shared[k], (
                f"overlapping cell {jobs_b[i].cell} diverged between submissions"
            )
    scheduler.close()
    return scheduler


def main() -> int:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else ".fabric-smoke-cache"
    jobs_a, jobs_b = _overlapping_matrices()
    unique = len({job_key(j) for j in jobs_a + jobs_b})
    overlap = len(jobs_a) + len(jobs_b) - unique

    cold = _run_pass(cache_dir)
    print(
        f"[fabric-smoke] cold pass: {cold.simulations} simulated, "
        f"{cold.dedup_hits} dedup hits, {cold.cache_hits} cache hits "
        f"({unique} unique job_keys across {len(jobs_a) + len(jobs_b)} cells)"
    )
    assert cold.simulations == unique, (
        f"dedup invariant violated: {cold.simulations} simulations for "
        f"{unique} unique job_keys"
    )
    assert cold.dedup_hits == overlap, (
        f"expected {overlap} dedup hits, saw {cold.dedup_hits}"
    )

    warm = _run_pass(cache_dir)
    print(
        f"[fabric-smoke] warm pass: {warm.simulations} simulated, "
        f"{warm.cache_hits} cache hits"
    )
    assert warm.simulations == 0, (
        f"warm pass re-simulated {warm.simulations} cell(s)"
    )
    assert warm.cache_hits == unique, (
        f"warm pass expected {unique} cache hits, saw {warm.cache_hits}"
    )
    print("[fabric-smoke] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
