"""The declarative topology layer: spec serialization, validation, builder
bit-identity with the legacy wiring, presets, suites and cache keying."""

import dataclasses

import pytest

from repro.common.params import scaled_config
from repro.core.multicore import MulticoreSystem, simulate_multicore
from repro.core.simulator import simulate
from repro.core.system import System
from repro.experiments.parallel import job_key, single
from repro.experiments.runner import POLICY_MATRIX, config_for
from repro.topology import (
    SUITES,
    TopologyError,
    TopologySpec,
    from_system_config,
    make_topology,
    node,
    resolve_topology,
    suite_for,
)
from repro.workloads.server import ServerWorkload

WARMUP = 2_000
MEASURE = 8_000


def workload(seed=3, name="w"):
    return ServerWorkload(name, seed=seed)


def table1_spec(config=None):
    return from_system_config(config or scaled_config())


# --------------------------------------------------------------------- #
# Spec serialization and hashing
# --------------------------------------------------------------------- #


class TestSpecSerialization:
    def test_round_trip_preserves_spec(self):
        spec = table1_spec()
        assert TopologySpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_all_presets(self):
        config = scaled_config()
        for name in ("table1", "split-stlb", "no-llc", "multicore-2", "shared-l2-3"):
            spec = make_topology(name, config)
            clone = TopologySpec.from_dict(spec.to_dict())
            assert clone == spec
            assert clone.content_hash() == spec.content_hash()

    def test_hash_stable_across_round_trip(self):
        spec = table1_spec()
        assert TopologySpec.from_dict(spec.to_dict()).content_hash() == spec.content_hash()

    def test_hash_ignores_node_order_and_label(self):
        spec = table1_spec()
        shuffled = TopologySpec(name="renamed", nodes=tuple(reversed(spec.nodes)))
        assert shuffled.content_hash() == spec.content_hash()

    def test_hash_covers_node_content(self):
        spec = table1_spec()
        nodes = list(spec.nodes)
        for i, n in enumerate(nodes):
            if n.name == "stlb":
                nodes[i] = dataclasses.replace(n, policy="itp")
        changed = TopologySpec(name=spec.name, nodes=tuple(nodes))
        assert changed.content_hash() != spec.content_hash()

    def test_hash_covers_edges(self):
        spec = make_topology("no-llc", scaled_config())
        assert spec.content_hash() != table1_spec().content_hash()


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #


def _valid_nodes(config):
    return {n.name: n for n in table1_spec(config).nodes}


class TestValidation:
    def test_table1_validates(self):
        table1_spec().validate()

    def test_cycle_detected(self):
        config = scaled_config()
        nodes = _valid_nodes(config)
        nodes["l2c"] = dataclasses.replace(nodes["l2c"], next_level="l1d")
        spec = TopologySpec(name="cyclic", nodes=tuple(nodes.values()))
        with pytest.raises(TopologyError, match="cycle"):
            spec.validate()

    def test_exactly_one_dram(self):
        config = scaled_config()
        nodes = list(table1_spec(config).nodes)
        nodes.append(node("dram2", "dram", config=config.dram))
        with pytest.raises(TopologyError, match="exactly one DRAM"):
            TopologySpec(name="two-sinks", nodes=tuple(nodes)).validate()

    def test_dangling_edge(self):
        config = scaled_config()
        nodes = _valid_nodes(config)
        nodes["llc"] = dataclasses.replace(nodes["llc"], next_level="nowhere")
        with pytest.raises(TopologyError, match="missing node 'nowhere'"):
            TopologySpec(name="dangling", nodes=tuple(nodes.values())).validate()

    def test_missing_core_link(self):
        config = scaled_config()
        nodes = _valid_nodes(config)
        core = nodes["core0"]
        nodes["core0"] = dataclasses.replace(
            core, links=tuple(kv for kv in core.links if kv[0] != "stlb")
        )
        with pytest.raises(TopologyError, match="missing the 'stlb' link"):
            TopologySpec(name="no-stlb", nodes=tuple(nodes.values())).validate()

    def test_edge_kind_mismatch(self):
        config = scaled_config()
        nodes = _valid_nodes(config)
        nodes["walker"] = dataclasses.replace(nodes["walker"], next_level="dram")
        with pytest.raises(TopologyError, match="expected cache"):
            TopologySpec(name="walker-to-dram", nodes=tuple(nodes.values())).validate()

    def test_duplicate_names(self):
        spec = table1_spec()
        with pytest.raises(TopologyError, match="duplicate node names"):
            TopologySpec(name="dup", nodes=spec.nodes + (spec.nodes[-1],)).validate()

    def test_unknown_preset_lists_available(self):
        with pytest.raises(TopologyError, match="available presets: table1"):
            make_topology("bogus", scaled_config())

    def test_bad_core_count(self):
        with pytest.raises(TopologyError, match="bad core count"):
            make_topology("multicore-0", scaled_config())

    def test_system_rejects_multicore_spec(self):
        with pytest.raises(ValueError, match="single-core"):
            System(scaled_config(), topology="multicore-2")

    def test_multicore_rejects_core_count_mismatch(self):
        with pytest.raises(ValueError, match="2 cores but 1 workloads"):
            MulticoreSystem(scaled_config(), [workload()], topology="multicore-2")


# --------------------------------------------------------------------- #
# Builder bit-identity: the default, the preset name and the explicit
# spec must be the same machine down to every counter.
# --------------------------------------------------------------------- #


class TestBuilderBitIdentity:
    def test_default_preset_and_explicit_spec_agree(self):
        config = config_for("itp+xptp")
        baseline = simulate(config, workload(), WARMUP, MEASURE)
        for topology in ("table1", from_system_config(config)):
            rerun = simulate(config, workload(), WARMUP, MEASURE, topology=topology)
            assert rerun.metrics == baseline.metrics

    def test_resolve_topology_none_is_table1(self):
        config = scaled_config()
        assert (
            resolve_topology(None, config).content_hash()
            == resolve_topology("table1", config).content_hash()
        )


# --------------------------------------------------------------------- #
# Preset smoke runs
# --------------------------------------------------------------------- #


class TestPresetSmoke:
    def test_split_stlb_splits_the_mmu(self):
        system = System(scaled_config(), topology="split-stlb")
        assert system.mmu.split
        result = simulate(
            scaled_config(), workload(), WARMUP, MEASURE, topology="split-stlb"
        )
        assert result.ipc > 0
        assert result.get("stlb.mpki") >= 0

    def test_no_llc_drops_the_llc(self):
        system = System(scaled_config(), topology="no-llc")
        assert system.llc is None
        result = simulate(scaled_config(), workload(), WARMUP, MEASURE, topology="no-llc")
        assert result.ipc > 0

    def test_multicore_2_end_to_end(self):
        result = simulate_multicore(
            scaled_config(),
            [workload(seed=3, name="a"), workload(seed=4, name="b")],
            WARMUP,
            MEASURE,
            topology="multicore-2",
        )
        assert result.workload == "a+b"
        assert result.ipc > 0

    def test_shared_l2_shares_one_cache(self):
        system = MulticoreSystem(
            scaled_config(),
            [workload(seed=3, name="a"), workload(seed=4, name="b")],
            topology="shared-l2",
        )
        assert system.slices[0].l2c is system.slices[1].l2c
        assert system.slices[0].l1d is not system.slices[1].l1d

    def test_multicore_private_l2s(self):
        system = MulticoreSystem(
            scaled_config(), [workload(seed=3, name="a"), workload(seed=4, name="b")]
        )
        assert system.slices[0].l2c is not system.slices[1].l2c
        assert system.slices[0].llc is system.slices[1].llc


# --------------------------------------------------------------------- #
# Cache keying
# --------------------------------------------------------------------- #


class TestJobKeyTopology:
    def test_none_aliases_table1(self):
        config = scaled_config()
        wl = workload()
        default = job_key(single(config, wl, WARMUP, MEASURE))
        named = job_key(single(config, wl, WARMUP, MEASURE, topology="table1"))
        explicit = job_key(
            single(config, wl, WARMUP, MEASURE, topology=from_system_config(config))
        )
        assert default == named == explicit

    def test_topology_separates_cache_entries(self):
        config = scaled_config()
        wl = workload()
        keys = {
            job_key(single(config, wl, WARMUP, MEASURE, topology=name))
            for name in (None, "split-stlb", "no-llc")
        }
        assert len(keys) == 3


# --------------------------------------------------------------------- #
# Policy suites as the single source of truth
# --------------------------------------------------------------------- #


class TestPolicySuites:
    def test_policy_matrix_derives_from_suites(self):
        assert list(POLICY_MATRIX) == list(SUITES)
        for name, policies in POLICY_MATRIX.items():
            assert policies == suite_for(name).policies()

    def test_config_for_applies_the_suite(self):
        config = config_for("itp+xptp")
        assert config.stlb_policy == "itp"
        assert config.l2c_policy == "xptp"
        assert config_for("lru") == scaled_config()

    def test_unknown_technique_lists_suites(self):
        with pytest.raises(ValueError, match="unknown technique 'belady'; available: lru"):
            config_for("belady")

    def test_summary(self):
        assert suite_for("lru").summary() == "all-LRU baseline"
        assert "stlb=itp" in suite_for("itp+xptp").summary()
