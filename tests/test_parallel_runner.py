"""Tests for the parallel experiment runner and its result cache."""

import os
import time

import pytest

from repro.common.params import scaled_config
from repro.experiments.parallel import (
    CONTINUE,
    CellTimeout,
    ConfigurationError,
    MatrixError,
    ParallelRunner,
    ResultCache,
    SimJob,
    SimulationError,
    _execute,
    get_default_runner,
    job_key,
    run_jobs,
    set_default_runner,
    single,
    smt,
    workload_fingerprint,
)
from repro.experiments.runner import compare_single_thread, config_for
from repro.faults import FaultPlan, FaultSpec, install_plan
from repro.faults import plan as fault_plan_mod
from repro.workloads.server import ServerWorkload

WARMUP = 2_000
MEASURE = 8_000


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    """Isolate each test from installed fault plans and the env-plan cache."""
    install_plan(None)
    fault_plan_mod._env_cache = (None, None)
    yield
    install_plan(None)
    fault_plan_mod._env_cache = (None, None)


class BoomWorkload(ServerWorkload):
    """Raises mid-stream; module-level so pool workers can unpickle it."""

    def record_stream(self):
        raise RuntimeError("boom")


class AlwaysCrashWorkload(ServerWorkload):
    """Hard-kills its process on every attempt — only safe under a pool."""

    def record_stream(self):
        os._exit(13)


def small_workloads(count=2):
    return [ServerWorkload(f"w{i}", seed=i + 1) for i in range(count)]


def small_jobs(workloads=None, label="lru"):
    base = scaled_config()
    return [
        SimJob(base, (wl,), WARMUP, MEASURE, label=label)
        for wl in (workloads or small_workloads())
    ]


class TestSimJob:
    def test_validates_workload_count(self):
        base = scaled_config()
        wl = ServerWorkload("w", 1)
        with pytest.raises(ValueError):
            SimJob(base, (), WARMUP, MEASURE)
        with pytest.raises(ValueError):
            SimJob(base, (wl, wl, wl), WARMUP, MEASURE)

    def test_constructors_and_cell(self):
        base = scaled_config()
        w0, w1 = small_workloads()
        job = single(base, w0, WARMUP, MEASURE, label="itp")
        assert job.cell == "itp x w0"
        pair = smt(base, [w0, w1], WARMUP, MEASURE)
        assert pair.workload_name == "w0+w1"

    def test_job_key_stable_and_sensitive(self):
        base = scaled_config()
        wl = ServerWorkload("w", 1)
        job = SimJob(base, (wl,), WARMUP, MEASURE, label="lru")
        assert job_key(job) == job_key(job)
        other_seed = SimJob(
            base, (ServerWorkload("w", 2),), WARMUP, MEASURE, label="lru"
        )
        assert job_key(job) != job_key(other_seed)
        other_config = SimJob(
            base.with_policies(stlb="itp"), (wl,), WARMUP, MEASURE, label="lru"
        )
        assert job_key(job) != job_key(other_config)
        other_window = SimJob(base, (wl,), WARMUP, 2 * MEASURE, label="lru")
        assert job_key(job) != job_key(other_window)

    def test_fingerprint_sees_mutated_public_attrs(self):
        a = ServerWorkload("w", 1)
        b = ServerWorkload("w", 1)
        assert workload_fingerprint(a) == workload_fingerprint(b)
        b.large_page_percent = 100
        assert workload_fingerprint(a) != workload_fingerprint(b)


class TestParallelIdentical:
    def test_workers_4_matches_workers_1_bit_identical(self):
        workloads = small_workloads()
        serial = compare_single_thread(
            ("lru", "itp"), workloads, None, WARMUP, MEASURE,
            runner=ParallelRunner(workers=1),
        )
        parallel = compare_single_thread(
            ("lru", "itp"), workloads, None, WARMUP, MEASURE,
            runner=ParallelRunner(workers=4),
        )
        for technique in ("lru", "itp"):
            for wl in workloads:
                a = serial.results[technique][wl.name]
                b = parallel.results[technique][wl.name]
                assert a.metrics == b.metrics
                assert a.stats.cycles == b.stats.cycles
                assert a.stats.instructions == b.stats.instructions

    def test_result_order_matches_job_order(self):
        workloads = small_workloads(3)
        jobs = small_jobs(workloads)
        results = ParallelRunner(workers=4).run(jobs)
        assert [r.workload for r in results] == [j.workload_name for j in jobs]


class TestResultCache:
    def test_second_run_is_served_from_cache(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        jobs = small_jobs()
        first = runner.run(jobs)
        assert runner.simulations == 2
        assert runner.cache_misses == 2
        assert runner.cache_hits == 0

        second = runner.run(jobs)
        assert runner.simulations == 2  # nothing re-simulated
        assert runner.cache_hits == 2
        for a, b in zip(first, second):
            assert a.metrics == b.metrics

    def test_cache_shared_across_runners(self, tmp_path):
        jobs = small_jobs()
        ParallelRunner(workers=1, cache_dir=tmp_path).run(jobs)
        fresh = ParallelRunner(workers=1, cache_dir=tmp_path)
        fresh.run(jobs)
        assert fresh.simulations == 0
        assert fresh.cache_hits == 2

    def test_different_job_misses_cache(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        runner.run(small_jobs(label="lru"))
        runner.run(
            [
                SimJob(config_for("itp"), (wl,), WARMUP, MEASURE, label="itp")
                for wl in small_workloads()
            ]
        )
        assert runner.cache_hits == 0
        assert runner.simulations == 4

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        jobs = small_jobs()
        runner.run(jobs)
        # This byte pattern makes pickle raise ValueError (bogus opcode
        # stream), not just UnpicklingError — load() must eat either.
        for pkl in tmp_path.glob("*.pkl"):
            pkl.write_bytes(b"garbage\n")
        runner.run(jobs)
        assert runner.simulations == 4
        assert runner.cache_hits == 0

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        runner.run(small_jobs())
        assert cache.clear() == 2
        assert list(tmp_path.glob("*.pkl")) == []


class TestFailurePropagation:
    def failing_jobs(self):
        base = scaled_config()
        return [
            SimJob(base, (ServerWorkload("good", 1),), WARMUP, MEASURE, label="lru"),
            SimJob(base, (BoomWorkload("bad", 2),), WARMUP, MEASURE, label="lru"),
        ]

    def test_serial_failure_names_cell(self):
        with pytest.raises(SimulationError, match=r"lru x bad"):
            ParallelRunner(workers=1).run(self.failing_jobs())

    def test_pool_failure_names_cell(self):
        with pytest.raises(SimulationError, match=r"lru x bad"):
            ParallelRunner(workers=2).run(self.failing_jobs())


_TINY_RESULT = None


def tiny_result():
    """One small, memoised SimulationResult for cache round-trip tests."""
    global _TINY_RESULT
    if _TINY_RESULT is None:
        job = SimJob(scaled_config(), (ServerWorkload("tiny", 1),), 500, 1500, label="lru")
        _TINY_RESULT = _execute(job)[0]
    return _TINY_RESULT


class TestEnvValidation:
    def test_garbage_repro_workers_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "fast")
        previous = set_default_runner(None)
        try:
            with pytest.raises(ConfigurationError, match=r"REPRO_WORKERS.*'auto'"):
                get_default_runner()
        finally:
            set_default_runner(previous)

    def test_garbage_retry_and_timeout_envs(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "lots")
        with pytest.raises(ConfigurationError, match="REPRO_MAX_RETRIES"):
            ParallelRunner(workers=1)
        monkeypatch.delenv("REPRO_MAX_RETRIES")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "soon")
        with pytest.raises(ConfigurationError, match="REPRO_CELL_TIMEOUT"):
            ParallelRunner(workers=1)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="failure policy"):
            ParallelRunner(workers=1, policy="best-effort")

    def test_malformed_repro_faults_is_a_configuration_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.explode")
        with pytest.raises(ConfigurationError, match="REPRO_FAULTS.*worker.explode"):
            ParallelRunner(workers=1)

    def test_defaults_preserve_historical_behaviour(self):
        runner = ParallelRunner(workers=1)
        assert runner.policy == "fail-fast"
        assert runner.max_retries == 0
        assert runner.timeout is None


class TestCacheIntegrity:
    def test_checksummed_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k", tiny_result())
        loaded = cache.load("k")
        assert loaded is not None
        assert loaded.metrics == tiny_result().metrics
        assert cache.quarantined == 0

    def test_torn_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k", tiny_result())
        path = cache.path("k")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.load("k") is None
        assert cache.quarantined == 1
        assert "sha256" in cache.last_quarantined
        assert not path.exists()
        assert list(cache.quarantine_dir.iterdir())

    def test_bitflip_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k", tiny_result())
        path = cache.path("k")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache.load("k") is None
        assert cache.quarantined == 1

    def test_pre_checksum_format_is_quarantined(self, tmp_path):
        import pickle

        cache = ResultCache(tmp_path)
        cache.path("k").write_bytes(pickle.dumps(tiny_result()))
        assert cache.load("k") is None
        assert cache.quarantined == 1
        assert "magic" in cache.last_quarantined

    def test_quarantined_cell_is_resimulated_with_identical_metrics(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        jobs = small_jobs()
        first = runner.run(jobs)
        # Tear every entry: half the payload vanishes, digest goes stale.
        for pkl in tmp_path.glob("*.pkl"):
            data = pkl.read_bytes()
            pkl.write_bytes(data[: len(data) // 2])
        second = runner.run(jobs)
        assert runner.cache.quarantined == 2
        assert runner.cache_hits == 0
        assert runner.simulations == 4  # both cells re-simulated
        for a, b in zip(first, second):
            assert a.metrics == b.metrics
        events = [e for c in runner.last_report.cells for e in c.events]
        assert any("quarantined corrupt cache entry" in e for e in events)

    def test_failed_store_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            cache.store("k", tiny_result())
        monkeypatch.undo()
        assert list(tmp_path.glob(".*.tmp")) == []
        assert cache.load("k") is None

    def test_stale_tmp_sweep_on_startup(self, tmp_path):
        stale = tmp_path / ".deadbeef.pkl.123.tmp"
        stale.write_bytes(b"half a result")
        two_hours_ago = time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        fresh = tmp_path / ".cafe.pkl.456.tmp"
        fresh.write_bytes(b"a live write")
        ResultCache(tmp_path)
        assert not stale.exists()
        assert fresh.exists()


class TestCompleteness:
    def test_unfilled_slot_fails_loudly(self, monkeypatch):
        """A runner bug that leaves a result slot empty must raise, not
        silently shrink the result list (regression for the old
        ``[r for r in results if r is not None]`` truncation)."""
        monkeypatch.setattr(
            ParallelRunner, "_finish", lambda self, *a, **k: None
        )
        with pytest.raises(SimulationError, match="without a result"):
            ParallelRunner(workers=1).run(small_jobs())


class TestRetriesAndFaults:
    def test_injected_serial_crash_is_retried_to_identical_metrics(self):
        plan = FaultPlan([FaultSpec("worker.crash", match="lru x w0")])
        runner = ParallelRunner(
            workers=1, max_retries=1, backoff_base=0.0, faults=plan
        )
        results = runner.run(small_jobs())
        clean = ParallelRunner(workers=1).run(small_jobs())
        for a, b in zip(results, clean):
            assert a.metrics == b.metrics
        report = runner.last_report
        assert report.cells[0].injected == ("worker.crash",)
        assert report.cells[0].attempts == 2
        assert any("InjectedWorkerCrash" in e for e in report.cells[0].events)
        assert report.cells[1].attempts == 1
        assert report.ok

    def test_exhausted_retries_fail_fast_names_cell(self):
        plan = FaultPlan([FaultSpec("worker.crash", match="lru x w0")])
        runner = ParallelRunner(workers=1, backoff_base=0.0, faults=plan)
        with pytest.raises(SimulationError, match=r"lru x w0"):
            runner.run(small_jobs())

    def test_continue_policy_collects_partial_results(self):
        base = scaled_config()
        jobs = [
            SimJob(base, (ServerWorkload("good", 1),), WARMUP, MEASURE, label="lru"),
            SimJob(base, (BoomWorkload("bad", 2),), WARMUP, MEASURE, label="lru"),
            SimJob(base, (ServerWorkload("also", 3),), WARMUP, MEASURE, label="lru"),
        ]
        runner = ParallelRunner(workers=1, policy=CONTINUE, backoff_base=0.0)
        with pytest.raises(MatrixError, match=r"1 of 3.*lru x bad") as excinfo:
            runner.run(jobs)
        error = excinfo.value
        assert error.results[0] is not None and error.results[2] is not None
        assert error.results[1] is None
        statuses = [c.status for c in error.report.cells]
        assert statuses == ["ok", "failed", "ok"]
        assert "RuntimeError: boom" in error.report.cells[1].error
        assert error.report.failures()[0].cell == "lru x bad"

    def test_injected_hang_hits_timeout_and_is_retried(self, monkeypatch):
        monkeypatch.setenv("REPRO_HANG_SECONDS", "30")
        plan = FaultPlan([FaultSpec("worker.hang", match="lru x w0")])
        runner = ParallelRunner(
            workers=1, max_retries=1, timeout=2.0, backoff_base=0.0, faults=plan
        )
        results = runner.run(small_jobs())
        clean = ParallelRunner(workers=1).run(small_jobs())
        for a, b in zip(results, clean):
            assert a.metrics == b.metrics
        cell = runner.last_report.cells[0]
        assert cell.status == "ok"
        assert cell.attempts == 2
        assert any("CellTimeout" in e for e in cell.events)
        assert cell.injected == ("worker.hang",)

    def test_hang_without_retries_reports_timeout_status(self, monkeypatch):
        monkeypatch.setenv("REPRO_HANG_SECONDS", "30")
        plan = FaultPlan([FaultSpec("worker.hang", match="lru x w0")])
        runner = ParallelRunner(
            workers=1, policy=CONTINUE, timeout=1.0, backoff_base=0.0, faults=plan
        )
        with pytest.raises(MatrixError) as excinfo:
            runner.run(small_jobs())
        cell = excinfo.value.report.cells[0]
        assert cell.status == "timeout"
        assert "wall-clock" in cell.error

    def test_timeout_exception_type(self):
        assert issubclass(CellTimeout, RuntimeError)


class TestPoolRecovery:
    def test_pool_restart_budget_exhaustion(self):
        base = scaled_config()
        jobs = [
            SimJob(base, (ServerWorkload("w0", 1),), WARMUP, MEASURE, label="lru"),
            SimJob(base, (AlwaysCrashWorkload("bad", 2),), WARMUP, MEASURE, label="lru"),
            SimJob(base, (ServerWorkload("w1", 3),), WARMUP, MEASURE, label="lru"),
        ]
        runner = ParallelRunner(
            workers=2, policy=CONTINUE, max_retries=5,
            max_pool_restarts=1, backoff_base=0.0,
        )
        with pytest.raises(MatrixError) as excinfo:
            runner.run(jobs)
        report = excinfo.value.report
        assert report.pool_restarts == 2
        failed_cells = {c.cell for c in report.failures()}
        assert "lru x bad" in failed_cells
        assert any("pool" in (c.error or "") for c in report.failures())


class TestChaosMatrix:
    """Acceptance: a >=12-cell matrix with an injected worker crash, a hang
    and a torn cache write completes under collect-and-continue and its
    metrics are bit-identical to a fault-free serial run."""

    def build_jobs(self):
        workloads = [ServerWorkload(f"w{i}", seed=i + 1) for i in range(6)]
        return [
            SimJob(config_for(t), (wl,), WARMUP, MEASURE, label=t)
            for t in ("lru", "itp")
            for wl in workloads
        ]

    def test_chaos_matrix_converges_bit_identically(self, tmp_path, monkeypatch):
        # Arm via REPRO_FAULTS exactly as the CI chaos job does: the hang
        # hits the first-submitted cell, the crash the last, so both faults
        # actually reach their attempt-0 window under 2 workers.
        monkeypatch.setenv("REPRO_HANG_SECONDS", "60")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "worker.hang:1:0::lru x w0"
            ",worker.crash:1:0::itp x w5"
            ",cache.torn-write:1:0:1",
        )
        runner = ParallelRunner(
            workers=2, cache_dir=tmp_path / "cache", policy=CONTINUE,
            max_retries=2, timeout=3.0, max_pool_restarts=3, backoff_base=0.0,
        )
        jobs = self.build_jobs()
        results = runner.run(jobs)
        assert len(results) == 12 and all(r is not None for r in results)

        report = runner.last_report
        assert report.ok
        assert report.pool_restarts >= 1
        by_cell = {c.cell: c for c in report.cells}
        crash = by_cell["itp x w5"]
        assert "worker.crash" in crash.injected
        assert crash.attempts >= 2
        assert any("interrupted by worker crash" in e for e in crash.events)
        hang = by_cell["lru x w0"]
        assert "worker.hang" in hang.injected
        assert hang.attempts >= 2
        # The hang either trips its own deadline (CellTimeout retry) or is
        # interrupted when the crash cell breaks the pool — both recover.
        assert any(
            "CellTimeout" in e or "interrupted by worker crash" in e
            for e in hang.events
        )
        # No cell other than the armed ones was attributed a worker fault
        # (the torn-write site draws on every cell; max_fires caps actual
        # firing to one, verified below via the quarantine count).
        for cell in report.cells:
            if cell.cell not in ("itp x w5", "lru x w0"):
                assert "worker.crash" not in cell.injected
                assert "worker.hang" not in cell.injected

        # Fault-free serial reference: bit-identical metrics per cell.
        monkeypatch.delenv("REPRO_FAULTS")
        reference = ParallelRunner(workers=1).run(self.build_jobs())
        for got, want in zip(results, reference):
            assert got.metrics == want.metrics
            assert got.stats.cycles == want.stats.cycles
            assert got.stats.instructions == want.stats.instructions

        # The torn write corrupted exactly one stored entry; a clean re-run
        # quarantines it, re-simulates that cell, and serves the rest from
        # cache — with metrics identical to the reference again.
        repair = ParallelRunner(workers=1, cache_dir=tmp_path / "cache")
        repaired = repair.run(self.build_jobs())
        assert repair.cache.quarantined == 1
        assert repair.cache_hits == 11
        assert repair.simulations == 1
        for got, want in zip(repaired, reference):
            assert got.metrics == want.metrics


class TestReportSummary:
    def test_summary_mentions_counts_and_failures(self):
        base = scaled_config()
        jobs = [
            SimJob(base, (ServerWorkload("good", 1),), WARMUP, MEASURE, label="lru"),
            SimJob(base, (BoomWorkload("bad", 2),), WARMUP, MEASURE, label="lru"),
        ]
        runner = ParallelRunner(workers=1, policy=CONTINUE, backoff_base=0.0)
        with pytest.raises(MatrixError) as excinfo:
            runner.run(jobs)
        text = excinfo.value.report.summary()
        assert "2 cell(s)" in text
        assert "1 ok" in text and "1 failed" in text
        assert "lru x bad" in text


class TestDefaultRunner:
    def test_env_configures_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        previous = set_default_runner(None)
        try:
            runner = get_default_runner()
            assert runner.workers == 3
            assert runner.cache is not None
            assert get_default_runner() is runner  # memoised
        finally:
            set_default_runner(previous)

    def test_default_is_serial_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        previous = set_default_runner(None)
        try:
            runner = get_default_runner()
            assert runner.workers == 1
            assert runner.cache is None
        finally:
            set_default_runner(previous)

    def test_run_jobs_uses_explicit_runner(self):
        runner = ParallelRunner(workers=1)
        results = run_jobs(small_jobs(), runner)
        assert runner.simulations == 2
        assert len(results) == 2
