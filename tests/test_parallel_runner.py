"""Tests for the parallel experiment runner and its result cache."""

import pytest

from repro.common.params import scaled_config
from repro.experiments.parallel import (
    ParallelRunner,
    ResultCache,
    SimJob,
    SimulationError,
    get_default_runner,
    job_key,
    run_jobs,
    set_default_runner,
    single,
    smt,
    workload_fingerprint,
)
from repro.experiments.runner import compare_single_thread, config_for
from repro.workloads.server import ServerWorkload

WARMUP = 2_000
MEASURE = 8_000


class BoomWorkload(ServerWorkload):
    """Raises mid-stream; module-level so pool workers can unpickle it."""

    def record_stream(self):
        raise RuntimeError("boom")


def small_workloads(count=2):
    return [ServerWorkload(f"w{i}", seed=i + 1) for i in range(count)]


def small_jobs(workloads=None, label="lru"):
    base = scaled_config()
    return [
        SimJob(base, (wl,), WARMUP, MEASURE, label=label)
        for wl in (workloads or small_workloads())
    ]


class TestSimJob:
    def test_validates_workload_count(self):
        base = scaled_config()
        wl = ServerWorkload("w", 1)
        with pytest.raises(ValueError):
            SimJob(base, (), WARMUP, MEASURE)
        with pytest.raises(ValueError):
            SimJob(base, (wl, wl, wl), WARMUP, MEASURE)

    def test_constructors_and_cell(self):
        base = scaled_config()
        w0, w1 = small_workloads()
        job = single(base, w0, WARMUP, MEASURE, label="itp")
        assert job.cell == "itp x w0"
        pair = smt(base, [w0, w1], WARMUP, MEASURE)
        assert pair.workload_name == "w0+w1"

    def test_job_key_stable_and_sensitive(self):
        base = scaled_config()
        wl = ServerWorkload("w", 1)
        job = SimJob(base, (wl,), WARMUP, MEASURE, label="lru")
        assert job_key(job) == job_key(job)
        other_seed = SimJob(
            base, (ServerWorkload("w", 2),), WARMUP, MEASURE, label="lru"
        )
        assert job_key(job) != job_key(other_seed)
        other_config = SimJob(
            base.with_policies(stlb="itp"), (wl,), WARMUP, MEASURE, label="lru"
        )
        assert job_key(job) != job_key(other_config)
        other_window = SimJob(base, (wl,), WARMUP, 2 * MEASURE, label="lru")
        assert job_key(job) != job_key(other_window)

    def test_fingerprint_sees_mutated_public_attrs(self):
        a = ServerWorkload("w", 1)
        b = ServerWorkload("w", 1)
        assert workload_fingerprint(a) == workload_fingerprint(b)
        b.large_page_percent = 100
        assert workload_fingerprint(a) != workload_fingerprint(b)


class TestParallelIdentical:
    def test_workers_4_matches_workers_1_bit_identical(self):
        workloads = small_workloads()
        serial = compare_single_thread(
            ("lru", "itp"), workloads, None, WARMUP, MEASURE,
            runner=ParallelRunner(workers=1),
        )
        parallel = compare_single_thread(
            ("lru", "itp"), workloads, None, WARMUP, MEASURE,
            runner=ParallelRunner(workers=4),
        )
        for technique in ("lru", "itp"):
            for wl in workloads:
                a = serial.results[technique][wl.name]
                b = parallel.results[technique][wl.name]
                assert a.metrics == b.metrics
                assert a.stats.cycles == b.stats.cycles
                assert a.stats.instructions == b.stats.instructions

    def test_result_order_matches_job_order(self):
        workloads = small_workloads(3)
        jobs = small_jobs(workloads)
        results = ParallelRunner(workers=4).run(jobs)
        assert [r.workload for r in results] == [j.workload_name for j in jobs]


class TestResultCache:
    def test_second_run_is_served_from_cache(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        jobs = small_jobs()
        first = runner.run(jobs)
        assert runner.simulations == 2
        assert runner.cache_misses == 2
        assert runner.cache_hits == 0

        second = runner.run(jobs)
        assert runner.simulations == 2  # nothing re-simulated
        assert runner.cache_hits == 2
        for a, b in zip(first, second):
            assert a.metrics == b.metrics

    def test_cache_shared_across_runners(self, tmp_path):
        jobs = small_jobs()
        ParallelRunner(workers=1, cache_dir=tmp_path).run(jobs)
        fresh = ParallelRunner(workers=1, cache_dir=tmp_path)
        fresh.run(jobs)
        assert fresh.simulations == 0
        assert fresh.cache_hits == 2

    def test_different_job_misses_cache(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        runner.run(small_jobs(label="lru"))
        runner.run(
            [
                SimJob(config_for("itp"), (wl,), WARMUP, MEASURE, label="itp")
                for wl in small_workloads()
            ]
        )
        assert runner.cache_hits == 0
        assert runner.simulations == 4

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        jobs = small_jobs()
        runner.run(jobs)
        # This byte pattern makes pickle raise ValueError (bogus opcode
        # stream), not just UnpicklingError — load() must eat either.
        for pkl in tmp_path.glob("*.pkl"):
            pkl.write_bytes(b"garbage\n")
        runner.run(jobs)
        assert runner.simulations == 4
        assert runner.cache_hits == 0

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        runner.run(small_jobs())
        assert cache.clear() == 2
        assert list(tmp_path.glob("*.pkl")) == []


class TestFailurePropagation:
    def failing_jobs(self):
        base = scaled_config()
        return [
            SimJob(base, (ServerWorkload("good", 1),), WARMUP, MEASURE, label="lru"),
            SimJob(base, (BoomWorkload("bad", 2),), WARMUP, MEASURE, label="lru"),
        ]

    def test_serial_failure_names_cell(self):
        with pytest.raises(SimulationError, match=r"lru x bad"):
            ParallelRunner(workers=1).run(self.failing_jobs())

    def test_pool_failure_names_cell(self):
        with pytest.raises(SimulationError, match=r"lru x bad"):
            ParallelRunner(workers=2).run(self.failing_jobs())


class TestDefaultRunner:
    def test_env_configures_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        previous = set_default_runner(None)
        try:
            runner = get_default_runner()
            assert runner.workers == 3
            assert runner.cache is not None
            assert get_default_runner() is runner  # memoised
        finally:
            set_default_runner(previous)

    def test_default_is_serial_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        previous = set_default_runner(None)
        try:
            runner = get_default_runner()
            assert runner.workers == 1
            assert runner.cache is None
        finally:
            set_default_runner(previous)

    def test_run_jobs_uses_explicit_runner(self):
        runner = ParallelRunner(workers=1)
        results = run_jobs(small_jobs(), runner)
        assert runner.simulations == 2
        assert len(results) == 2
