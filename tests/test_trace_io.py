"""Unit tests for trace serialization."""

import itertools

import pytest

from repro.common.types import TraceRecord
from repro.workloads.server import ServerWorkload
from repro.workloads.trace_io import (
    FileTraceWorkload,
    capture,
    read_trace,
    write_trace,
)


def sample_records():
    return [
        TraceRecord(pc=0x40_0000, num_instrs=4, loads=(0x80_0000,), stores=()),
        TraceRecord(pc=0x40_0040, num_instrs=1),
        TraceRecord(pc=0x40_0080, num_instrs=6, loads=(0x1, 0x2), stores=(0x3,)),
    ]


class TestRoundTrip:
    def test_write_read_identity(self, tmp_path):
        path = tmp_path / "t.rptr"
        count = write_trace(path, sample_records())
        assert count == 3
        assert list(read_trace(path)) == sample_records()

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(path, [])
        assert list(read_trace(path)) == []

    def test_rejects_oversized_num_instrs(self, tmp_path):
        path = tmp_path / "t.rptr"
        with pytest.raises(ValueError):
            write_trace(path, [TraceRecord(pc=0, num_instrs=300)])

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rptr"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(ValueError, match="not a repro trace"):
            list(read_trace(path))

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(path, sample_records())
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(ValueError, match="truncated"):
            list(read_trace(path))


class TestCaptureReplay:
    def test_capture_matches_generator(self, tmp_path):
        wl = ServerWorkload("w", 9, code_pages=32, data_pages=500,
                            hot_data_pages=32, warm_pages=100, local_pages=16)
        path = tmp_path / "cap.rptr"
        capture(wl, path, 200)
        live = list(itertools.islice(wl.record_stream(), 200))
        assert list(read_trace(path)) == live

    def test_file_workload_loops(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(path, sample_records())
        wl = FileTraceWorkload("replay", path)
        records = list(itertools.islice(wl.record_stream(), 7))
        assert records[:3] == sample_records()
        assert records[3:6] == sample_records()

    def test_file_workload_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileTraceWorkload("x", tmp_path / "nope.rptr")

    def test_file_workload_empty_trace_raises(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(path, [])
        wl = FileTraceWorkload("x", path)
        with pytest.raises(ValueError, match="no records"):
            next(wl.record_stream())
