"""Unit tests for the synthetic workload generators."""

import itertools

import pytest

from repro.common.types import PAGE_BYTES, PageSize
from repro.workloads.base import (
    CODE_BASE,
    DATA_BASE,
    LOCAL_BASE,
    PAGES_PER_REGION,
    STREAM_BASE,
    WARM_BASE,
    region_is_large,
    sparse_vaddr,
)
from repro.workloads.mixes import smt_mixes
from repro.workloads.phased import PhasedWorkload
from repro.workloads.server import ServerWorkload, server_suite
from repro.workloads.speclike import SpecLikeWorkload, spec_suite


def take(workload, n):
    return list(itertools.islice(workload.record_stream(), n))


class TestSparseLayout:
    def test_slots_within_region(self):
        for idx in range(64):
            vaddr = sparse_vaddr(DATA_BASE, idx)
            region = (vaddr - DATA_BASE) >> 21
            assert region == idx // PAGES_PER_REGION

    def test_cluster_is_contiguous(self):
        base = sparse_vaddr(DATA_BASE, 0)
        for slot in range(1, PAGES_PER_REGION):
            assert sparse_vaddr(DATA_BASE, slot) == base + slot * PAGE_BYTES

    def test_distinct_pages_distinct_addresses(self):
        addrs = {sparse_vaddr(DATA_BASE, i) for i in range(512)}
        assert len(addrs) == 512

    def test_offset_applied(self):
        assert sparse_vaddr(DATA_BASE, 3, 0x40) - sparse_vaddr(DATA_BASE, 3) == 0x40


class TestRegionIsLarge:
    def test_extremes(self):
        assert not region_is_large(0x1000, 0)
        assert region_is_large(0x1000, 100)

    def test_deterministic(self):
        assert region_is_large(0x123456789, 50) == region_is_large(0x123456789, 50)

    def test_same_region_same_outcome(self):
        base = 0x40_0000
        assert region_is_large(base, 50) == region_is_large(base + 0x1F_FFFF, 50)

    def test_fraction_roughly_matches(self):
        hits = sum(region_is_large(r << 21, 30) for r in range(2000))
        assert 0.2 < hits / 2000 < 0.4


class TestServerWorkload:
    def test_deterministic_stream(self):
        a = take(ServerWorkload("w", 5), 500)
        b = take(ServerWorkload("w", 5), 500)
        assert a == b

    def test_stream_is_restartable(self):
        wl = ServerWorkload("w", 5)
        assert take(wl, 200) == take(wl, 200)

    def test_different_seeds_differ(self):
        assert take(ServerWorkload("w", 5), 200) != take(ServerWorkload("w", 6), 200)

    def test_pcs_within_code_footprint(self):
        wl = ServerWorkload("w", 5, code_pages=64)
        for rec in take(wl, 2000):
            assert rec.pc >= CODE_BASE
            assert rec.num_instrs == wl.instrs_per_line

    def test_loads_land_in_known_regions(self):
        wl = ServerWorkload("w", 5)
        regions = set()
        for rec in take(wl, 5000):
            for addr in rec.loads:
                if addr >= LOCAL_BASE:
                    regions.add("local")
                elif addr >= STREAM_BASE:
                    regions.add("stream")
                elif addr >= WARM_BASE:
                    regions.add("warm")
                else:
                    assert addr >= DATA_BASE
                    regions.add("hot")
        assert regions == {"local", "stream", "warm", "hot"}

    def test_stores_are_local(self):
        wl = ServerWorkload("w", 5)
        for rec in take(wl, 3000):
            for addr in rec.stores:
                assert addr >= LOCAL_BASE

    def test_instruction_footprint_spans_many_pages(self):
        wl = ServerWorkload("w", 5, code_pages=256)
        pages = {rec.pc >> 12 for rec in take(wl, 20000)}
        assert len(pages) > 100

    def test_size_policy_respects_percent(self):
        wl0 = ServerWorkload("w", 5, large_page_percent=0)
        wl100 = ServerWorkload("w", 5, large_page_percent=100)
        addr = sparse_vaddr(DATA_BASE, 7)
        assert wl0.size_policy(addr) is PageSize.SIZE_4K
        assert wl100.size_policy(addr) is PageSize.SIZE_2M

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerWorkload("w", 1, code_pages=0)
        with pytest.raises(ValueError):
            ServerWorkload("w", 1, hot_data_pages=100, data_pages=50)
        with pytest.raises(ValueError):
            ServerWorkload("w", 1, warm_pages=10**9)
        with pytest.raises(ValueError):
            ServerWorkload("w", 1, hot_fraction=0.9, local_fraction=0.2)
        with pytest.raises(ValueError):
            ServerWorkload("w", 1, large_page_percent=101)


class TestSpecLikeWorkload:
    def test_small_code_footprint(self):
        wl = SpecLikeWorkload("s", 5, code_pages=4)
        pages = {rec.pc >> 12 for rec in take(wl, 5000)}
        assert len(pages) <= 4

    def test_deterministic(self):
        assert take(SpecLikeWorkload("s", 5), 300) == take(SpecLikeWorkload("s", 5), 300)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpecLikeWorkload("s", 1, hot_data_pages=100, data_pages=50)


class TestSuites:
    def test_server_suite_unique_names_and_seeds(self):
        suite = server_suite(8)
        assert len({w.name for w in suite}) == 8
        assert len({w.seed for w in suite}) == 8

    def test_spec_suite(self):
        suite = spec_suite(4)
        assert len(suite) == 4
        assert all(w.code_pages <= 8 for w in suite)

    def test_suite_large_page_propagates(self):
        suite = server_suite(2, large_page_percent=50)
        assert all(w.large_page_percent == 50 for w in suite)

    def test_smt_mixes_categories(self):
        mixes = smt_mixes(2)
        assert len(mixes) == 6
        categories = {m.category for m in mixes}
        assert categories == {"intense", "medium", "relaxed"}
        for mix in mixes:
            assert len(mix.workloads) == 2
            assert mix.thread0.name != mix.thread1.name

    def test_intense_mix_has_bigger_footprint_than_relaxed(self):
        mixes = {m.category: m for m in smt_mixes(1)}
        assert (
            mixes["intense"].thread1.data_pages > mixes["relaxed"].thread1.data_pages
        )


class TestPhasedWorkload:
    def test_alternates_phases(self):
        wl = PhasedWorkload("p", 3, phase_records=4000)
        records = take(wl, 8000)
        hi_pages = {r.pc >> 12 for r in records[:4000]}
        lo_pages = {r.pc >> 12 for r in records[4000:8000]}
        # The pressure phase roams a much larger code footprint.
        assert len(hi_pages) > 2 * len(lo_pages)

    def test_deterministic(self):
        assert take(PhasedWorkload("p", 3), 300) == take(PhasedWorkload("p", 3), 300)
