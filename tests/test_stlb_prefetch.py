"""Unit tests for the STLB prefetching extension (Section 7)."""

from dataclasses import replace

import pytest

from repro.common.params import scaled_config
from repro.common.types import AccessType
from repro.tlb.prefetch import (
    DistanceSTLBPrefetcher,
    SequentialSTLBPrefetcher,
    make_stlb_prefetcher,
)

I = AccessType.INSTRUCTION
D = AccessType.DATA


class TestSequential:
    def test_prefetches_next_pages(self):
        pf = SequentialSTLBPrefetcher(degree=2)
        assert pf.on_stlb_miss(100, D) == (101, 102)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            SequentialSTLBPrefetcher(degree=0)


class TestDistance:
    def test_no_prediction_without_history(self):
        pf = DistanceSTLBPrefetcher()
        assert pf.on_stlb_miss(100, D) == ()

    def test_learns_repeating_distance(self):
        pf = DistanceSTLBPrefetcher()
        pf.on_stlb_miss(100, D)
        pf.on_stlb_miss(104, D)   # distance 4 observed
        pf.on_stlb_miss(108, D)   # trains 4 -> 4
        assert pf.on_stlb_miss(112, D) == (116,)

    def test_streams_are_per_type(self):
        pf = DistanceSTLBPrefetcher()
        pf.on_stlb_miss(100, D)
        pf.on_stlb_miss(104, D)
        pf.on_stlb_miss(108, D)
        # An interleaved instruction miss must not disturb the data stream.
        pf.on_stlb_miss(7, I)
        assert pf.on_stlb_miss(112, D) == (116,)

    def test_changed_distance_suppresses_prediction(self):
        pf = DistanceSTLBPrefetcher()
        pf.on_stlb_miss(100, D)
        pf.on_stlb_miss(104, D)
        assert pf.on_stlb_miss(117, D) == ()  # distance 13 never seen


class TestFactory:
    def test_names(self):
        assert isinstance(make_stlb_prefetcher("sequential"), SequentialSTLBPrefetcher)
        assert isinstance(make_stlb_prefetcher("distance"), DistanceSTLBPrefetcher)
        assert make_stlb_prefetcher(None) is None

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_stlb_prefetcher("markov")


class TestMMUIntegration:
    def make_mmu(self, prefetcher):
        from repro.common.stats import SimStats
        from repro.ptw.page_table import PageTable
        from repro.ptw.walker import PageTableWalker
        from repro.tlb.hierarchy import MMU

        from .helpers import StubMemory

        config = replace(scaled_config(), stlb_prefetcher=prefetcher)
        stats = SimStats()
        walker = PageTableWalker(PageTable(), config.psc, StubMemory(), stats)
        return MMU(config, walker, stats), stats

    def test_sequential_prefetch_fills_next_page(self):
        mmu, stats = self.make_mmu("sequential")
        mmu.translate(0x5000, AccessType.DATA)
        assert mmu.stlb.probe(0x6000)
        assert stats.counters["stlb.prefetch_fills"] == 1
        assert stats.counters["ptw.pf_data_walks"] == 1

    def test_prefetch_off_demand_stats(self):
        mmu, stats = self.make_mmu("sequential")
        mmu.translate(0x5000, AccessType.DATA)
        # The demand walk counter sees only the demand miss.
        assert stats.counters["ptw.data_walks"] == 1
        assert stats.level("STLB").misses == 1

    def test_prefetched_entry_hits_later(self):
        mmu, stats = self.make_mmu("sequential")
        mmu.translate(0x5000, AccessType.DATA)
        result = mmu.translate(0x6000, AccessType.DATA)
        assert result.stlb_accessed and not result.stlb_miss

    def test_duplicate_prefetch_suppressed(self):
        mmu, stats = self.make_mmu("sequential")
        mmu.translate(0x5000, AccessType.DATA)
        mmu.translate(0x5000 + (1 << 21), AccessType.DATA)
        fills_before = stats.counters["stlb.prefetch_fills"]
        # Missing on 0x5000's neighbour again must not refetch it.
        mmu.translate(0x4000, AccessType.DATA)
        assert stats.counters["stlb.prefetch_fills"] == fills_before + 1 or \
            stats.counters["stlb.prefetch_fills"] == fills_before

    def test_no_prefetcher_by_default(self):
        mmu, stats = self.make_mmu(None)
        mmu.translate(0x5000, AccessType.DATA)
        assert "stlb.prefetch_fills" not in stats.counters
