"""Unit + property tests for the recency stack primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.recency import NaiveRecencyStack, RecencyStack


def make_stack(ways):
    stack = RecencyStack()
    for way in ways:
        stack.place_at_depth(way, 0)
    return stack


class TestBasics:
    def test_empty(self):
        stack = RecencyStack()
        assert len(stack) == 0
        with pytest.raises(IndexError):
            _ = stack.lru_way
        with pytest.raises(IndexError):
            _ = stack.mru_way

    def test_mru_insert_order(self):
        stack = make_stack([0, 1, 2])
        assert stack.mru_way == 2
        assert stack.lru_way == 0
        assert stack.order() == [2, 1, 0]

    def test_touch_moves_to_front(self):
        stack = make_stack([0, 1, 2])
        stack.touch(0)
        assert stack.order() == [0, 2, 1]

    def test_contains_and_remove(self):
        stack = make_stack([0, 1])
        assert 0 in stack and 1 in stack
        stack.remove(0)
        assert 0 not in stack
        assert stack.order() == [1]


class TestDepthPlacement:
    def test_place_at_depth_paper_step4(self):
        # Inserting at depth N shifts everything at/below N one toward LRU.
        stack = make_stack([0, 1, 2, 3])  # order [3,2,1,0]
        stack.place_at_depth(4, 2)
        assert stack.order() == [3, 2, 4, 1, 0]

    def test_place_at_depth_clamps(self):
        stack = make_stack([0, 1])
        stack.place_at_depth(2, 99)
        assert stack.lru_way == 2

    def test_place_at_depth_moves_existing(self):
        stack = make_stack([0, 1, 2])   # [2,1,0]
        stack.place_at_depth(0, 0)
        assert stack.order() == [0, 2, 1]

    def test_place_above_lru_zero_is_lru(self):
        stack = make_stack([0, 1, 2])
        stack.place_above_lru(3, 0)
        assert stack.lru_way == 3

    def test_place_above_lru_height(self):
        stack = make_stack([0, 1, 2, 3])  # [3,2,1,0]
        stack.place_above_lru(4, 2)
        # height 2 above LRU end: [3,2,4,1,0]
        assert stack.order() == [3, 2, 4, 1, 0]
        assert stack.height_from_lru(4) == 2

    def test_depth_and_height_are_complementary(self):
        stack = make_stack(range(5))
        for way in range(5):
            assert (
                stack.depth_from_mru(way) + stack.height_from_lru(way)
                == len(stack) - 1
            )

    def test_ways_from_lru_order(self):
        stack = make_stack([0, 1, 2])
        assert list(stack.ways_from_lru()) == [0, 1, 2]


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["touch", "place_depth", "place_above", "remove"]),
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=15),
        ),
        max_size=60,
    )
)
def test_stack_invariants_under_random_ops(ops):
    """The stack is always a permutation of the inserted ways; positions valid."""
    stack = RecencyStack()
    present = set()
    for op, way, arg in ops:
        if op == "touch":
            if way in present:
                stack.touch(way)
        elif op == "place_depth":
            stack.place_at_depth(way, arg)
            present.add(way)
        elif op == "place_above":
            stack.place_above_lru(way, arg)
            present.add(way)
        elif op == "remove":
            if way in present:
                stack.remove(way)
                present.discard(way)
        order = stack.order()
        assert sorted(order) == sorted(present)
        assert len(set(order)) == len(order)
        if present:
            assert stack.order()[0] == stack.mru_way
            assert stack.order()[-1] == stack.lru_way


@settings(max_examples=100, deadline=None)
@given(ways=st.permutations(list(range(8))), depth=st.integers(0, 8))
def test_place_at_depth_lands_at_clamped_depth(ways, depth):
    stack = RecencyStack()
    for way in ways[:-1]:
        stack.place_at_depth(way, 0)
    new_way = ways[-1]
    stack.place_at_depth(new_way, depth)
    assert stack.depth_from_mru(new_way) == min(depth, len(stack) - 1)


# --------------------------------------------------------------------------- #
# Differential tests: the O(1) linked-list stack against the naive list-based
# reference model.  Any sequence of public operations must leave both in the
# same MRU->LRU order — this is what licenses the DLL implementation to stand
# in for the original without changing a single simulation metric.
# --------------------------------------------------------------------------- #

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["touch", "place_depth", "place_above", "remove", "discard"]
        ),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=-2, max_value=15),
    ),
    max_size=80,
)


def _apply(stack, op, way, arg):
    if op == "touch":
        stack.touch(way)
    elif op == "place_depth":
        stack.place_at_depth(way, arg)
    elif op == "place_above":
        stack.place_above_lru(way, arg)
    elif op == "remove":
        stack.remove(way)
    elif op == "discard":
        stack.discard(way)


class TestDifferential:
    @settings(max_examples=300, deadline=None)
    @given(ops=_OPS)
    def test_linked_stack_matches_naive_reference(self, ops):
        fast, ref = RecencyStack(), NaiveRecencyStack()
        for op, way, arg in ops:
            if op in ("touch", "remove") and way not in ref:
                # Both implementations must reject the missing way.
                with pytest.raises(ValueError):
                    _apply(ref, op, way, arg)
                with pytest.raises(ValueError):
                    _apply(fast, op, way, arg)
                continue
            _apply(ref, op, way, arg)
            _apply(fast, op, way, arg)
            assert fast.order() == ref.order()
            assert len(fast) == len(ref)

    @settings(max_examples=150, deadline=None)
    @given(ops=_OPS)
    def test_derived_queries_agree(self, ops):
        fast, ref = RecencyStack(), NaiveRecencyStack()
        for op, way, arg in ops:
            if op in ("touch", "remove") and way not in ref:
                continue
            _apply(ref, op, way, arg)
            _apply(fast, op, way, arg)
        assert list(fast) == list(ref)
        assert list(fast.ways_from_lru()) == list(ref.ways_from_lru())
        for way in ref.order():
            assert fast.depth_from_mru(way) == ref.depth_from_mru(way)
            assert fast.height_from_lru(way) == ref.height_from_lru(way)
            assert way in fast
        if len(ref):
            assert fast.mru_way == ref.mru_way
            assert fast.lru_way == ref.lru_way


class TestBulkTouch:
    """touch_many/bulk_touch must be exactly per-element touch, in order."""

    def test_touch_many_equals_sequential_touch(self):
        bulk = make_stack([0, 1, 2, 3])
        sequential = make_stack([0, 1, 2, 3])
        for way in (2, 0, 2, 3):
            sequential.touch(way)
        bulk.touch_many((2, 0, 2, 3))
        assert bulk.order() == sequential.order()

    def test_touch_many_on_naive_stack(self):
        stack = NaiveRecencyStack()
        for way in (0, 1, 2):
            stack.place_at_depth(way, 0)
        stack.touch_many((0, 1))
        assert stack.order() == [1, 0, 2]

    def test_touch_many_empty_iterable_is_noop(self):
        stack = make_stack([0, 1])
        stack.touch_many(())
        assert stack.order() == [1, 0]

    def test_bulk_touch_routes_by_set_index(self):
        from repro.common.recency import bulk_touch

        stacks = [make_stack([0, 1, 2]) for _ in range(3)]
        reference = [make_stack([0, 1, 2]) for _ in range(3)]
        pairs = [(0, 1), (2, 0), (0, 2), (1, 1), (0, 1)]
        for s, w in pairs:
            reference[s].touch(w)
        bulk_touch(stacks, [s for s, _ in pairs], [w for _, w in pairs])
        for stack, ref in zip(stacks, reference):
            assert stack.order() == ref.order()

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=0, max_value=3)),
            max_size=60,
        )
    )
    def test_bulk_touch_matches_scalar_touch_sequence(self, pairs):
        from repro.common.recency import bulk_touch

        stacks = [make_stack([0, 1, 2, 3]) for _ in range(4)]
        reference = [make_stack([0, 1, 2, 3]) for _ in range(4)]
        for s, w in pairs:
            reference[s].touch(w)
        bulk_touch(stacks, [s for s, _ in pairs], [w for _, w in pairs])
        for stack, ref in zip(stacks, reference):
            assert stack.order() == ref.order()

    def test_checked_stack_verifies_touch_many(self):
        from repro.common.invariants import CheckedRecencyStack

        stack = CheckedRecencyStack()
        for way in (0, 1, 2):
            stack.place_at_depth(way, 0)
        stack.touch_many((0, 2))
        assert stack.order() == [2, 0, 1]
