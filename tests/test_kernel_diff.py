"""Differential lock: the batched kernel against the scalar spec engine.

The batched engine (:mod:`repro.kernel.batched`) promises *bit-identical*
statistics — not statistically similar, identical.  This suite enforces
that promise the same way the golden tests pin the spec itself:

* a Hypothesis sweep over (technique, workload kind, seed, page mix) runs
  both engines over the same window and requires the full metric report —
  every counter, every derived rate, the cycle total — to match exactly;
* directed cases cover the behaviours most likely to break block batching
  (phase changes mid-block, 2 MB page mixes, store-heavy streams);
* engine selection plumbing (``resolve_engine``, ``REPRO_ENGINE``, the
  result-cache key) is pinned so a config typo cannot silently fall back
  to the wrong engine or serve one engine's cache entry to the other.

Example intensity follows the shared tier profiles
(``REPRO_HYPOTHESIS_PROFILE``, see ``tests/stateful/profiles.py``), and
the whole file runs under ``REPRO_CHECK=1`` in CI so the differential
also executes with the shadow-oracle structures installed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpu import Core
from repro.core.simulator import simulate
from repro.core.system import System
from repro.experiments.parallel import SimJob, job_key
from repro.experiments.runner import config_for
from repro.kernel import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINES,
    BatchedEngine,
    resolve_engine,
)
from repro.workloads.phased import PhasedWorkload
from repro.workloads.server import ServerWorkload
from repro.workloads.speclike import SpecLikeWorkload

from .stateful.profiles import ACTIVE_PROFILE

#: Examples per tier for the full-system differential (each example runs
#: two complete simulations, so these are deliberately below the stateful
#: machines' example counts).
DIFF_EXAMPLES = {"dev": 8, "ci": 25, "deep": 120}[ACTIVE_PROFILE]

WORKLOAD_KINDS = {
    "server": ServerWorkload,
    "spec": SpecLikeWorkload,
    "phased": PhasedWorkload,
}

WARMUP = 1_500
MEASURE = 6_000


def make_workload(kind, seed, large_page_percent=0):
    workload = WORKLOAD_KINDS[kind](f"diff_{kind}_{seed}", seed)
    workload.large_page_percent = large_page_percent
    return workload


def run_both(technique, kind, seed, large_page_percent=0,
             warmup=WARMUP, measure=MEASURE):
    """Run the same cell under both engines; returns (spec, batched)."""
    config = config_for(technique)
    results = []
    for engine in ENGINES:
        workload = make_workload(kind, seed, large_page_percent)
        results.append(
            simulate(config, workload, warmup, measure, engine=engine)
        )
    return results


def assert_identical(spec_result, batched_result):
    assert batched_result.stats.cycles == spec_result.stats.cycles
    assert batched_result.stats.instructions == spec_result.stats.instructions
    assert batched_result.metrics == spec_result.metrics


class TestDifferential:
    @settings(max_examples=DIFF_EXAMPLES, deadline=None)
    @given(
        technique=st.sampled_from(["lru", "itp", "itp+xptp", "tdrrip"]),
        kind=st.sampled_from(sorted(WORKLOAD_KINDS)),
        seed=st.integers(min_value=0, max_value=2**16),
        large_page_percent=st.sampled_from([0, 25, 60]),
    )
    def test_engines_bit_identical(self, technique, kind, seed,
                                   large_page_percent):
        spec_result, batched_result = run_both(
            technique, kind, seed, large_page_percent
        )
        assert_identical(spec_result, batched_result)

    def test_phase_change_mid_stream(self):
        # PhasedWorkload flips its working set every few thousand records;
        # phase boundaries land mid-block, exercising the re-probe/fallback
        # transitions between the kernel's tiers.
        spec_result, batched_result = run_both(
            "itp+xptp", "phased", 11, warmup=2_000, measure=10_000
        )
        assert_identical(spec_result, batched_result)

    def test_large_page_mix(self):
        spec_result, batched_result = run_both("itp", "server", 3,
                                               large_page_percent=50)
        assert_identical(spec_result, batched_result)


class TestCoverage:
    def test_fast_path_coverage_sane(self):
        workload = ServerWorkload("cov", 5)
        system = System(config_for("itp+xptp"), workload.size_policy)
        core = Core(system, thread_id=0)
        kernel = BatchedEngine(system, core, workload.record_stream())
        kernel.run_records(4_000)
        assert kernel.total_records == 4_000
        assert kernel.fast_records >= 0
        assert kernel.issue_records >= 0
        assert kernel.fast_records + kernel.issue_records <= kernel.total_records
        assert 0.0 <= kernel.fast_path_coverage <= 1.0
        # A server workload is hit-dominated; a coverage collapse means the
        # fast-path gate broke, even if bit-identity still holds.
        assert kernel.fast_path_coverage > 0.3

    def test_reset_stats_clears_coverage_counters(self):
        workload = ServerWorkload("cov-reset", 5)
        system = System(config_for("lru"), workload.size_policy)
        core = Core(system, thread_id=0)
        kernel = BatchedEngine(system, core, workload.record_stream())
        kernel.run_records(1_000)
        kernel.reset_stats()
        assert kernel.total_records == 0
        assert kernel.fast_records == 0
        assert kernel.issue_records == 0


class TestResolveEngine:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine(None) == DEFAULT_ENGINE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "batched")
        assert resolve_engine(None) == "batched"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "batched")
        assert resolve_engine("spec") == "spec"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("vectorized")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine(None)


class TestJobKeyEngine:
    def _job(self, engine):
        workload = ServerWorkload("jk", 3)
        return SimJob(config_for("lru"), (workload,), 1_000, 4_000,
                      label="lru", engine=engine)

    def test_engines_get_distinct_cache_keys(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert job_key(self._job("spec")) != job_key(self._job("batched"))

    def test_none_resolves_to_default_key(self, monkeypatch):
        # A job built without an engine must share its cache entry with a
        # job pinning the resolved default explicitly.
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert job_key(self._job(None)) == job_key(self._job(DEFAULT_ENGINE))

    def test_invalid_engine_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="unknown engine"):
            self._job("vectorized")


@pytest.mark.repro_check
class TestReproCheckSmoke:
    def test_differential_clean_with_shadow_oracles(self, monkeypatch):
        # The kernel's fast-path gate must coexist with the REPRO_CHECK
        # structures (CheckedRecencyStack et al.) and stay bit-identical.
        monkeypatch.setenv("REPRO_CHECK", "1")
        spec_result, batched_result = run_both(
            "itp+xptp", "server", 7, warmup=1_000, measure=4_000
        )
        assert_identical(spec_result, batched_result)
