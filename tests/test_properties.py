"""Property-based tests: the cache and TLB against reference models."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType, PageSize
from repro.ptw.page_table import PageTable

from .helpers import load, make_cache


class ReferenceLRUCache:
    """Dict-of-OrderedDict LRU cache: the specification for our LRU level."""

    def __init__(self, num_sets, assoc):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, line_address):
        s = self.sets[line_address & (self.num_sets - 1)]
        hit = line_address in s
        if hit:
            s.move_to_end(line_address)
        else:
            if len(s) >= self.assoc:
                s.popitem(last=False)
            s[line_address] = True
        return hit

    def contains(self, line_address):
        return line_address in self.sets[line_address & (self.num_sets - 1)]


@settings(max_examples=120, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200)
)
def test_lru_cache_matches_reference_model(addresses):
    """Hit/miss sequence and final contents must match the reference LRU."""
    cache, _ = make_cache(sets=4, assoc=2)
    reference = ReferenceLRUCache(4, 2)
    for line in addresses:
        expected_hit = reference.access(line)
        latency = cache.access(load(line << 6))
        actual_hit = latency == cache.config.latency
        assert actual_hit == expected_hit
    for line in set(addresses):
        assert cache.probe(line << 6) == reference.contains(line)


@settings(max_examples=120, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=150)
)
def test_tlb_lru_matches_reference_model(addresses):
    from repro.common.params import TLBConfig
    from repro.common.stats import LevelStats
    from repro.tlb.policies.registry import make_tlb_policy
    from repro.tlb.tlb import TLB

    config = TLBConfig("T", entries=8, associativity=2, latency=1)
    tlb = TLB(config, make_tlb_policy("lru", 4, 2), LevelStats("T"))
    reference = ReferenceLRUCache(4, 2)

    for vpn in addresses:
        expected_hit = reference.access(vpn)
        entry = tlb.lookup(vpn << 12, AccessType.DATA)
        assert (entry is not None) == expected_hit
        if entry is None:
            tlb.insert(vpn << 12, vpn, PageSize.SIZE_4K, AccessType.DATA)
    for vpn in set(addresses):
        assert tlb.probe(vpn << 12) == reference.contains(vpn)


@settings(max_examples=60, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=511), min_size=1, max_size=120),
    policy=st.sampled_from(["lru", "srrip", "drrip", "tdrrip", "ptp", "xptp", "ship", "mockingjay"]),
)
def test_cache_invariants_under_any_policy(addresses, policy):
    """Structural invariants hold for every replacement policy.

    Occupancy never exceeds capacity, a line probed true was accessed, and
    every demand access after the first to a still-resident line is a hit.
    """
    cache, _ = make_cache(sets=4, assoc=2, policy=policy)
    for line in addresses:
        cache.access(load(line << 6, pc=line))
        assert cache.occupancy() <= 8
        assert cache.probe(line << 6)  # just-accessed line must be resident
    assert cache.stats.accesses == len(addresses)
    assert cache.stats.hits + cache.stats.misses == len(addresses)


@settings(max_examples=60, deadline=None)
@given(
    vpns=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=80),
    large=st.booleans(),
)
def test_page_table_walk_addresses_are_consistent(vpns, large):
    """Walks of the same page always read the same entry addresses, and the
    leaf entry address determines the mapping."""
    size_policy = (lambda v: PageSize.SIZE_2M) if large else None
    pt = PageTable(size_policy)
    seen = {}
    for vpn in vpns:
        path = pt.walk_path(vpn << 12)
        key = path.steps[-1].entry_address
        if key in seen:
            assert seen[key] == (path.pfn, path.page_size)
        elif not large:
            # 4 KB leaves: one entry address <-> one pfn
            seen[key] = (path.pfn, path.page_size)
        again = pt.walk_path(vpn << 12)
        assert again.steps == path.steps
        assert again.pfn == path.pfn


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_workload_streams_are_reproducible(seed):
    import itertools

    from repro.workloads.server import ServerWorkload

    wl1 = ServerWorkload("a", seed, code_pages=32, data_pages=600,
                         hot_data_pages=32, warm_pages=64, local_pages=8)
    wl2 = ServerWorkload("a", seed, code_pages=32, data_pages=600,
                         hot_data_pages=32, warm_pages=64, local_pages=8)
    a = list(itertools.islice(wl1.record_stream(), 64))
    b = list(itertools.islice(wl2.record_stream(), 64))
    assert a == b


@settings(max_examples=40, deadline=None)
@given(
    vpns=st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=2, max_size=40)
)
def test_walker_refs_never_increase_for_repeated_walks(vpns):
    """Re-walking the same page never needs more references than before.

    The PSCs only gain information along a walked path, so the reference
    count for a given vaddr is non-increasing between *consecutive* walks
    of that vaddr (other walks may evict PSC entries in between, but an
    immediate re-walk must hit every PSC level the first walk filled).
    """
    from repro.common.params import PSCConfig
    from repro.common.stats import SimStats
    from repro.common.types import AccessType
    from repro.ptw.page_table import PageTable
    from repro.ptw.walker import PageTableWalker

    from .helpers import StubMemory

    walker = PageTableWalker(PageTable(), PSCConfig(), StubMemory(), SimStats())
    for vpn in vpns:
        first = walker.walk(vpn << 12, AccessType.DATA)
        second = walker.walk(vpn << 12, AccessType.DATA)
        assert second.memory_references <= first.memory_references
        assert second.pfn == first.pfn
        # An immediate re-walk resumes from PSCL2: exactly the leaf read.
        assert second.memory_references == 1
