"""Unit tests for the MMU (Figure 7 operation)."""

from dataclasses import replace

from repro.common.params import TLBConfig, scaled_config
from repro.common.stats import SimStats
from repro.common.types import AccessType, PageSize
from repro.ptw.page_table import PageTable
from repro.ptw.walker import PageTableWalker
from repro.tlb.hierarchy import MMU

from .helpers import StubMemory


def make_mmu(config=None, size_policy=None):
    config = config or scaled_config()
    stats = SimStats()
    memory = StubMemory(latency=30)
    pt = PageTable(size_policy)
    walker = PageTableWalker(pt, config.psc, memory, stats)
    return MMU(config, walker, stats), stats, memory


class TestTranslationPath:
    def test_cold_miss_walks(self):
        mmu, stats, _ = make_mmu()
        result = mmu.translate(0x5000, AccessType.DATA)
        assert result.stlb_miss
        assert result.stlb_accessed
        assert result.latency > mmu.config.stlb.latency
        assert stats.level("STLB").misses == 1
        assert stats.level("DTLB").misses == 1

    def test_l1_hit_is_free(self):
        mmu, stats, _ = make_mmu()
        first = mmu.translate(0x5000, AccessType.DATA)
        second = mmu.translate(0x5000, AccessType.DATA)
        assert second.latency == 0
        assert not second.stlb_accessed
        assert second.pfn == first.pfn

    def test_instruction_uses_itlb(self):
        mmu, stats, _ = make_mmu()
        mmu.translate(0x5000, AccessType.INSTRUCTION)
        assert stats.level("ITLB").misses == 1
        assert stats.level("DTLB").accesses == 0

    def test_stlb_hit_refills_l1(self):
        config = scaled_config()
        # Shrink the L1 TLBs to 1 set of 4 so we can evict from L1 only.
        tiny = TLBConfig("DTLB", entries=4, associativity=4, latency=1)
        config = replace(config, dtlb=tiny)
        mmu, stats, _ = make_mmu(config)
        mmu.translate(0x0000, AccessType.DATA)
        for page in range(1, 5):  # evict page 0 from the 4-entry DTLB
            mmu.translate(page << 12, AccessType.DATA)
        result = mmu.translate(0x0000, AccessType.DATA)
        assert result.stlb_accessed
        assert not result.stlb_miss
        assert result.latency == mmu.config.stlb.latency
        # And it is back in the DTLB now.
        assert mmu.translate(0x0000, AccessType.DATA).latency == 0

    def test_stlb_miss_counter_for_adaptive(self):
        mmu, _, _ = make_mmu()
        mmu.translate(0x5000, AccessType.DATA)
        mmu.translate(0x6000, AccessType.DATA)
        assert mmu.take_stlb_miss_events() == 2
        assert mmu.take_stlb_miss_events() == 0

    def test_translation_cycle_accounting(self):
        mmu, stats, _ = make_mmu()
        mmu.translate(0x5000, AccessType.INSTRUCTION)
        mmu.translate(0x9000, AccessType.DATA)
        assert stats.counters["translation.instr_cycles"] > 0
        assert stats.counters["translation.data_cycles"] > 0


class TestTypeBit:
    def test_stlb_entry_type_matches_requester(self):
        mmu, _, _ = make_mmu()
        mmu.translate(0x5000, AccessType.INSTRUCTION)
        entry = mmu.stlb.lookup(0x5000, AccessType.INSTRUCTION)
        assert entry.is_instruction
        mmu.translate(0x9000, AccessType.DATA)
        entry = mmu.stlb.lookup(0x9000, AccessType.DATA)
        assert not entry.is_instruction


class TestLargePages:
    def test_2m_translation_covers_region(self):
        mmu, _, _ = make_mmu(size_policy=lambda vaddr: PageSize.SIZE_2M)
        first = mmu.translate(0x20_0000, AccessType.DATA)
        assert first.page_size is PageSize.SIZE_2M
        # A different 4 KB frame inside the same 2 MB page: L1 TLB hit with a
        # correctly offset pfn.
        second = mmu.translate(0x20_5000, AccessType.DATA)
        assert second.latency == 0
        assert second.pfn == first.pfn + 5

    def test_2m_pfn_composition_via_stlb(self):
        config = scaled_config()
        tiny = TLBConfig("DTLB", entries=4, associativity=4, latency=1)
        config = replace(config, dtlb=tiny)
        mmu, _, _ = make_mmu(config, size_policy=lambda vaddr: PageSize.SIZE_2M)
        first = mmu.translate(0x20_0000, AccessType.DATA)
        for page in range(1, 6):
            mmu.translate((0x40_0000 * (page + 1)), AccessType.DATA)
        # Refill from STLB at a different offset: pfn must be offset-adjusted.
        again = mmu.translate(0x20_7000, AccessType.DATA)
        assert again.pfn == first.pfn + 7


class TestSplitSTLB:
    def make_split(self):
        config = scaled_config()
        half = TLBConfig("ISTLB", entries=192, associativity=12, latency=8)
        config = replace(config, istlb=half, stlb=replace(config.stlb, entries=192))
        return make_mmu(config)

    def test_routing_by_type(self):
        mmu, _, _ = self.make_split()
        assert mmu.split
        mmu.translate(0x5000, AccessType.INSTRUCTION)
        mmu.translate(0x9000, AccessType.DATA)
        assert mmu.stlb_instr.occupancy() == 1
        assert mmu.stlb_data.occupancy() == 1
        assert mmu.stlb_instr.probe(0x5000)
        assert not mmu.stlb_instr.probe(0x9000)

    def test_shared_stats_level(self):
        mmu, stats, _ = self.make_split()
        mmu.translate(0x5000, AccessType.INSTRUCTION)
        mmu.translate(0x9000, AccessType.DATA)
        assert stats.level("STLB").misses == 2
