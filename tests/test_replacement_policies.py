"""Unit tests for cache replacement policies (LRU, Random, SRRIP/DRRIP family)."""

import pytest

from repro.cache.line import CacheLine
from repro.common.types import AccessType, MemoryRequest, RequestType
from repro.replacement.drrip import DRRIPPolicy, PSEL_MAX
from repro.replacement.lru import LRUPolicy
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.registry import available_policies, make_cache_policy
from repro.replacement.srrip import RRPV_LONG, RRPV_MAX, SRRIPPolicy
from repro.replacement.tdrrip import TDRRIPPolicy


def lines(n=4):
    return [CacheLine(valid=True, tag=i) for i in range(n)]


def req(req_type=RequestType.LOAD, is_pte=False, ttype=None, stlb_miss=False, pc=0):
    return MemoryRequest(
        address=0x1000, req_type=req_type, is_pte=is_pte,
        translation_type=ttype, stlb_miss=stlb_miss, pc=pc,
    )


class TestLRUPolicy:
    def test_victim_is_least_recent_fill(self):
        policy = LRUPolicy(1, 4)
        ls = lines()
        for way in range(4):
            policy.on_fill(0, way, ls, req())
        assert policy.victim(0, ls, req()) == 0

    def test_hit_promotes(self):
        policy = LRUPolicy(1, 4)
        ls = lines()
        for way in range(4):
            policy.on_fill(0, way, ls, req())
        policy.on_hit(0, 0, ls, req())
        assert policy.victim(0, ls, req()) == 1

    def test_evict_removes_from_stack(self):
        policy = LRUPolicy(1, 2)
        ls = lines(2)
        policy.on_fill(0, 0, ls, req())
        policy.on_fill(0, 1, ls, req())
        policy.on_evict(0, 0, ls)
        assert policy.victim(0, ls, req()) == 1


class TestRandomPolicy:
    def test_victims_in_range_and_deterministic(self):
        p1 = RandomPolicy(1, 4, seed=42)
        p2 = RandomPolicy(1, 4, seed=42)
        ls = lines()
        seq1 = [p1.victim(0, ls, req()) for _ in range(20)]
        seq2 = [p2.victim(0, ls, req()) for _ in range(20)]
        assert seq1 == seq2
        assert all(0 <= v < 4 for v in seq1)
        assert len(set(seq1)) > 1


class TestSRRIP:
    def test_fill_inserts_long(self):
        policy = SRRIPPolicy(1, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req())
        assert ls[0].rrpv == RRPV_LONG

    def test_hit_promotes_to_near(self):
        policy = SRRIPPolicy(1, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req())
        policy.on_hit(0, 0, ls, req())
        assert ls[0].rrpv == 0

    def test_victim_prefers_distant(self):
        policy = SRRIPPolicy(1, 4)
        ls = lines()
        for way in range(4):
            ls[way].rrpv = RRPV_LONG
        ls[2].rrpv = RRPV_MAX
        assert policy.victim(0, ls, req()) == 2

    def test_victim_ages_set_when_no_distant(self):
        policy = SRRIPPolicy(1, 4)
        ls = lines()
        for way in range(4):
            ls[way].rrpv = 0
        victim = policy.victim(0, ls, req())
        assert victim == 0
        assert all(line.rrpv == RRPV_MAX for line in ls)


class TestDRRIP:
    def test_leader_sets_disjoint(self):
        policy = DRRIPPolicy(64, 4)
        assert not (policy.srrip_leaders & policy.brrip_leaders)
        assert policy.srrip_leaders and policy.brrip_leaders

    def test_psel_moves_on_leader_misses(self):
        policy = DRRIPPolicy(64, 4)
        start = policy.psel
        leader = next(iter(policy.srrip_leaders))
        policy.record_miss(leader)
        assert policy.psel == start + 1
        brrip_leader = next(iter(policy.brrip_leaders))
        policy.record_miss(brrip_leader)
        assert policy.psel == start

    def test_psel_saturates(self):
        policy = DRRIPPolicy(64, 4)
        leader = next(iter(policy.srrip_leaders))
        for _ in range(PSEL_MAX * 2):
            policy.record_miss(leader)
        assert policy.psel == PSEL_MAX

    def test_brrip_mostly_inserts_distant(self):
        policy = DRRIPPolicy(64, 4, seed=7)
        brrip_leader = next(iter(policy.brrip_leaders))
        ls = lines()
        distant = 0
        for _ in range(64):
            policy.on_fill(brrip_leader, 0, ls, req())
            distant += ls[0].rrpv == RRPV_MAX
        assert distant > 48  # 31/32 expected


class TestTDRRIP:
    def test_pte_fill_near(self):
        policy = TDRRIPPolicy(64, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req(RequestType.PTW, is_pte=True, ttype=AccessType.DATA))
        assert ls[0].rrpv == 0

    def test_stlb_miss_demand_fill_distant(self):
        policy = TDRRIPPolicy(64, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req(stlb_miss=True))
        assert ls[0].rrpv == RRPV_MAX

    def test_normal_demand_follows_drrip(self):
        policy = TDRRIPPolicy(64, 4)
        leader = next(iter(policy.srrip_leaders))
        ls = lines()
        policy.on_fill(leader, 0, ls, req())
        assert ls[0].rrpv == RRPV_LONG


class TestRegistry:
    def test_all_registered_policies_instantiate(self):
        for name in available_policies():
            policy = make_cache_policy(name, 8, 4)
            assert policy.num_sets == 8
            assert policy.associativity == 4

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_cache_policy("belady", 8, 4)

    def test_xptp_k_passthrough(self):
        policy = make_cache_policy("xptp", 8, 4, xptp_k=3)
        assert policy.k == 3


class TestTSHiP:
    def test_pte_fill_near(self):
        from repro.replacement.tship import TSHiPPolicy

        policy = TSHiPPolicy(64, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req(RequestType.PTW, is_pte=True, ttype=AccessType.DATA))
        assert ls[0].rrpv == 0

    def test_stlb_miss_fill_distant(self):
        from repro.replacement.tship import TSHiPPolicy

        policy = TSHiPPolicy(64, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req(stlb_miss=True))
        assert ls[0].rrpv == RRPV_MAX

    def test_normal_fill_uses_shct(self):
        from repro.replacement.ship import pc_signature
        from repro.replacement.tship import TSHiPPolicy

        policy = TSHiPPolicy(64, 4)
        ls = lines()
        r = req(pc=0x1234)
        policy.shct[pc_signature(r)] = 0
        policy.on_fill(0, 0, ls, r)
        assert ls[0].rrpv == RRPV_MAX

    def test_registered(self):
        from repro.replacement.registry import make_cache_policy
        from repro.replacement.tship import TSHiPPolicy

        assert isinstance(make_cache_policy("tship", 8, 4), TSHiPPolicy)
