"""Executable boundary specs for the paper's edge semantics.

The stateful machines in ``tests/stateful/`` explore these rules under
random interleavings; this module pins the *exact boundary values* as
plain, named tests so the semantics are documented somewhere a reader (or
a future vectorized reimplementation) can diff against:

* xPTP step (c): an alternative victim exactly ``K`` positions above the
  LRU end is still taken; one *more than* ``K`` above falls back to the
  plain LRU victim (``src/repro/replacement/xptp.py``, Figure 6);
* iTP: instruction translations insert at ``MRUpos − N`` with ``Freq = 0``
  and only a *saturated* Freq counter earns the MRU position on a hit;
  data translations insert at ``LRUpos`` and promote to ``LRUpos + M``
  (``src/repro/tlb/policies/itp.py``, Figure 5).
"""

from repro.cache.cache import SetAssociativeCache
from repro.cache.mshr import MSHRFile
from repro.common.params import CacheConfig, ITPConfig, TLBConfig
from repro.common.stats import LevelStats
from repro.common.types import AccessType, PageSize, RequestType
from repro.replacement.xptp import XPTPPolicy
from repro.tlb.policies.itp import ITPPolicy
from repro.tlb.tlb import TLB

from .helpers import StubMemory, line_addr, load, ptw

DATA = AccessType.DATA
INSTR = AccessType.INSTRUCTION


class TestXPTPStepCBoundary:
    """Figure 6 step (c): the K-positions-above-LRU cutoff is inclusive."""

    def _protected_cache(self, k, assoc=4):
        config = CacheConfig("SPEC", size_bytes=4 * assoc * 64,
                             associativity=assoc, latency=1, mshr_entries=4)
        return SetAssociativeCache(
            config, XPTPPolicy(4, assoc, k=k), StubMemory(), LevelStats("SPEC")
        )

    def _setup_set(self, cache, data_pte_heights):
        """Fill set 0 with 4 blocks; ``data_pte_heights`` marks which stack
        heights above LRU (0 = LRU itself) hold data PTEs.  Blocks are filled
        oldest-first, so the block filled at step ``h`` ends up ``h`` positions
        above the LRU end — and its tag is chosen to equal that height.
        """
        for height in range(cache.associativity):
            tag = height
            if height in data_pte_heights:
                cache.access(ptw(line_addr(0, tag, 4), DATA))
            else:
                cache.access(load(line_addr(0, tag, 4)))

    def test_alternative_at_exactly_k_is_taken(self):
        cache = self._protected_cache(k=2)
        # Heights 0,1 hold data PTEs; the nearest alternative is at height 2.
        self._setup_set(cache, data_pte_heights={0, 1})
        cache.access(load(line_addr(0, 9, 4)))  # forces an eviction
        assert cache.policy.protected_evictions_avoided == 1
        assert cache.probe(line_addr(0, 0, 4))      # LRU data PTE protected
        assert not cache.probe(line_addr(0, 2, 4))  # height-2 block evicted

    def test_alternative_more_than_k_above_falls_back_to_lru(self):
        cache = self._protected_cache(k=2)
        # Heights 0..2 hold data PTEs; the nearest alternative is at height 3.
        self._setup_set(cache, data_pte_heights={0, 1, 2})
        cache.access(load(line_addr(0, 9, 4)))
        assert cache.policy.protected_evictions_avoided == 0
        assert not cache.probe(line_addr(0, 0, 4))  # LRU evicted after all
        assert cache.probe(line_addr(0, 3, 4))      # alternative untouched

    def test_all_data_pte_set_falls_back_to_lru(self):
        cache = self._protected_cache(k=3)
        self._setup_set(cache, data_pte_heights={0, 1, 2, 3})
        cache.access(load(line_addr(0, 9, 4)))
        assert cache.policy.protected_evictions_avoided == 0
        assert not cache.probe(line_addr(0, 0, 4))

    def test_disabled_policy_is_exact_lru(self):
        cache = self._protected_cache(k=2)
        self._setup_set(cache, data_pte_heights={0})
        cache.policy.enabled = False
        cache.access(load(line_addr(0, 9, 4)))
        assert cache.policy.protected_evictions_avoided == 0
        assert not cache.probe(line_addr(0, 0, 4))


class TestITPBoundaries:
    """Figure 5 edges: insertion depth, saturation, and data demotion."""

    N, M = 1, 2
    CONFIG = ITPConfig(insert_depth_n=N, data_promote_m=M)

    def _tlb(self, assoc=4):
        config = TLBConfig("SPEC", entries=assoc, associativity=assoc,
                          latency=1, replacement="itp")
        policy = ITPPolicy(1, assoc, self.CONFIG)
        return TLB(config, policy, LevelStats("SPEC")), policy

    def _order(self, tlb):
        """MRU→LRU vpn order of the single set."""
        way_to_vpn = {
            way: tlb.sets[0][way].vpn for way in tlb._key_maps[0].values()
        }
        return [way_to_vpn[w] for w in tlb.policy.stacks[0].order()]

    def _insert(self, tlb, vpn, access_type):
        tlb.insert(vpn << 12, vpn, PageSize.SIZE_4K, access_type)

    def test_instruction_inserts_at_depth_n_with_freq_zero(self):
        tlb, _ = self._tlb()
        for vpn in (0, 4, 8):  # one set: all vpns map to set 0
            self._insert(tlb, vpn, DATA)
        self._insert(tlb, 12, INSTR)
        order = self._order(tlb)
        assert order.index(12) == self.N
        way = tlb._key_maps[0][12 << 1]
        assert tlb.sets[0][way].freq == 0

    def test_data_inserts_at_lru(self):
        tlb, _ = self._tlb()
        self._insert(tlb, 0, INSTR)
        self._insert(tlb, 4, INSTR)
        self._insert(tlb, 8, DATA)
        assert self._order(tlb)[-1] == 8

    def test_unsaturated_hit_promotes_to_depth_n_and_increments_freq(self):
        tlb, _ = self._tlb()
        for vpn in (0, 4, 8, 12):
            self._insert(tlb, vpn, INSTR)
        assert tlb.lookup(0 << 12, INSTR) is not None
        order = self._order(tlb)
        assert order.index(0) == self.N, "unsaturated hit must stop at MRUpos-N"
        way = tlb._key_maps[0][0 << 1]
        assert tlb.sets[0][way].freq == 1

    def test_saturated_hit_earns_mru(self):
        tlb, _ = self._tlb()
        for vpn in (0, 4, 8, 12):
            self._insert(tlb, vpn, INSTR)
        way = tlb._key_maps[0][0 << 1]
        freq_max = self.CONFIG.freq_max
        for _ in range(freq_max):
            tlb.lookup(0 << 12, INSTR)
        assert tlb.sets[0][way].freq == freq_max
        assert self._order(tlb).index(0) == self.N  # saturated, not yet moved
        tlb.lookup(0 << 12, INSTR)  # first hit *after* saturation
        assert self._order(tlb).index(0) == 0, "saturated Freq earns MRUpos"
        assert tlb.sets[0][way].freq == freq_max, "Freq must not overflow 3 bits"

    def test_data_hit_promotes_to_lru_plus_m(self):
        tlb, _ = self._tlb()
        for vpn in (0, 4, 8, 12):
            self._insert(tlb, vpn, INSTR)
        assert tlb.lookup(0 << 12, DATA) is not None
        order = self._order(tlb)
        height = len(order) - 1 - order.index(0)
        assert height == self.M, "data hit must promote to LRUpos + M"

    def test_victim_is_lru_regardless_of_type(self):
        tlb, _ = self._tlb()
        for vpn in (0, 4, 8, 12):
            self._insert(tlb, vpn, INSTR)
        lru_vpn = self._order(tlb)[-1]
        self._insert(tlb, 16, DATA)
        assert tlb.stats.evictions == 1
        assert not tlb.probe(lru_vpn << 12)


class TestMSHRRetirementSpec:
    """The structural-hazard boundary: retirement is an early fill, not a drop."""

    def test_full_file_retires_exactly_one_entry_per_overflow(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, RequestType.LOAD)
        mshrs.allocate(2, RequestType.LOAD)
        mshrs.allocate(3, RequestType.LOAD)
        mshrs.allocate(4, RequestType.LOAD)
        assert mshrs.full_events == 2
        assert mshrs.retirements == 2
        assert len(mshrs) == 2
        assert mshrs.outstanding() == 4


class TestWarmupBoundaryMidBatch:
    """The warmup/measurement boundary must split a batched block exactly.

    The batched kernel (:mod:`repro.kernel.batched`) pulls records in
    blocks; an odd warmup budget lands the ``reset_stats`` boundary in the
    middle of a block, so the kernel must stop on the precise record the
    scalar spec stops on — every counter that survives or resets at the
    boundary (MSHR retirements, DRAM row-buffer events, xPTP protection)
    would drift otherwise.  A row-buffer DRAM also disables the kernel's
    inline-prefetch gate, forcing issuing records through the scalar
    fallback mid-block, which is exactly the path that once dropped
    in-flight Type bits (see the MSHR retirement fix in the git history).
    """

    WARMUP = 7_777  # deliberately odd: never a block-size multiple
    MEASURE = 24_000

    def _run(self, engine):
        from dataclasses import replace

        from repro.core.simulator import simulate
        from repro.experiments.runner import config_for
        from repro.workloads.server import ServerWorkload

        config = replace(
            config_for("itp+xptp"),
            dram=replace(config_for("itp+xptp").dram, row_buffer=True, banks=2),
        )
        workload = ServerWorkload("boundary", 13)
        return simulate(config, workload, self.WARMUP, self.MEASURE,
                        engine=engine)

    def test_all_counters_match_across_the_boundary(self):
        spec_result = self._run("spec")
        batched_result = self._run("batched")
        assert batched_result.stats.cycles == spec_result.stats.cycles
        assert batched_result.metrics == spec_result.metrics

    def test_boundary_sensitive_counters_are_present(self):
        metrics = self._run("batched").metrics
        for key in ("l1i.mshr_retirements", "l1d.mshr_retirements",
                    "l2c.mshr_retirements", "llc.mshr_retirements",
                    "dram.row_hits", "dram.row_misses",
                    "xptp.protected_evictions_avoided"):
            assert key in metrics, f"missing boundary-sensitive counter {key}"
