"""Unit tests for the set-associative TLB structure."""

import pytest

from repro.common.params import TLBConfig
from repro.common.stats import LevelStats
from repro.common.types import AccessType, PageSize
from repro.tlb.policies.registry import make_tlb_policy
from repro.tlb.tlb import TLB


def make_tlb(entries=16, assoc=4, policy="lru", **policy_kwargs):
    config = TLBConfig("T", entries=entries, associativity=assoc, latency=1)
    pol = make_tlb_policy(policy, config.num_sets, config.associativity, **policy_kwargs)
    return TLB(config, pol, LevelStats("T"))


def vaddr_of(set_index, tag, num_sets, page_size=PageSize.SIZE_4K):
    vpn = tag * num_sets + set_index
    return vpn << page_size.offset_bits


class TestLookupInsert:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert tlb.lookup(0x1000, AccessType.DATA) is None
        tlb.insert(0x1000, pfn=42, page_size=PageSize.SIZE_4K, access_type=AccessType.DATA)
        entry = tlb.lookup(0x1000, AccessType.DATA)
        assert entry is not None
        assert entry.pfn == 42

    def test_same_page_different_offset_hits(self):
        tlb = make_tlb()
        tlb.insert(0x1000, 42, PageSize.SIZE_4K, AccessType.DATA)
        assert tlb.lookup(0x1FFF, AccessType.DATA) is not None
        assert tlb.lookup(0x2000, AccessType.DATA) is None

    def test_2mb_entry_covers_whole_region(self):
        tlb = make_tlb()
        tlb.insert(0x20_0000, 512, PageSize.SIZE_2M, AccessType.DATA)
        assert tlb.lookup(0x20_0000, AccessType.DATA) is not None
        assert tlb.lookup(0x3F_FFFF, AccessType.DATA) is not None
        assert tlb.lookup(0x40_0000, AccessType.DATA) is None

    def test_4k_and_2m_coexist(self):
        tlb = make_tlb()
        tlb.insert(0x0000, 1, PageSize.SIZE_4K, AccessType.DATA)
        tlb.insert(0x20_0000, 2, PageSize.SIZE_2M, AccessType.INSTRUCTION)
        assert tlb.lookup(0x0000, AccessType.DATA).pfn == 1
        assert tlb.lookup(0x30_0000, AccessType.DATA).pfn == 2

    def test_reinsert_updates_in_place(self):
        tlb = make_tlb()
        tlb.insert(0x1000, 42, PageSize.SIZE_4K, AccessType.DATA)
        tlb.insert(0x1000, 43, PageSize.SIZE_4K, AccessType.DATA)
        assert tlb.occupancy() == 1
        assert tlb.lookup(0x1000, AccessType.DATA).pfn == 43

    def test_type_bit_stored(self):
        tlb = make_tlb()
        tlb.insert(0x1000, 1, PageSize.SIZE_4K, AccessType.INSTRUCTION)
        assert tlb.lookup(0x1000, AccessType.INSTRUCTION).is_instruction
        assert tlb.instruction_entries() == 1


class TestEviction:
    def test_lru_eviction(self):
        tlb = make_tlb(entries=8, assoc=2)  # 4 sets
        num_sets = 4
        a, b, c = (vaddr_of(0, tag, num_sets) for tag in (1, 2, 3))
        tlb.insert(a, 1, PageSize.SIZE_4K, AccessType.DATA)
        tlb.insert(b, 2, PageSize.SIZE_4K, AccessType.DATA)
        tlb.insert(c, 3, PageSize.SIZE_4K, AccessType.DATA)
        assert tlb.lookup(a, AccessType.DATA) is None
        assert tlb.lookup(b, AccessType.DATA) is not None
        assert tlb.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        tlb = make_tlb(entries=8, assoc=2)
        num_sets = 4
        a, b, c = (vaddr_of(0, tag, num_sets) for tag in (1, 2, 3))
        tlb.insert(a, 1, PageSize.SIZE_4K, AccessType.DATA)
        tlb.insert(b, 2, PageSize.SIZE_4K, AccessType.DATA)
        tlb.lookup(a, AccessType.DATA)
        tlb.insert(c, 3, PageSize.SIZE_4K, AccessType.DATA)
        assert tlb.lookup(a, AccessType.DATA) is not None
        assert tlb.lookup(b, AccessType.DATA) is None


class TestStatsAndProbe:
    def test_lookup_records_hit_by_category(self):
        tlb = make_tlb()
        tlb.insert(0x1000, 1, PageSize.SIZE_4K, AccessType.DATA)
        tlb.lookup(0x1000, AccessType.DATA)
        tlb.lookup(0x1000, AccessType.INSTRUCTION)
        assert tlb.stats.category_accesses == {"d": 1, "i": 1}
        assert tlb.stats.hits == 2

    def test_caller_records_miss(self):
        tlb = make_tlb()
        tlb.lookup(0x1000, AccessType.DATA)
        assert tlb.stats.misses == 0  # miss is recorded by the caller
        tlb.record_miss(AccessType.DATA, 120)
        assert tlb.stats.misses == 1
        assert tlb.stats.avg_miss_latency == 120

    def test_probe_does_not_touch_policy(self):
        tlb = make_tlb(entries=8, assoc=2)
        num_sets = 4
        a, b, c = (vaddr_of(0, tag, num_sets) for tag in (1, 2, 3))
        tlb.insert(a, 1, PageSize.SIZE_4K, AccessType.DATA)
        tlb.insert(b, 2, PageSize.SIZE_4K, AccessType.DATA)
        assert tlb.probe(a)
        tlb.insert(c, 3, PageSize.SIZE_4K, AccessType.DATA)
        # a was only probed, not promoted: it is still the LRU victim.
        assert not tlb.probe(a)

    def test_geometry_mismatch_rejected(self):
        config = TLBConfig("T", entries=16, associativity=4, latency=1)
        bad = make_tlb_policy("lru", 99, 4)
        with pytest.raises(ValueError, match="geometry"):
            TLB(config, bad, LevelStats("T"))
