"""Unit tests for the core timing model and System wiring."""

from dataclasses import replace

import pytest

from repro.common.params import scaled_config
from repro.common.types import TraceRecord
from repro.core.cpu import Core
from repro.core.system import System
from repro.replacement.tdrrip import TDRRIPPolicy
from repro.replacement.xptp import XPTPPolicy


def make_core(config=None, thread_id=0):
    config = config or scaled_config()
    system = System(config)
    return Core(system, thread_id), system


class TestSystemWiring:
    def test_levels_chained(self):
        _, system = make_core()
        assert system.l1i.next_level is system.l2c
        assert system.l1d.next_level is system.l2c
        assert system.l2c.next_level is system.llc
        assert system.llc.next_level is system.dram
        assert system.walker.memory_level is system.l2c

    def test_policy_selection(self):
        cfg = scaled_config().with_policies(l2c="xptp")
        _, system = make_core(cfg)
        assert isinstance(system.l2c.policy, XPTPPolicy)
        assert system.xptp_policy is system.l2c.policy

    def test_adaptive_wired_only_for_xptp(self):
        _, plain = make_core(scaled_config())
        assert not plain.adaptive.active
        _, with_xptp = make_core(scaled_config().with_policies(l2c="xptp"))
        assert with_xptp.adaptive.active

    def test_tdrrip_at_l2c(self):
        cfg = scaled_config().with_policies(l2c="tdrrip")
        _, system = make_core(cfg)
        assert isinstance(system.l2c.policy, TDRRIPPolicy)


class TestOverlapModel:
    def test_short_latency_fully_hidden(self):
        core, _ = make_core()
        assert core._overlap(core.cfg.rob_hide_cycles) == 0.0
        assert core._overlap(5) == 0.0

    def test_long_latency_partially_exposed(self):
        core, _ = make_core()
        exposed = core._overlap(120)
        expected = (120 - core.cfg.rob_hide_cycles) * core.cfg.data_overlap_factor
        assert exposed == pytest.approx(expected)


class TestExecute:
    def test_base_cost_only_when_everything_hits(self):
        core, system = make_core()
        record = TraceRecord(pc=0x40_0000, num_instrs=4)
        core.execute(record)  # warm everything
        cycles = core.execute(record)
        assert cycles == pytest.approx(4 * core.cfg.base_cpi)

    def test_cold_fetch_charges_translation_fully(self):
        core, system = make_core()
        record = TraceRecord(pc=0x40_0000, num_instrs=4)
        cold = core.execute(record)
        warm = core.execute(record)
        assert cold > warm + system.config.stlb.latency

    def test_instruction_count_accumulates(self):
        core, system = make_core()
        core.execute(TraceRecord(pc=0x40_0000, num_instrs=4))
        core.execute(TraceRecord(pc=0x40_0040, num_instrs=3))
        assert system.stats.instructions == 7
        assert system.stats.per_thread_instructions[0] == 7

    def test_loads_add_data_stall_when_cold(self):
        core, system = make_core()
        pc = 0x40_0000
        core.execute(TraceRecord(pc=pc, num_instrs=4))  # warm the fetch path
        plain = core.execute(TraceRecord(pc=pc, num_instrs=4))
        with_load = core.execute(
            TraceRecord(pc=pc, num_instrs=4, loads=(0x80_0000_0000,))
        )
        assert with_load > plain

    def test_store_cheaper_than_load(self):
        cfg = scaled_config()
        core_l, _ = make_core(cfg)
        core_s, _ = make_core(cfg)
        pc = 0x40_0000
        addr = 0x80_0000_0000
        core_l.execute(TraceRecord(pc=pc, num_instrs=4))
        core_s.execute(TraceRecord(pc=pc, num_instrs=4))
        load_cost = core_l.execute(TraceRecord(pc=pc, num_instrs=4, loads=(addr,)))
        store_cost = core_s.execute(TraceRecord(pc=pc, num_instrs=4, stores=(addr,)))
        assert store_cost < load_cost

    def test_resteer_penalty_on_instruction_stlb_miss(self):
        base = scaled_config()
        no_resteer = replace(base, core=replace(base.core, fetch_resteer_penalty=0))
        core_a, _ = make_core(base)
        core_b, _ = make_core(no_resteer)
        record = TraceRecord(pc=0x40_0000, num_instrs=4)
        cold_a = core_a.execute(record)
        cold_b = core_b.execute(record)
        assert cold_a == pytest.approx(cold_b + base.core.fetch_resteer_penalty)

    def test_thread_tag_separates_address_spaces(self):
        cfg = scaled_config()
        system = System(cfg)
        core0 = Core(system, 0)
        core1 = Core(system, 1)
        record = TraceRecord(pc=0x40_0000, num_instrs=4)
        core0.execute(record)
        cold1 = core1.execute(record)  # same vaddr, different thread: cold
        warm1 = core1.execute(record)
        assert cold1 > warm1
        assert system.stats.per_thread_instructions == {0: 4, 1: 8}


class TestInOrderCore:
    def test_preset_values(self):
        from repro.common.params import inorder_core

        core = inorder_core()
        assert core.data_overlap_factor == 1.0
        assert core.rob_hide_cycles == 0

    def test_inorder_exposes_data_latency(self):
        from repro.common.params import inorder_core

        ooo = scaled_config()
        ino = replace(ooo, core=inorder_core())
        pc, addr = 0x40_0000, 0x80_0000_0000
        core_o, _ = make_core(ooo)
        core_i, _ = make_core(ino)
        for core in (core_o, core_i):
            core.execute(TraceRecord(pc=pc, num_instrs=4))          # warm fetch
            core.execute(TraceRecord(pc=pc, num_instrs=4, loads=(addr,)))  # warm data
        cost_o = core_o.execute(TraceRecord(pc=pc, num_instrs=4, loads=(addr + 64,)))
        cost_i = core_i.execute(TraceRecord(pc=pc, num_instrs=4, loads=(addr + 64,)))
        # The same L1D-missing load stalls the in-order core far longer.
        assert cost_i > cost_o

    def test_inorder_amplifies_itp_xptp(self):
        from repro.common.params import inorder_core
        from repro.core.simulator import simulate
        from repro.workloads.server import ServerWorkload

        wl = ServerWorkload("ino", 6, code_pages=128, data_pages=4000,
                            hot_data_pages=96, warm_pages=1200, local_pages=32)
        ino = replace(scaled_config(), core=inorder_core())
        base = simulate(ino, wl, 20_000, 60_000)
        prop = simulate(ino.with_policies(stlb="itp", l2c="xptp"), wl, 20_000, 60_000)
        assert prop.ipc > base.ipc
