"""Unit tests for the set-associative cache level."""

import pytest

from repro.common.types import AccessType, MemoryRequest, RequestType

from .helpers import StubMemory, ifetch, line_addr, load, make_cache, ptw, store


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache, mem = make_cache(latency=5)
        assert cache.access(load(0x1000)) == 5 + 100
        assert cache.access(load(0x1000)) == 5
        assert len(mem.requests) == 1

    def test_same_line_different_offsets_hit(self):
        cache, _ = make_cache()
        cache.access(load(0x1000))
        assert cache.access(load(0x1030)) == cache.config.latency

    def test_stats_demand_counts(self):
        cache, _ = make_cache()
        cache.access(load(0x1000))
        cache.access(load(0x1000))
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_category_stats(self):
        cache, _ = make_cache()
        cache.access(ifetch(0x2000))
        cache.access(ptw(0x3000, AccessType.DATA))
        assert cache.stats.category_misses == {"i": 1, "dt": 1}

    def test_probe_does_not_mutate(self):
        cache, _ = make_cache()
        assert not cache.probe(0x1000)
        cache.access(load(0x1000))
        assert cache.probe(0x1000)
        assert cache.stats.accesses == 1


class TestEviction:
    def test_fills_invalid_ways_first(self):
        cache, _ = make_cache(sets=2, assoc=2)
        cache.access(load(line_addr(0, 0, 2)))
        cache.access(load(line_addr(0, 1, 2)))
        assert cache.stats.evictions == 0
        assert cache.occupancy() == 2

    def test_lru_eviction_on_full_set(self):
        cache, _ = make_cache(sets=2, assoc=2)
        for tag in range(3):
            cache.access(load(line_addr(0, tag, 2)))
        assert cache.stats.evictions == 1
        assert not cache.probe(line_addr(0, 0, 2))
        assert cache.probe(line_addr(0, 1, 2))
        assert cache.probe(line_addr(0, 2, 2))

    def test_hit_refreshes_lru(self):
        cache, _ = make_cache(sets=2, assoc=2)
        cache.access(load(line_addr(0, 0, 2)))
        cache.access(load(line_addr(0, 1, 2)))
        cache.access(load(line_addr(0, 0, 2)))  # tag0 now MRU
        cache.access(load(line_addr(0, 2, 2)))  # evicts tag1
        assert cache.probe(line_addr(0, 0, 2))
        assert not cache.probe(line_addr(0, 1, 2))


class TestWriteback:
    def test_dirty_eviction_writes_back(self):
        cache, mem = make_cache(sets=1, assoc=2)
        cache.access(store(line_addr(0, 0, 1)))
        cache.access(load(line_addr(0, 1, 1)))
        cache.access(load(line_addr(0, 2, 1)))  # evicts dirty tag0
        wbs = [r for r in mem.requests if r.req_type == RequestType.WRITEBACK]
        assert len(wbs) == 1
        assert wbs[0].address == line_addr(0, 0, 1)
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache, mem = make_cache(sets=1, assoc=2)
        cache.access(load(line_addr(0, 0, 1)))
        cache.access(load(line_addr(0, 1, 1)))
        cache.access(load(line_addr(0, 2, 1)))
        assert not any(r.req_type == RequestType.WRITEBACK for r in mem.requests)

    def test_absorbs_writeback_from_above(self):
        cache, _ = make_cache()
        wb = MemoryRequest(address=0x4000, req_type=RequestType.WRITEBACK)
        assert cache.access(wb) == 0
        assert cache.probe(0x4000)
        set_index = (0x4000 >> 6) & (cache.num_sets - 1)
        way = cache._tag_maps[set_index][(0x4000 >> 6) // cache.num_sets]
        assert cache.sets[set_index][way].dirty

    def test_writeback_hit_marks_dirty(self):
        cache, _ = make_cache()
        cache.access(load(0x4000))
        cache.access(MemoryRequest(address=0x4000, req_type=RequestType.WRITEBACK))
        set_index = (0x4000 >> 6) & (cache.num_sets - 1)
        way = cache._tag_maps[set_index][(0x4000 >> 6) // cache.num_sets]
        assert cache.sets[set_index][way].dirty


class TestTypeBits:
    """Figure 7: the PTE Type bit travels through the MSHR into the block."""

    def test_ptw_fill_sets_type(self):
        cache, _ = make_cache()
        cache.access(ptw(0x5000, AccessType.DATA))
        assert cache.data_pte_blocks() == 1

    def test_instr_pte_not_counted_as_data(self):
        cache, _ = make_cache()
        cache.access(ptw(0x5000, AccessType.INSTRUCTION))
        assert cache.data_pte_blocks() == 0

    def test_hit_strengthens_type(self):
        cache, _ = make_cache()
        cache.access(load(0x5000))
        assert cache.data_pte_blocks() == 0
        cache.access(ptw(0x5000, AccessType.DATA))
        assert cache.data_pte_blocks() == 1

    def test_data_dominates_instruction_on_strengthen(self):
        cache, _ = make_cache()
        cache.access(ptw(0x5000, AccessType.INSTRUCTION))
        cache.access(ptw(0x5000, AccessType.DATA))
        assert cache.data_pte_blocks() == 1


class TestPrefetchPath:
    def test_prefetch_fills_this_level(self):
        cache, mem = make_cache()
        cache.prefetch(0x6000 >> 6)
        assert cache.probe(0x6000)
        assert cache.stats.prefetch_fills == 1
        assert cache.stats.accesses == 0  # off the demand path

    def test_prefetch_through_does_not_allocate_below(self):
        lower, mem = make_cache(sets=8, assoc=4, name="L2")
        upper, _ = make_cache(sets=4, assoc=2, next_level=lower, name="L1")
        upper.prefetch(0x6000 >> 6)
        assert upper.probe(0x6000)
        assert not lower.probe(0x6000)
        assert lower.stats.prefetch_requests == 1
        assert lower.stats.misses == 0

    def test_prefetched_line_demand_hit_counts_once(self):
        cache, _ = make_cache()
        cache.prefetch(0x6000 >> 6)
        cache.access(load(0x6000))
        assert cache.stats.prefetch_hits == 1
        cache.access(load(0x6000))
        assert cache.stats.prefetch_hits == 1

    def test_duplicate_prefetch_is_noop(self):
        cache, mem = make_cache()
        cache.prefetch(0x6000 >> 6)
        cache.prefetch(0x6000 >> 6)
        assert cache.stats.prefetch_fills == 1
        assert len(mem.requests) == 1


class TestLineGeometry:
    """The line shift is derived from ``line_bytes``, not hardcoded to 64 B."""

    @staticmethod
    def _make_32b_cache():
        from repro.cache.cache import SetAssociativeCache
        from repro.common.params import CacheConfig
        from repro.common.stats import LevelStats
        from repro.replacement.registry import make_cache_policy

        config = CacheConfig(
            "X32", size_bytes=4 * 4 * 32, associativity=4, latency=1,
            mshr_entries=4, line_bytes=32,
        )
        mem = StubMemory()
        cache = SetAssociativeCache(
            config,
            make_cache_policy("lru", config.num_sets, config.associativity),
            mem,
            LevelStats("X32"),
        )
        return cache, mem

    def test_line_shift_follows_line_bytes(self):
        cache, _ = self._make_32b_cache()
        assert cache.line_shift == 5

    def test_32_byte_lines_are_distinct(self):
        cache, mem = self._make_32b_cache()
        cache.access(load(0x1000))
        cache.access(load(0x1020))  # next 32-byte line: a second miss
        assert cache.stats.misses == 2
        assert len(mem.requests) == 2

    def test_hits_within_32_byte_line(self):
        cache, _ = self._make_32b_cache()
        cache.access(load(0x1000))
        assert cache.access(load(0x101F)) == cache.config.latency
        # 0x1020 would be a different line, 0x101F is not.
        assert cache.stats.hits == 1


class TestGeometryValidation:
    def test_policy_geometry_mismatch_rejected(self):
        from repro.cache.cache import SetAssociativeCache
        from repro.common.params import CacheConfig
        from repro.common.stats import LevelStats
        from repro.replacement.registry import make_cache_policy

        config = CacheConfig("X", size_bytes=4 * 4 * 64, associativity=4, latency=1, mshr_entries=4)
        bad_policy = make_cache_policy("lru", 8, 4)
        with pytest.raises(ValueError, match="geometry"):
            SetAssociativeCache(config, bad_policy, StubMemory(), LevelStats("X"))
