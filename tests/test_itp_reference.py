"""Model-based test: ITPPolicy against a literal transcription of Figure 5.

The reference model below re-implements iTP's insertion/promotion rules
directly from the paper's flowchart text, independently of the library's
RecencyStack-based implementation.  Hypothesis drives both with random
insert/hit sequences and compares the full stack ordering and Freq state
after every operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import ITPConfig
from repro.common.types import AccessType
from repro.tlb.entry import TLBEntry
from repro.tlb.policies.itp import ITPPolicy

I = AccessType.INSTRUCTION
D = AccessType.DATA

ASSOC = 12
N = 4
M = 8
FREQ_MAX = 7


class ReferenceITP:
    """Figure 5, transcribed: a list of (way) ordered MRU->LRU plus freqs."""

    def __init__(self):
        self.order = []          # index 0 = MRUpos
        self.freq = {}

    def _place(self, way, index):
        if way in self.order:
            self.order.remove(way)
        index = max(0, min(index, len(self.order)))
        self.order.insert(index, way)

    def insert(self, way, access_type):
        # Steps 1-4 of the flowchart.
        if access_type == I:
            self.freq[way] = 0                       # step 3
            self._place(way, N)                      # step 2: MRUpos - N
        else:
            self._place(way, len(self.order))        # step 1: LRUpos
        # step 4 (stack shift) is implicit in list insertion.

    def hit(self, way, access_type):
        # Steps i-iv.
        if access_type == I:
            if self.freq.get(way, 0) >= FREQ_MAX:
                self._place(way, 0)                  # step ii: MRUpos
            else:
                self._place(way, N)                  # step i: MRUpos - N
                self.freq[way] = self.freq.get(way, 0) + 1   # step iii
        else:
            # step iv: LRUpos + M (M positions above the bottom).
            self._place(way, len(self.order) - 1 - M)

    def victim(self):
        return self.order[-1]                        # LRU eviction

    def evict(self, way):
        self.order.remove(way)
        self.freq.pop(way, None)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "hit"]),
            st.integers(0, ASSOC - 1),
            st.sampled_from([I, D]),
        ),
        max_size=80,
    )
)
def test_itp_matches_figure5_reference(ops):
    policy = ITPPolicy(1, ASSOC, ITPConfig(insert_depth_n=N, data_promote_m=M))
    entries = [TLBEntry(valid=True, vpn=i) for i in range(ASSOC)]
    reference = ReferenceITP()
    present = set()

    for op, way, access_type in ops:
        if op == "insert":
            if way not in present and len(present) >= ASSOC:
                victim = policy.victim(0, entries)
                assert victim == reference.victim()
                policy.on_evict(0, victim, entries)
                reference.evict(victim)
                present.discard(victim)
                if victim == way:
                    pass
            entries[way].access_type = access_type
            policy.on_insert(0, way, entries, access_type)
            reference.insert(way, access_type)
            present.add(way)
        else:
            if way not in present:
                continue
            policy.on_hit(0, way, entries, access_type)
            reference.hit(way, access_type)

        assert policy.stacks[0].order() == reference.order
        for w in present:
            if entries[w].access_type == I:
                assert entries[w].freq == reference.freq.get(w, 0), f"freq mismatch way {w}"
