"""REPRO_CHECK=1 runtime invariant checking.

The checkers must (a) stay completely out of the way by default, (b) catch
a corrupted recency stack, a leaked MSHR entry and tampered MSHR Type bits
at the exact operation that broke the invariant, and (c) let a real
simulation run clean end to end.
"""

import pytest

from repro.cache.mshr import CheckedMSHRFile, MSHRFile, make_mshr_file
from repro.common.invariants import (
    CheckedRecencyStack,
    InvariantViolation,
    check_no_leaked_mshr_entries,
    enabled,
    stack_factory,
)
from repro.common.params import scaled_config
from repro.common.recency import NaiveRecencyStack, RecencyStack
from repro.common.types import AccessType, RequestType
from repro.core.simulator import simulate
from repro.core.system import System
from repro.workloads.server import ServerWorkload


@pytest.fixture
def checks_on(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")


@pytest.fixture
def checks_off(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)


class TestEnabledFlag:
    def test_default_off(self, checks_off):
        assert not enabled()

    @pytest.mark.parametrize("value", ["0", "", "false", "no", "off", "  0  "])
    def test_falsey_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK", value)
        assert not enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK", value)
        assert enabled()


class TestFactories:
    def test_production_classes_by_default(self, checks_off):
        assert stack_factory(RecencyStack) is RecencyStack
        assert type(make_mshr_file(4)) is MSHRFile

    def test_checked_classes_under_repro_check(self, checks_on):
        assert stack_factory(RecencyStack) is CheckedRecencyStack
        assert type(make_mshr_file(4)) is CheckedMSHRFile

    def test_naive_stack_is_never_wrapped(self, checks_on):
        # The golden bit-identity test swaps in NaiveRecencyStack; there is
        # nothing to check it against, so it must pass through untouched.
        assert stack_factory(NaiveRecencyStack) is NaiveRecencyStack


class TestCheckedRecencyStack:
    def test_mirrors_production_api(self):
        stack = CheckedRecencyStack()
        for way in (0, 1, 2):
            stack.place_at_depth(way, 0)
        stack.touch(1)          # [1, 2, 0] MRU→LRU
        stack.place_above_lru(0, 1)
        assert stack.order() == [1, 0, 2]
        assert len(stack) == 3
        assert 2 in stack
        assert stack.mru_way == 1
        assert list(stack.ways_from_lru())[0] == stack.lru_way
        stack.remove(2)
        stack.discard(2)  # discard of absent way is a no-op
        assert stack.depth_from_mru(stack.mru_way) == 0
        assert stack.height_from_lru(stack.lru_way) == 0

    def test_catches_corruption_at_the_breaking_op(self):
        stack = CheckedRecencyStack()
        for way in (0, 1, 2):
            stack.place_at_depth(way, 0)
        # Tamper with the fast stack behind the checker's back: the next
        # mutation through the checker must detect the divergence.
        stack._fast.touch(0)
        with pytest.raises(InvariantViolation, match="diverged after touch"):
            stack.touch(2)


class TestCheckedMSHRFile:
    def test_clean_lifecycle_passes(self, checks_on):
        mshrs = make_mshr_file(4)
        mshrs.allocate(0x40, RequestType.PTW, is_pte=True,
                       translation_type=AccessType.INSTRUCTION)
        # Merge strengthening: data upgrades the instruction Type bit.
        entry = mshrs.allocate(0x40, RequestType.PTW, is_pte=True,
                               translation_type=AccessType.DATA)
        assert entry.translation_type is AccessType.DATA
        released = mshrs.release(0x40)
        assert released is not None and released.is_pte
        assert len(mshrs) == 0

    def test_structural_hazard_resyncs_shadow(self, checks_on):
        mshrs = make_mshr_file(2)
        mshrs.allocate(0x40, RequestType.LOAD)
        mshrs.allocate(0x80, RequestType.LOAD)
        mshrs.allocate(0xC0, RequestType.LOAD)  # retires oldest (0x40)
        assert mshrs.lookup(0x40) is None
        assert mshrs.release(0x80) is not None
        assert mshrs.release(0xC0) is not None

    def test_tampered_type_bits_caught_at_release(self, checks_on):
        mshrs = make_mshr_file(4)
        entry = mshrs.allocate(0x40, RequestType.PTW, is_pte=True,
                               translation_type=AccessType.DATA)
        entry.is_pte = False  # simulate the Figure 7 dataflow breaking
        with pytest.raises(InvariantViolation, match="corrupted at release"):
            mshrs.release(0x40)

    def test_tampered_type_bits_caught_at_merge(self, checks_on):
        mshrs = make_mshr_file(4)
        entry = mshrs.allocate(0x40, RequestType.PTW, is_pte=True,
                               translation_type=AccessType.DATA)
        entry.translation_type = AccessType.INSTRUCTION
        with pytest.raises(InvariantViolation, match="corrupted before merge"):
            mshrs.allocate(0x40, RequestType.PTW, is_pte=True,
                           translation_type=AccessType.DATA)

    def test_plain_mshr_file_does_not_check(self, checks_off):
        mshrs = make_mshr_file(4)
        entry = mshrs.allocate(0x40, RequestType.PTW, is_pte=True,
                               translation_type=AccessType.DATA)
        entry.is_pte = False
        assert mshrs.release(0x40) is not None  # no verification by design


class TestLeakedMSHREntries:
    def test_leak_detected_at_reset(self, checks_on):
        system = System(scaled_config())
        system.l1d.mshrs.allocate(0x1000, RequestType.LOAD)
        with pytest.raises(InvariantViolation, match="L1D MSHR file holds 1"):
            system.reset_stats()

    def test_clean_system_resets_fine(self, checks_on):
        system = System(scaled_config())
        system.reset_stats()

    def test_checker_is_skipped_by_default(self, checks_off):
        system = System(scaled_config())
        system.l1d.mshrs.allocate(0x1000, RequestType.LOAD)
        system.reset_stats()  # no checking without REPRO_CHECK=1

    def test_direct_call_reports_stlb_file(self, checks_on):
        system = System(scaled_config())
        system.mmu.stlb_mshrs.allocate(0x2, RequestType.PTW, is_pte=True,
                                       translation_type=AccessType.DATA)
        with pytest.raises(InvariantViolation, match="STLB"):
            check_no_leaked_mshr_entries(system)


@pytest.mark.repro_check
class TestEndToEndSmoke:
    def test_simulation_runs_clean_under_repro_check(self, checks_on):
        wl = ServerWorkload("check-smoke", 7, code_pages=64, data_pages=800,
                            hot_data_pages=32, warm_pages=200, local_pages=8)
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        result = simulate(cfg, wl, warmup_instructions=2_000,
                          measure_instructions=6_000)
        assert result.metrics["instructions"] > 0

    def test_checked_structures_are_actually_installed(self, checks_on):
        system = System(scaled_config())
        assert type(system.l1d.mshrs) is CheckedMSHRFile
        assert type(system.l2c.policy.stacks[0]) is CheckedRecencyStack
