"""System-level integration: cross-module behaviours in full simulations."""

from dataclasses import replace

import pytest

from repro.common.params import TLBConfig, scaled_config
from repro.core.cpu import Core
from repro.core.simulator import simulate
from repro.core.system import System
from repro.replacement.mockingjay import MockingjayPolicy
from repro.replacement.ship import SHiPPolicy
from repro.workloads.server import ServerWorkload


def run_system(config, workload, instructions=30_000):
    system = System(config, workload.size_policy)
    core = Core(system)
    stream = workload.record_stream()
    while system.stats.instructions < instructions:
        core.execute(next(stream))
    return system


@pytest.fixture(scope="module")
def small_workload():
    return ServerWorkload(
        "sys", 13, code_pages=96, data_pages=3000, hot_data_pages=96,
        warm_pages=800, local_pages=16,
    )


class TestPTEDataflow:
    def test_walk_fills_typed_pte_lines_in_l2c(self, small_workload):
        system = run_system(scaled_config(), small_workload)
        assert system.l2c.data_pte_blocks() > 0
        # Instruction PTE lines are present but not flagged as data PTEs.
        instr_pte = sum(
            1 for s in system.l2c.sets for line in s
            if line.valid and line.is_instr_pte
        )
        assert instr_pte > 0

    def test_walker_counters_consistent(self, small_workload):
        system = run_system(scaled_config(), small_workload)
        counters = system.stats.counters
        walks = counters.get("ptw.data_walks", 0) + counters.get("ptw.instr_walks", 0)
        stlb_misses = system.stats.level("STLB").misses
        assert walks == stlb_misses

    def test_psc_hits_dominate_after_warmup(self, small_workload):
        system = run_system(scaled_config(), small_workload)
        counters = system.stats.counters
        hits = sum(counters.get(f"ptw.pscl{k}_hits", 0) for k in (2, 3, 4, 5))
        misses = counters.get("ptw.psc_misses", 0)
        assert hits > misses


class TestLLCPolicyWiring:
    def test_ship_at_llc(self, small_workload):
        cfg = scaled_config().with_policies(llc="ship")
        system = run_system(cfg, small_workload, 20_000)
        assert isinstance(system.llc.policy, SHiPPolicy)
        assert system.stats.level("LLC").accesses > 0

    def test_mockingjay_at_llc(self, small_workload):
        cfg = scaled_config().with_policies(llc="mockingjay")
        system = run_system(cfg, small_workload, 20_000)
        assert isinstance(system.llc.policy, MockingjayPolicy)
        assert system.llc.policy.clock > 0

    def test_all_llc_policies_complete(self, small_workload):
        for llc in ("lru", "srrip", "drrip", "ship", "tship", "mockingjay", "random"):
            cfg = scaled_config().with_policies(llc=llc)
            result = simulate(cfg, small_workload, 4000, 12000)
            assert result.ipc > 0, llc


class TestSplitSTLBEndToEnd:
    def test_split_runs_and_separates_types(self, small_workload):
        base = scaled_config()
        split = replace(
            base,
            stlb=TLBConfig("DSTLB", entries=192, associativity=12, latency=8),
            istlb=TLBConfig("ISTLB", entries=192, associativity=12, latency=8),
        )
        system = run_system(split, small_workload)
        assert system.mmu.stlb_instr.instruction_entries() == system.mmu.stlb_instr.occupancy()
        assert system.mmu.stlb_data.instruction_entries() == 0
        assert system.stats.level("STLB").accesses > 0


class TestConservation:
    """Accounting invariants across the hierarchy."""

    def test_l1_misses_equal_l2_demand_accesses(self, small_workload):
        system = run_system(scaled_config(), small_workload)
        l1_misses = (
            system.stats.level("L1I").misses + system.stats.level("L1D").misses
        )
        walk_refs = (
            system.stats.counters.get("ptw.data_walk_refs", 0)
            + system.stats.counters.get("ptw.instr_walk_refs", 0)
        )
        l2c = system.stats.level("L2C")
        # Demand accesses at L2C = L1 misses + page-walk references
        # (writebacks and prefetches are tracked separately).
        assert l2c.accesses == l1_misses + walk_refs

    def test_llc_demand_accesses_equal_l2c_misses(self, small_workload):
        system = run_system(scaled_config(), small_workload)
        assert system.stats.level("LLC").accesses == system.stats.level("L2C").misses

    def test_hits_plus_misses_equal_accesses_everywhere(self, small_workload):
        system = run_system(scaled_config(), small_workload)
        for name in ("L1I", "L1D", "L2C", "LLC", "ITLB", "DTLB", "STLB"):
            lvl = system.stats.level(name)
            assert lvl.hits + lvl.misses == lvl.accesses, name
