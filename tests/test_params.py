"""Unit tests for repro.common.params (Table 1 encoding and validation)."""

import dataclasses

import pytest

from repro.common.params import (
    CacheConfig,
    ITPConfig,
    TABLE1,
    TLBConfig,
    make_config,
    scaled_config,
)


class TestTable1:
    """The defaults must match Table 1 of the paper."""

    def test_itlb(self):
        assert TABLE1.itlb.entries == 64
        assert TABLE1.itlb.associativity == 4
        assert TABLE1.itlb.latency == 1
        assert TABLE1.itlb.mshr_entries == 8

    def test_dtlb(self):
        assert TABLE1.dtlb.entries == 64
        assert TABLE1.dtlb.associativity == 4

    def test_stlb(self):
        assert TABLE1.stlb.entries == 1536
        assert TABLE1.stlb.associativity == 12
        assert TABLE1.stlb.latency == 8
        assert TABLE1.stlb.mshr_entries == 16

    def test_itp_parameters(self):
        assert TABLE1.itp.freq_bits == 3
        assert TABLE1.itp.freq_max == 7
        assert TABLE1.itp.insert_depth_n == 4
        assert TABLE1.itp.data_promote_m == 8

    def test_xptp_parameter(self):
        assert TABLE1.xptp.k == 8

    def test_caches(self):
        assert TABLE1.l1i.size_bytes == 32 * 1024
        assert TABLE1.l1d.size_bytes == 32 * 1024
        assert TABLE1.l2c.size_bytes == 512 * 1024
        assert TABLE1.l2c.associativity == 8
        assert TABLE1.llc.size_bytes == 2 * 1024 * 1024
        assert TABLE1.llc.associativity == 16
        assert TABLE1.llc.latency == 10

    def test_prefetchers(self):
        assert TABLE1.l1i.prefetcher == "fdip"
        assert TABLE1.l1d.prefetcher == "next_line"
        assert TABLE1.l2c.prefetcher == "stride"
        assert TABLE1.llc.prefetcher is None

    def test_psc_geometry(self):
        assert TABLE1.psc.pscl5_entries == 2
        assert TABLE1.psc.pscl4_entries == 4
        assert TABLE1.psc.pscl3_entries == 8
        assert TABLE1.psc.pscl2_entries == 32

    def test_adaptive_window(self):
        assert TABLE1.adaptive.window_instructions == 1000


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig("x", size_bytes=64 * 1024, associativity=8, latency=1, mshr_entries=8)
        assert cfg.num_sets == 128
        assert cfg.num_lines == 1024

    def test_rejects_non_divisible(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheConfig("x", size_bytes=1000, associativity=8, latency=1, mshr_entries=8)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig("x", size_bytes=3 * 64 * 8, associativity=8, latency=1, mshr_entries=8)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig("x", size_bytes=48 * 8 * 4, associativity=8, latency=1,
                        mshr_entries=8, line_bytes=48)

    def test_custom_line_size_geometry(self):
        cfg = CacheConfig("x", size_bytes=32 * 1024, associativity=8, latency=1,
                          mshr_entries=8, line_bytes=32)
        assert cfg.num_lines == 1024
        assert cfg.num_sets == 128


class TestTLBConfig:
    def test_num_sets(self):
        cfg = TLBConfig("x", entries=1536, associativity=12, latency=8)
        assert cfg.num_sets == 128

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            TLBConfig("x", entries=100, associativity=12, latency=8)


class TestITPConfig:
    def test_freq_max(self):
        assert ITPConfig(freq_bits=2).freq_max == 3


class TestConfigBuilders:
    def test_make_config_overrides(self):
        cfg = make_config(stlb_policy="itp")
        assert cfg.stlb_policy == "itp"
        assert cfg.stlb.entries == 1536

    def test_with_policies_returns_copy(self):
        cfg = TABLE1.with_policies(stlb="itp", l2c="xptp")
        assert cfg.stlb_policy == "itp"
        assert cfg.l2c_policy == "xptp"
        assert TABLE1.stlb_policy == "lru"

    def test_with_policies_partial(self):
        cfg = TABLE1.with_policies(l2c="tdrrip")
        assert cfg.stlb_policy == "lru"
        assert cfg.l2c_policy == "tdrrip"

    def test_scaled_config_divides_capacities(self):
        cfg = scaled_config(4)
        assert cfg.stlb.entries == 1536 // 4
        assert cfg.itlb.entries == 16
        assert cfg.l2c.size_bytes == 128 * 1024
        assert cfg.llc.size_bytes == 512 * 1024

    def test_scaled_config_preserves_latencies_and_assoc(self):
        cfg = scaled_config(4)
        assert cfg.stlb.latency == TABLE1.stlb.latency
        assert cfg.stlb.associativity == TABLE1.stlb.associativity
        assert cfg.llc.associativity == TABLE1.llc.associativity

    def test_scaled_config_floors_at_associativity(self):
        cfg = scaled_config(1024)
        assert cfg.itlb.entries >= cfg.itlb.associativity
        assert cfg.l1i.size_bytes >= cfg.l1i.line_bytes * cfg.l1i.associativity

    def test_scaled_config_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_config(0)

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TABLE1.stlb_policy = "itp"
