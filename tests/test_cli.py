"""Unit tests for the repro-compare CLI."""

import pytest

from repro.cli import build_parser, describe, main, make_workload
from repro.common.params import scaled_config
from repro.workloads.phased import PhasedWorkload
from repro.workloads.server import ServerWorkload
from repro.workloads.speclike import SpecLikeWorkload


class TestDescribe:
    def test_contains_structures_and_params(self):
        text = describe(scaled_config())
        for token in ("ITLB", "STLB", "L2C", "LLC", "DRAM", "K=8", "Freq=3b"):
            assert token in text

    def test_reflects_policies(self):
        text = describe(scaled_config().with_policies(stlb="itp", l2c="xptp"))
        assert "itp" in text
        assert "xptp" in text


class TestMakeWorkload:
    def test_kinds(self):
        assert isinstance(make_workload("server", 1), ServerWorkload)
        assert isinstance(make_workload("spec", 1), SpecLikeWorkload)
        assert isinstance(make_workload("phased", 1), PhasedWorkload)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_workload("redis", 1)


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "itp+xptp" in out
        assert "all-LRU baseline" in out

    def test_describe_flag(self, capsys):
        assert main(["--describe"]) == 0
        assert "STLB" in capsys.readouterr().out

    def test_unknown_technique(self, capsys):
        assert main(["--techniques", "belady"]) == 2
        assert "unknown technique" in capsys.readouterr().err

    def test_small_comparison(self, capsys):
        rc = main([
            "--techniques", "lru", "itp",
            "--warmup", "2000", "--measure", "8000", "--seed", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "technique" in out
        assert "itp" in out

    def test_topology_preset_run(self, capsys):
        rc = main([
            "--techniques", "lru", "--topology", "no-llc",
            "--warmup", "1000", "--measure", "5000",
        ])
        assert rc == 0
        assert "topology=no-llc" in capsys.readouterr().out

    def test_unknown_topology(self, capsys):
        assert main(["--topology", "ring"]) == 2
        assert "unknown topology" in capsys.readouterr().err

    def test_energy_column(self, capsys):
        rc = main([
            "--techniques", "lru", "--energy",
            "--warmup", "1000", "--measure", "5000",
        ])
        assert rc == 0
        assert "pj_per_instr" in capsys.readouterr().out

    def test_large_pages_flag(self, capsys):
        rc = main([
            "--techniques", "lru", "--large-pages", "100",
            "--warmup", "1000", "--measure", "5000",
        ])
        assert rc == 0

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "server"
        assert args.techniques == ["lru", "itp", "itp+xptp"]
