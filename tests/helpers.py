"""Shared test fixtures: tiny caches, stub memory levels, request builders."""

from repro.cache.cache import SetAssociativeCache
from repro.common.params import CacheConfig
from repro.common.stats import LevelStats
from repro.common.types import AccessType, MemoryRequest, RequestType
from repro.replacement.registry import make_cache_policy


class StubMemory:
    """Terminal level with fixed latency; records every request."""

    def __init__(self, latency=100):
        self.latency = latency
        self.requests = []

    def access(self, req):
        self.requests.append(req)
        if req.req_type == RequestType.WRITEBACK:
            return 0
        return self.latency


def make_cache(
    sets=4,
    assoc=4,
    latency=5,
    policy="lru",
    mshrs=8,
    next_level=None,
    prefetcher=None,
    name="TEST",
):
    config = CacheConfig(
        name,
        size_bytes=sets * assoc * 64,
        associativity=assoc,
        latency=latency,
        mshr_entries=mshrs,
    )
    next_level = next_level if next_level is not None else StubMemory()
    cache = SetAssociativeCache(
        config,
        make_cache_policy(policy, config.num_sets, config.associativity),
        next_level,
        LevelStats(name),
        prefetcher,
    )
    return cache, next_level


def load(addr, pc=0, stlb_miss=False):
    return MemoryRequest(address=addr, req_type=RequestType.LOAD, pc=pc, stlb_miss=stlb_miss)


def store(addr, pc=0):
    return MemoryRequest(address=addr, req_type=RequestType.STORE, pc=pc)


def ifetch(addr, pc=0):
    return MemoryRequest(address=addr, req_type=RequestType.IFETCH, pc=pc or addr)


def ptw(addr, ttype=AccessType.DATA):
    return MemoryRequest(
        address=addr, req_type=RequestType.PTW, is_pte=True, translation_type=ttype
    )


def line_addr(set_index, tag, num_sets):
    """Byte address of the line with the given set and tag."""
    return ((tag * num_sets) + set_index) << 6
