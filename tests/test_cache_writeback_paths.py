"""Deeper cache tests: multi-level writeback flows, MSHR pressure, stats."""

from repro.common.types import AccessType, MemoryRequest, RequestType

from .helpers import line_addr, load, make_cache, ptw, store


def two_level(upper_sets=2, upper_assoc=2, lower_sets=8, lower_assoc=4):
    lower, mem = make_cache(sets=lower_sets, assoc=lower_assoc, name="L2")
    upper, _ = make_cache(sets=upper_sets, assoc=upper_assoc, next_level=lower, name="L1")
    return upper, lower, mem


class TestMultiLevelWriteback:
    def test_dirty_line_lands_in_lower_level(self):
        upper, lower, _ = two_level()
        victim = line_addr(0, 0, 2)
        upper.access(store(victim))
        upper.access(load(line_addr(0, 1, 2)))
        upper.access(load(line_addr(0, 2, 2)))   # evict dirty victim
        assert lower.probe(victim)

    def test_writeback_preserves_pte_type(self):
        # A dirty PTE block (A/D-bit style write) keeps its Type downstream.
        upper, lower, _ = two_level()
        addr = line_addr(0, 0, 2)
        upper.access(ptw(addr, AccessType.DATA))
        upper.access(store(addr))
        upper.access(load(line_addr(0, 1, 2)))
        upper.access(load(line_addr(0, 2, 2)))
        assert lower.data_pte_blocks() >= 1

    def test_writeback_chain_to_memory(self):
        upper, lower, mem = two_level(lower_sets=1, lower_assoc=2)
        # Fill the 2-entry lower set with dirty writebacks, then overflow it.
        for tag in range(3):
            addr = tag * 64  # set 0 of the single-set lower cache
            upper.access(store(addr))
            upper.access(load((tag + 10) * 2 * 64))
            upper.access(load((tag + 20) * 2 * 64))
        wb_to_mem = [r for r in mem.requests if r.req_type == RequestType.WRITEBACK]
        assert wb_to_mem, "overflowing dirty lines must be written to memory"

    def test_writeback_has_zero_demand_latency(self):
        cache, _ = make_cache()
        wb = MemoryRequest(address=0x40, req_type=RequestType.WRITEBACK)
        assert cache.access(wb) == 0


class TestMSHRPressure:
    def test_structural_penalty_applied_when_full(self):
        cache, _ = make_cache(sets=64, assoc=4, mshrs=1)
        first = cache.access(load(0x0000))
        # The MSHR still holds nothing between synchronous accesses, so
        # allocate one manually to model an in-flight miss.
        cache.mshrs.allocate(0x9999, RequestType.LOAD)
        second = cache.access(load(0x2000))
        assert second == first + cache.mshrs.full_penalty

    def test_mshr_type_survives_interleaved_demand(self):
        cache, _ = make_cache()
        line = 0x7000
        cache.mshrs.allocate(line >> 6, RequestType.LOAD)
        # A PTW request to the same line merges and strengthens the type.
        cache.access(ptw(line, AccessType.DATA))
        assert cache.data_pte_blocks() == 1


class TestEvictionStats:
    def test_eviction_counter_matches_overflow(self):
        cache, _ = make_cache(sets=1, assoc=4)
        for tag in range(10):
            cache.access(load(tag * 64))
        assert cache.stats.evictions == 6
        assert cache.occupancy() == 4

    def test_prefetch_fill_can_evict(self):
        cache, _ = make_cache(sets=1, assoc=2)
        cache.access(load(0 * 64))
        cache.access(load(1 * 64))
        cache.prefetch(2)
        assert cache.stats.evictions == 1
        assert cache.occupancy() == 2

    def test_occupancy_never_exceeds_capacity(self):
        cache, _ = make_cache(sets=2, assoc=2)
        for tag in range(20):
            cache.access(load(line_addr(tag % 2, tag, 2)))
            assert cache.occupancy() <= 4
