"""Unit + property tests for the analysis subpackage."""

import random
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.belady import belady_min, belady_set_assoc, optimality_gap
from repro.analysis.characterize import characterize, characterize_records
from repro.analysis.stack_distance import StackDistanceAnalyzer
from repro.common.types import TraceRecord


class TestStackDistance:
    def test_cold_misses(self):
        analyzer = StackDistanceAnalyzer()
        profile = analyzer.run([1, 2, 3])
        assert profile.cold_misses == 3
        assert profile.histogram == {}

    def test_immediate_reuse_distance_zero(self):
        analyzer = StackDistanceAnalyzer()
        analyzer.access(1)
        assert analyzer.access(1) == 0

    def test_classic_sequence(self):
        # Access 1,2,3 then 1 again: distance 2 (two distinct keys between).
        analyzer = StackDistanceAnalyzer()
        for key in (1, 2, 3):
            analyzer.access(key)
        assert analyzer.access(1) == 2

    def test_hit_rate_monotone_in_capacity(self):
        rng = random.Random(0)
        keys = [rng.randrange(64) for _ in range(2000)]
        profile = StackDistanceAnalyzer().run(keys)
        rates = [profile.hit_rate(c) for c in (1, 2, 4, 8, 16, 32, 64, 128)]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))
        # Capacity >= distinct keys: only cold misses remain.
        assert profile.hits_at_capacity(64) == profile.accesses - profile.cold_misses

    def test_cyclic_scan_has_distance_n_minus_1(self):
        analyzer = StackDistanceAnalyzer()
        for key in [0, 1, 2, 3] * 5:
            analyzer.access(key)
        assert set(analyzer.profile.histogram) == {3}

    def test_miss_curve_shape(self):
        profile = StackDistanceAnalyzer().run([0, 1, 0, 1, 2, 0])
        curve = dict(profile.miss_curve([1, 2, 4]))
        assert curve[1] >= curve[2] >= curve[4]


@settings(max_examples=60, deadline=None)
@given(keys=st.lists(st.integers(0, 15), min_size=1, max_size=300),
       capacity=st.integers(1, 16))
def test_stack_distance_matches_lru_simulation(keys, capacity):
    """hits_at_capacity(C) must equal a directly simulated fully-assoc LRU."""
    profile = StackDistanceAnalyzer().run(keys)
    lru = OrderedDict()
    hits = 0
    for key in keys:
        if key in lru:
            hits += 1
            lru.move_to_end(key)
        else:
            if len(lru) >= capacity:
                lru.popitem(last=False)
            lru[key] = True
    assert profile.hits_at_capacity(capacity) == hits


class TestBelady:
    def test_all_fits(self):
        result = belady_min([1, 2, 1, 2], capacity=2)
        assert result.misses == 2
        assert result.hits == 2

    def test_classic_example(self):
        # Capacity 2; stream 1,2,3,1 — MIN keeps 1 when 3 arrives.
        result = belady_min([1, 2, 3, 1], capacity=2)
        assert result.misses == 3
        assert result.hits == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            belady_min([1], 0)

    def test_min_never_worse_than_lru(self):
        rng = random.Random(7)
        keys = [rng.randrange(32) for _ in range(1500)]
        for capacity in (2, 4, 8, 16):
            lru = OrderedDict()
            lru_misses = 0
            for key in keys:
                if key in lru:
                    lru.move_to_end(key)
                else:
                    lru_misses += 1
                    if len(lru) >= capacity:
                        lru.popitem(last=False)
                    lru[key] = True
            assert belady_min(keys, capacity).misses <= lru_misses

    def test_set_assoc_partitions(self):
        keys = [0, 2, 4, 0, 1, 3, 5, 1]
        result = belady_set_assoc(keys, num_sets=2, associativity=2)
        assert result.accesses == len(keys)

    def test_set_assoc_validation(self):
        with pytest.raises(ValueError):
            belady_set_assoc([1], num_sets=3, associativity=2)

    def test_optimality_gap(self):
        keys = [1, 2, 3, 1, 2, 3]
        optimum = belady_min(keys, 2).misses
        assert optimality_gap(optimum, keys, 2) == 1.0
        assert optimality_gap(optimum + 2, keys, 2) > 1.0


@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(0, 9), min_size=1, max_size=120),
       capacity=st.integers(1, 10))
def test_belady_bounds(keys, capacity):
    result = belady_min(keys, capacity)
    distinct = len(set(keys))
    assert result.misses >= min(distinct, len(keys)) - max(0, distinct - max(distinct, 1))
    assert result.misses >= distinct if distinct > capacity else result.misses == distinct
    assert result.hits + result.misses == len(keys)


class TestCharacterize:
    def records(self):
        return [
            TraceRecord(pc=0x1000, num_instrs=4, loads=(0x9000,)),
            TraceRecord(pc=0x1040, num_instrs=4, stores=(0xA000,)),
            TraceRecord(pc=0x2000, num_instrs=4),
            TraceRecord(pc=0x1000, num_instrs=4, loads=(0x9008,)),
        ]

    def test_counts(self):
        character = characterize_records(self.records(), name="t")
        assert character.records == 4
        assert character.instructions == 16
        assert character.loads == 2
        assert character.stores == 1
        assert character.code_pages == 2
        assert character.data_pages == 2

    def test_mix_rates(self):
        character = characterize_records(self.records())
        assert character.loads_per_kilo_instruction == pytest.approx(125.0)

    def test_tlb_estimates_monotone(self):
        from repro.workloads.server import ServerWorkload

        character = characterize(
            ServerWorkload("c", 3, code_pages=64, data_pages=800, hot_data_pages=64,
                           warm_pages=128, local_pages=16),
            records=4000,
        )
        assert character.itlb_mpki_estimate(8) >= character.itlb_mpki_estimate(64)
        assert character.code_pages > 10

    def test_server_vs_spec_contrast(self):
        # The Section 3 motivation, reproduced offline: server code
        # footprints dwarf SPEC-like ones.
        from repro.workloads.server import ServerWorkload
        from repro.workloads.speclike import SpecLikeWorkload

        server = characterize(ServerWorkload("s", 1), records=6000)
        spec = characterize(SpecLikeWorkload("p", 1), records=6000)
        assert server.code_pages > 10 * spec.code_pages
        assert server.itlb_mpki_estimate(16) > 10 * spec.itlb_mpki_estimate(16)

    def test_summary_keys(self):
        summary = characterize_records(self.records()).summary()
        assert {"records", "instructions", "code_pages", "data_pages"} <= set(summary)


class TestAccessProbe:
    def test_records_and_forwards(self):
        from repro.analysis.probe import AccessProbe
        from repro.common.types import MemoryRequest, RequestType

        class Sink:
            def __init__(self):
                self.count = 0

            def access(self, req):
                self.count += 1
                return 42

        sink = Sink()
        probe = AccessProbe(sink)
        req = MemoryRequest(address=0x1000, req_type=RequestType.LOAD)
        assert probe.access(req) == 42
        assert sink.count == 1
        assert probe.line_addresses == [0x1000 >> 6]

    def test_writebacks_filtered_by_default(self):
        from repro.analysis.probe import AccessProbe
        from repro.common.types import MemoryRequest, RequestType

        class Sink:
            def access(self, req):
                return 0

        probe = AccessProbe(Sink())
        probe.access(MemoryRequest(address=0, req_type=RequestType.WRITEBACK))
        assert probe.line_addresses == []

    def test_capacity_cap(self):
        from repro.analysis.probe import AccessProbe
        from repro.common.types import MemoryRequest, RequestType

        class Sink:
            def access(self, req):
                return 0

        probe = AccessProbe(Sink(), capacity=2)
        for i in range(5):
            probe.access(MemoryRequest(address=i * 64, req_type=RequestType.LOAD))
        assert len(probe.line_addresses) == 2
        assert probe.dropped == 3

    def test_probe_l2c_input_end_to_end(self):
        from repro.analysis.probe import probe_cache_input
        from repro.common.params import scaled_config
        from repro.core.cpu import Core
        from repro.core.system import System
        from repro.workloads.server import ServerWorkload

        wl = ServerWorkload("probe", 3, code_pages=48, data_pages=1000,
                            hot_data_pages=48, warm_pages=200, local_pages=8)
        system = System(scaled_config(), wl.size_policy)
        probe = probe_cache_input(system, "l2c")
        core = Core(system)
        stream = wl.record_stream()
        while system.stats.instructions < 12000:
            core.execute(next(stream))
        # The probe saw exactly the demand accesses the L2C recorded.
        assert len(probe.line_addresses) == system.stats.level("L2C").accesses
        # And the policy can be scored against the offline optimum.
        gap = probe.belady_gap(
            system.l2c.num_sets, system.l2c.associativity,
            system.stats.level("L2C").misses,
        )
        assert gap >= 1.0

    def test_unknown_level(self):
        from repro.analysis.probe import probe_cache_input
        from repro.common.params import scaled_config
        from repro.core.system import System

        with pytest.raises(ValueError):
            probe_cache_input(System(scaled_config()), "l9")
