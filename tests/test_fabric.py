"""Tests for the execution fabric: scheduler dedup, streaming, backends.

The facade contract (``ParallelRunner``/``run_jobs``) is pinned by
``test_parallel_runner.py``; this module covers what only the fabric
provides — cross-submission dedup, incremental delivery and pluggable
backends — plus the ``configure_default_runner`` worker-count regression.
"""

import threading

import pytest

from repro.common.params import scaled_config
from repro.fabric import (
    ParallelRunner,
    Scheduler,
    SchedulerConfig,
    SimJob,
    configure_default_runner,
    job_key,
    run_iter,
    set_default_runner,
)
from repro.fabric.store import ResultCache
from repro.faults import install_plan
from repro.faults import plan as fault_plan_mod
from repro.workloads.server import ServerWorkload

WARMUP = 2_000
MEASURE = 8_000


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    """Isolate each test from installed fault plans and the env-plan cache."""
    install_plan(None)
    fault_plan_mod._env_cache = (None, None)
    yield
    install_plan(None)
    fault_plan_mod._env_cache = (None, None)


def small_workloads(count=2):
    return [ServerWorkload(f"w{i}", seed=i + 1) for i in range(count)]


def jobs_for(labels, workloads=None):
    base = scaled_config()
    return [
        SimJob(base, (wl,), WARMUP, MEASURE, label=label)
        for label in labels
        for wl in (workloads or small_workloads())
    ]


def assert_same_result(a, b):
    assert a.metrics == b.metrics
    assert a.stats.cycles == b.stats.cycles
    assert a.stats.instructions == b.stats.instructions


class TestConcurrentDedup:
    def _submit_concurrently(self, scheduler, matrices):
        results = [None] * len(matrices)
        errors = []
        barrier = threading.Barrier(len(matrices))

        def consume(slot, jobs):
            try:
                barrier.wait(timeout=30)
                results[slot] = scheduler.submit(jobs).collect()
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=consume, args=(slot, jobs))
            for slot, jobs in enumerate(matrices)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        return results

    def test_overlapping_submissions_execute_each_key_once(self):
        workloads = small_workloads(3)
        jobs_a = jobs_for(("lru", "itp"), workloads)  # 6 cells
        jobs_b = jobs_for(("itp", "xptp"), workloads)  # 6 cells, 3 shared
        unique = len({job_key(j) for j in jobs_a + jobs_b})
        assert unique == 9  # the overlap is real

        scheduler = Scheduler(SchedulerConfig.from_knobs(1, False))
        res_a, res_b = self._submit_concurrently(scheduler, [jobs_a, jobs_b])

        assert scheduler.simulations == unique
        assert scheduler.dedup_hits == len(jobs_a) + len(jobs_b) - unique
        # Complete, order-preserved results for both callers.
        assert [r.workload for r in res_a] == [j.workload_name for j in jobs_a]
        assert [r.workload for r in res_b] == [j.workload_name for j in jobs_b]
        # Shared cells settle to the same result object in both matrices.
        by_key = {job_key(j): r for j, r in zip(jobs_a, res_a)}
        for job, result in zip(jobs_b, res_b):
            if job_key(job) in by_key:
                assert result is by_key[job_key(job)]

    def test_concurrent_results_bit_identical_to_serial(self):
        jobs_a = jobs_for(("lru", "itp"))
        jobs_b = jobs_for(("itp", "xptp"))
        scheduler = Scheduler(SchedulerConfig.from_knobs(1, False))
        res_a, res_b = self._submit_concurrently(scheduler, [jobs_a, jobs_b])
        serial_a = ParallelRunner(workers=1).run(jobs_a)
        serial_b = ParallelRunner(workers=1).run(jobs_b)
        for got, want in zip(res_a + res_b, serial_a + serial_b):
            assert_same_result(got, want)

    def test_chaos_concurrent_submissions_converge_to_serial(
        self, tmp_path, monkeypatch
    ):
        """Crashing workers and a torn cache write must not break dedup or
        change any settled result vs a clean serial run."""
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "worker.crash:1:0::lru x w0,cache.torn-write:1:0:1",
        )
        fault_plan_mod._env_cache = (None, None)
        jobs_a = jobs_for(("lru", "itp"))
        jobs_b = jobs_for(("itp", "xptp"))
        config = SchedulerConfig.from_knobs(
            2, False, max_retries=2, max_pool_restarts=4
        )
        scheduler = Scheduler(config, cache=ResultCache(tmp_path))
        res_a, res_b = self._submit_concurrently(scheduler, [jobs_a, jobs_b])
        assert scheduler.simulations == len({job_key(j) for j in jobs_a + jobs_b})

        monkeypatch.delenv("REPRO_FAULTS")
        fault_plan_mod._env_cache = (None, None)
        serial_a = ParallelRunner(workers=1).run(jobs_a)
        serial_b = ParallelRunner(workers=1).run(jobs_b)
        for got, want in zip(res_a + res_b, serial_a + serial_b):
            assert_same_result(got, want)

    def test_late_submission_attaches_to_settled_cells(self, tmp_path):
        scheduler = Scheduler(
            SchedulerConfig.from_knobs(1, False), cache=ResultCache(tmp_path)
        )
        jobs = jobs_for(("lru",))
        first = scheduler.submit(jobs).collect()
        second = scheduler.submit(jobs).collect()
        assert scheduler.simulations == len(jobs)
        assert scheduler.dedup_hits == len(jobs)
        for a, b in zip(first, second):
            assert a is b


class TestStreaming:
    def test_yields_every_index_exactly_once(self):
        jobs = jobs_for(("lru", "itp"))
        runner = ParallelRunner(workers=1)
        seen = {}
        for index, cell, result in runner.run_iter(jobs):
            assert index not in seen
            assert cell.cell == jobs[index].cell
            assert result.workload == jobs[index].workload_name
            seen[index] = result
        assert sorted(seen) == list(range(len(jobs)))

    def test_cached_cells_yield_immediately_in_job_order(self, tmp_path):
        runner = ParallelRunner(workers=1, cache_dir=tmp_path)
        warm = jobs_for(("lru",))
        runner.run(warm)
        # Superset matrix: the warm cells must stream out first, in job
        # order, before any fresh cell simulates.
        jobs = warm + jobs_for(("itp",))
        order = [index for index, _cell, _result in runner.run_iter(jobs)]
        assert order[: len(warm)] == list(range(len(warm)))
        statuses = [cell.status for cell in runner.last_report.cells]
        assert statuses[: len(warm)] == ["cached"] * len(warm)
        assert statuses[len(warm):] == ["ok"] * (len(jobs) - len(warm))

    def test_run_iter_module_helper_uses_default_runner(self):
        previous = set_default_runner(ParallelRunner(workers=1))
        try:
            jobs = jobs_for(("lru",))
            rows = list(run_iter(jobs))
            assert len(rows) == len(jobs)
        finally:
            set_default_runner(previous)


class TestThreadBackend:
    def test_thread_backend_matches_serial(self):
        jobs = jobs_for(("lru", "itp"))
        threaded = ParallelRunner(workers=4, backend="thread").run(jobs)
        serial = ParallelRunner(workers=1).run(jobs)
        for got, want in zip(threaded, serial):
            assert_same_result(got, want)


class TestConfigureDefaultRunner:
    def test_unset_workers_falls_back_to_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        previous = set_default_runner(None)
        try:
            runner = configure_default_runner(cache_dir=tmp_path)
            assert runner.workers == 3
        finally:
            set_default_runner(previous)

    def test_explicit_workers_still_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        previous = set_default_runner(None)
        try:
            assert configure_default_runner(workers=1).workers == 1
        finally:
            set_default_runner(previous)
