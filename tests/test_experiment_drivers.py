"""Smoke tests for every figure driver, at miniature scale.

These keep the drivers covered by the fast suite so a broken driver is
caught before the (slow) benchmark run.  Each test only checks structure
and basic sanity, not the paper shapes — those are the benches' job.
"""


from repro.experiments import (
    ablation_adaptive,
    ablation_params,
    ext_stlb_prefetch,
    fig01_itlb_cost,
    fig02_stlb_impki,
    fig03_probabilistic,
    fig04_mpki_breakdown,
    fig08_main_comparison,
    fig09_mpki_latency,
    fig10_stlb_breakdown,
    fig11_llc_sensitivity,
    fig12_itlb_sensitivity,
    fig13_large_pages,
    fig14_split_stlb,
)
from repro.experiments.reporting import FigureResult, format_figure

TINY = dict(warmup=3000, measure=12000)


def check(result):
    assert isinstance(result, FigureResult)
    assert result.rows, f"{result.figure} produced no rows"
    text = format_figure(result)
    assert result.figure in text
    return result


class TestMotivationDrivers:
    def test_fig01(self):
        result = fig01_itlb_cost.run(
            itlb_sizes=((8, 32), (32, 128)), server_count=1, spec_count=1, **TINY
        )
        check(result)
        assert len(result.rows) == 4

    def test_fig02(self):
        result = fig02_stlb_impki.run(server_count=1, spec_count=1, **TINY)
        check(result)
        assert {r[0] for r in result.rows} == {"server", "spec"}

    def test_fig03(self):
        result = fig03_probabilistic.run(p_values=(0.8,), server_count=1, **TINY)
        check(result)
        assert any(r[1] == "GEOMEAN" for r in result.rows)

    def test_fig04(self):
        result = fig04_mpki_breakdown.run(server_count=1, **TINY)
        check(result)
        assert len(result.rows) == 4  # 2 levels x 2 policies


class TestEvaluationDrivers:
    def test_fig08(self):
        single, smt = fig08_main_comparison.run(server_count=1, per_category=1, **TINY)
        check(single)
        check(smt)
        assert len(single.rows) == 10  # the full Table 2 matrix

    def test_fig09(self):
        single, smt = fig09_mpki_latency.run(
            techniques=("lru", "itp+xptp"), server_count=1, per_category=1, **TINY
        )
        check(single)
        check(smt)

    def test_fig10(self):
        result = fig10_stlb_breakdown.run(server_count=1, per_category=1, **TINY)
        check(result)
        assert len(result.rows) == 4

    def test_fig11(self):
        result = fig11_llc_sensitivity.run(
            server_count=1, per_category=1, llc_policies=("lru",), **TINY
        )
        check(result)

    def test_fig12(self):
        result = fig12_itlb_sensitivity.run(
            itlb_sizes=((16, 64),), server_count=1, per_category=1, **TINY
        )
        check(result)

    def test_fig13(self):
        result = fig13_large_pages.run(
            percents=(0, 100), server_count=1, per_category=1, **TINY
        )
        check(result)

    def test_fig14(self):
        result = fig14_split_stlb.run(server_count=1, **TINY)
        check(result)
        assert len(result.rows) == 5


class TestAblationDrivers:
    def test_ablation_nm(self):
        result = ablation_params.run_nm(nm_values=((2, 4),), server_count=1, **TINY)
        check(result)

    def test_ablation_k(self):
        result = ablation_params.run_k(k_values=(8,), server_count=1, **TINY)
        check(result)

    def test_ablation_adaptive(self):
        result = ablation_adaptive.run(
            t1_values=(1,), warmup=3000, measure=20000, phase_records=1000
        )
        check(result)
        assert any("always-on" in str(r[0]) for r in result.rows)

    def test_ext_stlb_prefetch(self):
        result = ext_stlb_prefetch.run(server_count=1, **TINY)
        check(result)


class TestCLI:
    def test_main_runs_one_figure(self, capsys, monkeypatch):
        from repro.experiments import __main__ as cli

        monkeypatch.setitem(cli.RUNNERS, "fig02", lambda: fig02_stlb_impki.run(
            server_count=1, spec_count=1, **TINY
        ))
        assert cli.main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_main_rejects_unknown(self, capsys):
        from repro.experiments import __main__ as cli

        assert cli.main(["fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestSMTCategoryBreakdown:
    def test_rows_per_category(self):
        result = fig08_main_comparison.smt_category_breakdown(
            techniques=("lru", "itp+xptp"), per_category=1, **TINY
        )
        check(result)
        categories = {row[0] for row in result.rows}
        assert categories == {"intense", "medium", "relaxed"}
