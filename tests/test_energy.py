"""Unit tests for the energy accounting model."""

import pytest

from repro.common.energy import DEFAULT_ENERGY_PJ, EnergyModel, energy_report
from repro.common.params import scaled_config
from repro.common.stats import SimStats
from repro.core.simulator import simulate
from repro.workloads.server import ServerWorkload


def stats_with(levels, counters=None, instructions=1000):
    stats = SimStats()
    stats.instructions = instructions
    for name, accesses in levels.items():
        lvl = stats.level(name)
        lvl.accesses = accesses
    stats.counters.update(counters or {})
    return stats


class TestEnergyModel:
    def test_charges_per_access(self):
        stats = stats_with({"L2C": 100})
        report = energy_report(stats)
        assert report.per_structure_pj["L2C"] == pytest.approx(100 * DEFAULT_ENERGY_PJ["L2C"])

    def test_unknown_levels_ignored(self):
        stats = stats_with({"WEIRD": 100})
        report = energy_report(stats)
        assert "WEIRD" not in report.per_structure_pj

    def test_pj_per_instruction(self):
        stats = stats_with({"L1D": 1000}, instructions=1000)
        report = energy_report(stats)
        assert report.pj_per_instruction == pytest.approx(DEFAULT_ENERGY_PJ["L1D"])

    def test_custom_charges(self):
        model = EnergyModel(energy_pj={"L1D": 2.0})
        stats = stats_with({"L1D": 10, "L2C": 10})
        report = model.report(stats)
        assert report.total_pj == pytest.approx(20.0)  # L2C not in table -> skipped

    def test_walk_share_accounts_tlbs_and_psc(self):
        stats = stats_with(
            {"STLB": 10, "L2C": 100},
            counters={"ptw.data_walks": 5, "ptw.data_walk_refs": 10},
        )
        report = energy_report(stats)
        assert report.walk_pj > 0
        assert 0 < report.walk_share < 1

    def test_zero_instruction_guard(self):
        report = energy_report(stats_with({}, instructions=0))
        assert report.pj_per_instruction == 0.0


class TestEndToEnd:
    def test_policies_change_translation_energy(self):
        wl = ServerWorkload("e", 4, code_pages=96, data_pages=3000,
                            hot_data_pages=96, warm_pages=800, local_pages=16)
        base = simulate(scaled_config(), wl, 20_000, 60_000)
        prop = simulate(
            scaled_config().with_policies(stlb="itp", l2c="xptp"), wl, 20_000, 60_000
        )
        base_energy = energy_report(base.stats)
        prop_energy = energy_report(prop.stats)
        assert base_energy.total_pj > 0
        assert prop_energy.walk_share > 0
        # DRAM dominates; both runs land in the same order of magnitude.
        ratio = prop_energy.pj_per_instruction / base_energy.pj_per_instruction
        assert 0.5 < ratio < 1.5
