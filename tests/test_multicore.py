"""Tests for the multi-programmed multicore extension."""

import pytest

from repro.common.params import scaled_config
from repro.core.multicore import MulticoreSystem, simulate_multicore
from repro.core.simulator import simulate
from repro.workloads.server import ServerWorkload
from repro.workloads.speclike import SpecLikeWorkload


def wl(seed, **kw):
    kw.setdefault("code_pages", 64)
    kw.setdefault("data_pages", 2000)
    kw.setdefault("hot_data_pages", 64)
    kw.setdefault("warm_pages", 500)
    kw.setdefault("local_pages", 16)
    return ServerWorkload(f"mc{seed}", seed, **kw)


class TestWiring:
    def test_private_and_shared_structures(self):
        system = MulticoreSystem(scaled_config(), [wl(1), wl(2)])
        assert len(system.cores) == 2
        s0, s1 = system.slices
        assert s0.l2c is not s1.l2c
        assert s0.l1d is not s1.l1d
        assert s0.l2c.next_level is system.llc
        assert s1.l2c.next_level is system.llc
        assert system.llc.next_level is system.dram

    def test_per_core_stats_levels(self):
        system = MulticoreSystem(scaled_config(), [wl(1), wl(2)])
        assert "L2C_0" in {s.l2c.stats.name for s in system.slices}
        assert "L2C_1" in {s.l2c.stats.name for s in system.slices}

    def test_requires_workloads(self):
        with pytest.raises(ValueError):
            MulticoreSystem(scaled_config(), [])

    def test_adaptive_per_core_with_xptp(self):
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        system = MulticoreSystem(cfg, [wl(1), wl(2)])
        assert all(a.active for a in system.adaptives)


class TestSimulateMulticore:
    def test_runs_and_balances(self):
        result = simulate_multicore(scaled_config(), [wl(1), wl(2)], 4000, 16000)
        assert result.ipc > 0
        per_thread = result.stats.per_thread_instructions
        assert set(per_thread) == {0, 1}
        assert abs(per_thread[0] - per_thread[1]) < 2000

    def test_deterministic(self):
        a = simulate_multicore(scaled_config(), [wl(1), wl(2)], 3000, 10000)
        b = simulate_multicore(scaled_config(), [wl(1), wl(2)], 3000, 10000)
        assert a.metrics == b.metrics

    def test_throughput_scales_with_cores(self):
        single = simulate(scaled_config(), wl(1), 3000, 10000)
        quad = simulate_multicore(
            scaled_config(), [wl(1), wl(2), wl(3), wl(4)], 12000, 40000
        )
        # Four cores with private front ends: aggregate IPC well above 1x,
        # below the contention-free 4x.
        assert quad.ipc > 1.5 * single.ipc
        assert quad.ipc < 4.2 * single.ipc

    def test_shared_llc_contention_visible(self):
        # Co-running with a cache-hungry neighbour raises this core's LLC
        # pressure versus running alone on the same multicore substrate.
        lone = simulate_multicore(scaled_config(), [wl(1)], 4000, 16000)
        pair = simulate_multicore(scaled_config(), [wl(1), wl(9)], 4000, 32000)
        assert pair.stats.level("LLC").mpki(pair.stats.instructions) >= \
            0.9 * lone.stats.level("LLC").mpki(lone.stats.instructions)

    def test_policies_apply_per_core(self):
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        base = simulate_multicore(scaled_config(), [wl(5), wl(6)], 8000, 30000)
        prop = simulate_multicore(cfg, [wl(5), wl(6)], 8000, 30000)
        assert prop.ipc == pytest.approx(base.ipc, rel=0.5)  # sane band

    def test_mixed_workload_kinds(self):
        spec = SpecLikeWorkload("sp", 3, code_pages=4, data_pages=500, hot_data_pages=64)
        result = simulate_multicore(scaled_config(), [wl(1), spec], 4000, 16000)
        assert result.ipc > 0
        assert "+" in result.workload
