"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import (
    AccessType,
    CACHE_LINE_BYTES,
    MemoryRequest,
    PAGE_BYTES,
    PageSize,
    RequestType,
    TraceRecord,
    line_of,
    vpn_of,
)


class TestConstants:
    def test_line_geometry(self):
        assert CACHE_LINE_BYTES == 64
        assert PAGE_BYTES == 4096

    def test_pte_per_line(self):
        from repro.common.types import PTE_BYTES, PTES_PER_LINE

        assert PTES_PER_LINE == 8
        assert PTE_BYTES * PTES_PER_LINE == CACHE_LINE_BYTES


class TestPageSize:
    def test_offset_bits(self):
        assert PageSize.SIZE_4K.offset_bits == 12
        assert PageSize.SIZE_2M.offset_bits == 21

    def test_values_are_byte_sizes(self):
        assert PageSize.SIZE_4K == 4096
        assert PageSize.SIZE_2M == 2 * 1024 * 1024


class TestAccessType:
    def test_paper_type_bit_encoding(self):
        # Figure 7: Type is 0 for instruction, 1 for data.
        assert AccessType.INSTRUCTION == 0
        assert AccessType.DATA == 1


class TestMemoryRequest:
    def test_line_address(self):
        req = MemoryRequest(address=0x1234, req_type=RequestType.LOAD)
        assert req.line_address == 0x1234 >> 6

    def test_data_pte_flags(self):
        req = MemoryRequest(
            address=0, req_type=RequestType.PTW, is_pte=True,
            translation_type=AccessType.DATA,
        )
        assert req.is_data_pte
        assert not req.is_instr_pte

    def test_instr_pte_flags(self):
        req = MemoryRequest(
            address=0, req_type=RequestType.PTW, is_pte=True,
            translation_type=AccessType.INSTRUCTION,
        )
        assert req.is_instr_pte
        assert not req.is_data_pte

    def test_non_pte_is_neither(self):
        req = MemoryRequest(address=0, req_type=RequestType.LOAD)
        assert not req.is_data_pte
        assert not req.is_instr_pte

    def test_slotted_and_mutable(self):
        # Hot paths reuse one request object and rewrite its scalar fields;
        # __slots__ still rejects accidental new attributes.
        req = MemoryRequest(address=0, req_type=RequestType.LOAD)
        req.address = 64
        assert req.line_address == 1
        with pytest.raises(AttributeError):
            req.not_a_field = 1
        assert not hasattr(req, "__dict__")


class TestHelpers:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_vpn_of_4k(self):
        assert vpn_of(4095) == 0
        assert vpn_of(4096) == 1

    def test_vpn_of_2m(self):
        assert vpn_of(2 * 1024 * 1024 - 1, PageSize.SIZE_2M) == 0
        assert vpn_of(2 * 1024 * 1024, PageSize.SIZE_2M) == 1


class TestTraceRecord:
    def test_defaults(self):
        rec = TraceRecord(pc=0x1000)
        assert rec.num_instrs == 1
        assert rec.loads == ()
        assert rec.stores == ()

    def test_immutable(self):
        rec = TraceRecord(pc=0x1000, num_instrs=4, loads=(0x2000,))
        with pytest.raises(AttributeError):
            rec.pc = 0
