"""Whole-program effect analysis: callgraph/effects layer and RPR007-RPR009.

Synthetic-module fixtures pin the positive and negative behaviour of each
interprocedural rule, the two suppression flavours (callee-site: the
effect's own line; call-site: the edge into the subtree), and the drift
canary proves RPR007 catches a deliberately removed kernel effect in a
copy of the real tree.
"""

import shutil
from pathlib import Path

from repro.lint import lint_paths, lint_sources
from repro.lint.callgraph import program_for
from repro.lint.context import FileContext
from repro.lint.effects import EffectAnalysis
from repro.lint.manifest import ShadowPair
from repro.lint.rules.effects_parity import EffectParityRule
from repro.lint.rules.manifest_liveness import ManifestLivenessRule
from repro.lint.rules.worker_safety import WorkerSafetyRule

REPRO_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def codes(diags):
    return [d.code for d in diags]


def analyze(sources):
    files = [FileContext(name, text, relkey=name) for name, text in sources.items()]
    program = program_for(files)
    return program, EffectAnalysis(program), files


# --------------------------------------------------------------------------
# Effect extraction layer


class TestEffectExtraction:
    def test_stats_write_through_constructor_binding(self):
        src = (
            "class Core:\n"
            "    def __init__(self, system):\n"
            "        self._stats = system.stats\n"
            "    def execute(self):\n"
            "        stats = self._stats\n"
            "        stats.instructions += 1\n"
        )
        program, analysis, _ = analyze({"core/cpu.py": src})
        fn = program.functions[("core/cpu.py", "Core.execute")]
        assert "stats:instructions" in {e.ident for e in analysis.effects_of(fn)}

    def test_tag_map_write_and_del_through_aliases(self):
        src = (
            "class Engine:\n"
            "    def __init__(self, system):\n"
            "        self._tm = system.l1i._tag_maps\n"
            "    def run(self):\n"
            "        tm = self._tm[0]\n"
            "        tm[5] = 1\n"
            "        del tm[7]\n"
        )
        program, analysis, _ = analyze({"kernel/engine.py": src})
        fn = program.functions[("kernel/engine.py", "Engine.run")]
        idents = [e.ident for e in analysis.effects_of(fn)]
        assert idents.count("state:tag_maps") == 2

    def test_attribute_store_does_not_clobber_base_alias(self):
        # `dram._window_accesses = 0` must not mark the local `dram` opaque.
        src = (
            "class Engine:\n"
            "    def __init__(self, system):\n"
            "        self._dram = system.dram\n"
            "    def run(self):\n"
            "        dram = self._dram\n"
            "        dram.other = 1\n"
            "        dram._window_accesses = 0\n"
        )
        program, analysis, _ = analyze({"kernel/engine.py": src})
        fn = program.functions[("kernel/engine.py", "Engine.run")]
        assert "state:_window_accesses" in {e.ident for e in analysis.effects_of(fn)}

    def test_recency_mutator_call_is_a_state_effect(self):
        src = (
            "def touch_all(stacks, ways):\n"
            "    for s, w in zip(stacks, ways):\n"
            "        s.touch(w)\n"
        )
        program, analysis, _ = analyze({"common/recency.py": src})
        fn = program.functions[("common/recency.py", "touch_all")]
        assert "state:recency" in {e.ident for e in analysis.effects_of(fn)}

    def test_self_attr_rebind_of_global_is_not_a_global_write(self):
        # Regression: PageTable.__init__ seeds cursors FROM module constants;
        # that is a read of the global, not a write.
        src = (
            "BASE = 100\n"
            "class PageTable:\n"
            "    def __init__(self):\n"
            "        self._next = BASE\n"
            "    def alloc(self):\n"
            "        self._next += 1\n"
        )
        program, analysis, _ = analyze({"ptw/page_table.py": src})
        for qual in ("PageTable.__init__", "PageTable.alloc"):
            fn = program.functions[("ptw/page_table.py", qual)]
            assert not [e for e in analysis.effects_of(fn) if e.kind == "env"]

    def test_mutation_through_module_global_is_env(self):
        src = (
            "_REGISTRY = {}\n"
            "def register(key, value):\n"
            "    _REGISTRY[key] = value\n"
        )
        program, analysis, _ = analyze({"experiments/reg.py": src})
        fn = program.functions[("experiments/reg.py", "register")]
        assert "env:global:_REGISTRY" in {e.ident for e in analysis.effects_of(fn)}


# --------------------------------------------------------------------------
# RPR007 — kernel/spec effect parity

SPEC_CORE = (
    "class Core:\n"
    "    def __init__(self, system):\n"
    "        self._access = system.cache.access\n"
    "    def execute(self, rec):\n"
    "        self.stats.instructions += 1\n"
    "        self._access(rec)\n"
)

SPEC_CACHE = (
    "class Cache:\n"
    "    def access(self, req):\n"
    "        self.stats.accesses += 1\n"
    "        line = self.lines[0]\n"
    "        line.dirty = True\n"
)

KERNEL_FULL = (
    "class Kernel:\n"
    "    def __init__(self, system):\n"
    "        self._stats = system.stats\n"
    "        self._cstats = system.cache.stats\n"
    "        self._lines = system.cache.lines\n"
    "    def _run(self, recs):\n"
    "        stats = self._stats\n"
    "        stats.instructions += len(recs)\n"
    "        cstats = self._cstats\n"
    "        cstats.accesses += len(recs)\n"
    "        line = self._lines[0]\n"
    "        line.dirty = True\n"
)

KERNEL_NO_DIRTY = (
    "class Kernel:\n"
    "    def __init__(self, system):\n"
    "        self._stats = system.stats\n"
    "        self._cstats = system.cache.stats\n"
    "    def _run(self, recs):\n"
    "        stats = self._stats\n"
    "        stats.instructions += len(recs)\n"
    "        cstats = self._cstats\n"
    "        cstats.accesses += len(recs)\n"
)

SHADOW = ShadowPair(
    kernel=("kernel/k.py", "Kernel._run"),
    spec=("core/c.py", "Core.execute"),
    inlined=frozenset(),
)


def parity_rule(gated=None):
    return EffectParityRule(shadows=(SHADOW,), gated=gated or {})


class TestRPR007EffectParity:
    def test_mirrored_effects_pass(self):
        diags = lint_sources(
            {"core/c.py": SPEC_CORE, "cache/h.py": SPEC_CACHE, "kernel/k.py": KERNEL_FULL},
            rules=[parity_rule()],
        )
        assert diags == []

    def test_spec_only_effect_is_flagged_at_kernel_entry(self):
        diags = lint_sources(
            {"core/c.py": SPEC_CORE, "cache/h.py": SPEC_CACHE, "kernel/k.py": KERNEL_NO_DIRTY},
            rules=[parity_rule()],
        )
        assert codes(diags) == ["RPR007"]
        (diag,) = diags
        assert "state:dirty" in diag.message
        assert "Core.execute" in diag.message and "Cache.access" in diag.message
        assert diag.relkey == "kernel/k.py"

    def test_kernel_only_effect_is_flagged_at_the_write(self):
        kernel = KERNEL_FULL + "        stats.bogus_counter += 1\n"
        diags = lint_sources(
            {"core/c.py": SPEC_CORE, "cache/h.py": SPEC_CACHE, "kernel/k.py": kernel},
            rules=[parity_rule()],
        )
        assert codes(diags) == ["RPR007"]
        assert "stats:bogus_counter" in diags[0].message
        assert diags[0].line == kernel.count("\n")  # the added last line

    def test_gated_effect_passes(self):
        diags = lint_sources(
            {"core/c.py": SPEC_CORE, "cache/h.py": SPEC_CACHE, "kernel/k.py": KERNEL_NO_DIRTY},
            rules=[parity_rule(gated={"state:dirty": "miss path only"})],
        )
        assert diags == []

    def test_stale_gate_kernel_now_writes_it(self):
        diags = lint_sources(
            {"core/c.py": SPEC_CORE, "cache/h.py": SPEC_CACHE, "kernel/k.py": KERNEL_FULL},
            rules=[parity_rule(gated={"state:dirty": "stale"})],
        )
        assert codes(diags) == ["RPR007"]
        assert "stale gate" in diags[0].message

    def test_stale_gate_spec_no_longer_writes_it(self):
        diags = lint_sources(
            {"core/c.py": SPEC_CORE, "cache/h.py": SPEC_CACHE, "kernel/k.py": KERNEL_FULL},
            rules=[parity_rule(gated={"stats:retired_counter": "stale"})],
        )
        assert codes(diags) == ["RPR007"]
        assert "no longer writes" in diags[0].message

    def test_callee_site_suppression_removes_the_effect(self):
        cache = SPEC_CACHE.replace(
            "        line.dirty = True\n",
            "        line.dirty = True  # repro: allow[RPR007]\n",
        )
        diags = lint_sources(
            {"core/c.py": SPEC_CORE, "cache/h.py": cache, "kernel/k.py": KERNEL_NO_DIRTY},
            rules=[parity_rule()],
        )
        assert diags == []

    def test_call_site_suppression_prunes_the_subtree(self):
        core = SPEC_CORE.replace(
            "        self._access(rec)\n",
            "        self._access(rec)  # repro: allow[RPR007]\n",
        )
        kernel_min = (
            "class Kernel:\n"
            "    def __init__(self, system):\n"
            "        self._stats = system.stats\n"
            "    def _run(self, recs):\n"
            "        stats = self._stats\n"
            "        stats.instructions += len(recs)\n"
        )
        diags = lint_sources(
            {"core/c.py": core, "cache/h.py": SPEC_CACHE, "kernel/k.py": kernel_min},
            rules=[parity_rule()],
        )
        assert diags == []

    def test_missing_pair_in_fixture_set_is_ignored(self):
        diags = lint_sources({"core/c.py": SPEC_CORE}, rules=[parity_rule()])
        assert diags == []


# --------------------------------------------------------------------------
# RPR008 — worker determinism


def worker_rule():
    return WorkerSafetyRule(
        entry_points={"experiments/parallel.py": frozenset({"_execute"})},
        sanctioned_prefixes=("faults/",),
    )


class TestRPR008WorkerSafety:
    def test_seeded_rng_and_perf_counter_pass(self):
        src = (
            "import random\n"
            "import time\n"
            "def _execute(job):\n"
            "    rng = random.Random(job.seed)\n"
            "    start = time.perf_counter()\n"
            "    return rng.random(), time.perf_counter() - start\n"
        )
        diags = lint_sources({"experiments/parallel.py": src}, rules=[worker_rule()])
        assert diags == []

    def test_unseeded_rng_and_wall_clock_reached_through_helper(self):
        helper = (
            "import random\n"
            "import time\n"
            "def jitter():\n"
            "    return random.random() + time.time()\n"
        )
        entry = (
            "from repro.workloads.noise import jitter\n"
            "def _execute(job):\n"
            "    return jitter()\n"
        )
        diags = lint_sources(
            {"workloads/noise.py": helper, "experiments/parallel.py": entry},
            rules=[worker_rule()],
        )
        assert codes(diags) == ["RPR008", "RPR008"]
        messages = " ".join(d.message for d in diags)
        assert "random.random" in messages and "time.time" in messages
        assert all("_execute" in d.message for d in diags)
        assert all(d.relkey == "workloads/noise.py" for d in diags)

    def test_module_global_write_is_flagged(self):
        src = (
            "_RESULTS = {}\n"
            "_counter = 0\n"
            "def _execute(job):\n"
            "    global _counter\n"
            "    _counter += 1\n"
            "    _RESULTS[job.key] = 1\n"
        )
        diags = lint_sources({"experiments/parallel.py": src}, rules=[worker_rule()])
        found = {d.message.split("'")[1] for d in diags}
        assert found == {"global:_counter", "global:_RESULTS"}

    def test_sanctioned_fault_package_is_not_descended(self):
        faults = "import time\ndef maybe_hang():\n    time.sleep(1)\n"
        entry = (
            "from repro.faults.inject import maybe_hang\n"
            "def _execute(job):\n"
            "    maybe_hang()\n"
        )
        diags = lint_sources(
            {"faults/inject.py": faults, "experiments/parallel.py": entry},
            rules=[worker_rule()],
        )
        assert diags == []

    def test_callee_site_suppression(self):
        src = (
            "import time\n"
            "def _execute(job):\n"
            "    return time.time()  # repro: allow[RPR008]\n"
        )
        diags = lint_sources({"experiments/parallel.py": src}, rules=[worker_rule()])
        assert diags == []

    def test_call_site_suppression_prunes_the_subtree(self):
        # The nondeterministic line itself carries no allow marker; only the
        # call edge into the helper is suppressed.
        helper = "import time\ndef stamp():\n    return time.time()\n"
        entry = (
            "from repro.workloads.clock import stamp\n"
            "def _execute(job):\n"
            "    return stamp()  # repro: allow[RPR008]\n"
        )
        diags = lint_sources(
            {"workloads/clock.py": helper, "experiments/parallel.py": entry},
            rules=[worker_rule()],
        )
        assert diags == []


# --------------------------------------------------------------------------
# RPR009 — manifest liveness and hot-callee coverage

FAKE_MANIFEST = (
    'HOT = {\n'
    '    "cache/c.py": ("Cache.access", "Cache.gone"),\n'
    '    "gone/mod.py": ("f",),\n'
    '}\n'
)

CACHE_WITH_EVICT = (
    "class Cache:\n"
    "    def access(self, req):\n"
    "        self._evict(req)\n"
    "    def _evict(self, req):\n"
    "        self.stats.evictions += 1\n"
)


def liveness_rule(hot, names=frozenset()):
    return ManifestLivenessRule(
        hot_functions=hot,
        hot_names=names,
        exempt_prefixes=(),
        exempt_qual_prefixes=(),
        manifest_relkey="lint/manifest.py",
        worker_entry_points={},
    )


class TestRPR009ManifestLiveness:
    def test_unresolved_entries_are_hard_errors_at_manifest_lines(self):
        hot = {
            "cache/c.py": frozenset({"Cache.access", "Cache.gone"}),
            "gone/mod.py": frozenset({"f"}),
        }
        diags = lint_sources(
            {"lint/manifest.py": FAKE_MANIFEST, "cache/c.py": CACHE_WITH_EVICT},
            rules=[liveness_rule(hot)],
        )
        unresolved = [d for d in diags if "does not resolve" in d.message]
        missing_mod = [d for d in diags if "not in the linted tree" in d.message]
        assert len(unresolved) == 1 and "Cache.gone" in unresolved[0].message
        assert len(missing_mod) == 1 and "gone/mod.py" in missing_mod[0].message
        # Anchored at the manifest lines naming the entries.
        assert unresolved[0].relkey == "lint/manifest.py"
        assert unresolved[0].line == 2
        assert missing_mod[0].line == 3

    def test_missing_manifest_class_is_flagged(self):
        hot = {"cache/c.py": frozenset({"Cache.access"})}
        diags = lint_sources(
            {"lint/manifest.py": 'X = "GhostLine"\n', "cache/c.py": SPEC_CACHE},
            rules=[liveness_rule(hot, names=frozenset({"GhostLine"}))],
        )
        assert codes(diags) == ["RPR009"]
        assert "GhostLine" in diags[0].message

    def test_effectful_hot_callee_missing_from_manifest(self):
        hot = {"cache/c.py": frozenset({"Cache.access"})}
        diags = lint_sources(
            {"lint/manifest.py": "HOT = {}\n", "cache/c.py": CACHE_WITH_EVICT},
            rules=[liveness_rule(hot)],
        )
        assert codes(diags) == ["RPR009"]
        assert "Cache._evict" in diags[0].message
        assert diags[0].line == 4  # the def line

    def test_hot_marker_satisfies_coverage(self):
        src = CACHE_WITH_EVICT.replace(
            "    def _evict(self, req):\n",
            "    # repro: hot\n    def _evict(self, req):\n",
        )
        hot = {"cache/c.py": frozenset({"Cache.access"})}
        diags = lint_sources(
            {"lint/manifest.py": "HOT = {}\n", "cache/c.py": src},
            rules=[liveness_rule(hot)],
        )
        assert diags == []

    def test_def_site_allow_suppresses_coverage(self):
        src = CACHE_WITH_EVICT.replace(
            "    def _evict(self, req):\n",
            "    def _evict(self, req):  # repro: allow[RPR009]\n",
        )
        hot = {"cache/c.py": frozenset({"Cache.access"})}
        diags = lint_sources(
            {"lint/manifest.py": "HOT = {}\n", "cache/c.py": src},
            rules=[liveness_rule(hot)],
        )
        assert diags == []

    def test_rule_is_inert_without_the_manifest_module(self):
        hot = {"gone/mod.py": frozenset({"f"})}
        diags = lint_sources(
            {"cache/c.py": CACHE_WITH_EVICT}, rules=[liveness_rule(hot)]
        )
        assert diags == []


# --------------------------------------------------------------------------
# Drift canary: the analyzer itself is regression-gated


class TestDriftCanary:
    def test_removed_kernel_effect_trips_rpr007(self, tmp_path):
        tree = tmp_path / "repro"
        shutil.copytree(REPRO_ROOT, tree)
        target = tree / "kernel" / "batched.py"
        needle = "l1i_stats.evictions += evict_n"
        source = target.read_text()
        assert needle in source, "canary needle vanished; pick a new kernel effect"
        patched = []
        for line in source.splitlines(keepends=True):
            if needle in line:
                indent = line[: len(line) - len(line.lstrip())]
                patched.append(f"{indent}pass  # canary: effect removed\n")
            else:
                patched.append(line)
        target.write_text("".join(patched))
        diags = lint_paths([str(tree)])
        assert "RPR007" in codes(diags)
        drift = [d for d in diags if d.code == "RPR007"]
        assert any("stats:evictions" in d.message for d in drift)
        # The report names the spec-side witness and the call path to it.
        assert any("SetAssociativeCache._evict" in d.message for d in drift)
