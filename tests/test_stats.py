"""Unit tests for statistics collection."""

from repro.common.stats import LevelStats, SimStats, categorize
from repro.common.types import AccessType, MemoryRequest, RequestType


def _req(req_type=RequestType.LOAD, is_pte=False, ttype=None):
    return MemoryRequest(address=0, req_type=req_type, is_pte=is_pte, translation_type=ttype)


class TestCategorize:
    def test_demand_load_is_data(self):
        assert categorize(_req(RequestType.LOAD)) == "d"
        assert categorize(_req(RequestType.STORE)) == "d"

    def test_ifetch_is_instruction(self):
        assert categorize(_req(RequestType.IFETCH)) == "i"

    def test_data_ptw_is_dt(self):
        assert categorize(_req(RequestType.PTW, True, AccessType.DATA)) == "dt"

    def test_instr_ptw_is_it(self):
        assert categorize(_req(RequestType.PTW, True, AccessType.INSTRUCTION)) == "it"


class TestLevelStats:
    def test_record_hit(self):
        lvl = LevelStats("L2C")
        lvl.record_access("d", hit=True)
        assert lvl.accesses == 1
        assert lvl.hits == 1
        assert lvl.misses == 0
        assert lvl.hit_rate == 1.0

    def test_record_miss_with_latency(self):
        lvl = LevelStats("L2C")
        lvl.record_access("dt", hit=False, miss_latency=100)
        lvl.record_access("dt", hit=False, miss_latency=50)
        assert lvl.misses == 2
        assert lvl.avg_miss_latency == 75.0
        assert lvl.category_misses["dt"] == 2

    def test_mpki(self):
        lvl = LevelStats("LLC")
        for _ in range(5):
            lvl.record_access("d", hit=False, miss_latency=1)
        assert lvl.mpki(1000) == 5.0
        assert lvl.category_mpki("d", 1000) == 5.0
        assert lvl.category_mpki("i", 1000) == 0.0

    def test_mpki_zero_instructions(self):
        lvl = LevelStats("LLC")
        assert lvl.mpki(0) == 0.0

    def test_reset_is_in_place(self):
        # The hot path binds the category dicts once; reset must zero the
        # existing objects, never replace them.
        lvl = LevelStats("L1D")
        accesses, misses = lvl.cat_accesses, lvl.cat_misses
        lvl.record_access("dt", hit=False, miss_latency=10)
        lvl.reset()
        assert lvl.cat_accesses is accesses
        assert lvl.cat_misses is misses
        assert all(v == 0 for v in accesses.values())
        assert all(v == 0 for v in misses.values())

    def test_reset(self):
        lvl = LevelStats("L1D")
        lvl.record_access("d", hit=False, miss_latency=10)
        lvl.evictions = 3
        lvl.reset()
        assert lvl.accesses == 0
        assert lvl.misses == 0
        assert lvl.evictions == 0
        assert lvl.category_misses == {}


class TestSimStats:
    def test_level_is_memoised(self):
        stats = SimStats()
        assert stats.level("L2C") is stats.level("L2C")

    def test_ipc(self):
        stats = SimStats()
        stats.instructions = 1000
        stats.cycles = 2000.0
        assert stats.ipc == 0.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_bump(self):
        stats = SimStats()
        stats.bump("x")
        stats.bump("x", 4)
        assert stats.counters["x"] == 5

    def test_report_contains_level_metrics(self):
        stats = SimStats()
        stats.instructions = 1000
        stats.cycles = 1000
        stats.level("STLB").record_access("i", hit=False, miss_latency=40)
        report = stats.report()
        assert report["stlb.mpki"] == 1.0
        assert report["stlb.impki"] == 1.0
        assert report["stlb.dmpki"] == 0.0
        assert report["stlb.avg_miss_latency"] == 40.0
        assert report["ipc"] == 1.0

    def test_reset_clears_dicts_in_place(self):
        # Core/DRAM hold references to these dicts across the warmup
        # boundary, so reset must clear them, not rebind the attributes.
        stats = SimStats()
        counters = stats.counters
        per_thread = stats.per_thread_instructions
        stats.bump("x", 3)
        per_thread[0] = 100
        stats.reset()
        assert stats.counters is counters
        assert stats.per_thread_instructions is per_thread
        assert counters == {}
        assert per_thread == {}

    def test_reset_keeps_level_objects(self):
        stats = SimStats()
        lvl = stats.level("L2C")
        lvl.record_access("d", hit=True)
        stats.instructions = 10
        stats.reset()
        assert stats.level("L2C") is lvl
        assert lvl.accesses == 0
        assert stats.instructions == 0
