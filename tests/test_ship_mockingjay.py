"""Unit tests for the SHiP and Mockingjay-simplified LLC policies."""

from repro.cache.line import CacheLine
from repro.common.types import MemoryRequest, RequestType
from repro.replacement.mockingjay import MockingjayPolicy
from repro.replacement.ship import SHCT_MAX, SHiPPolicy, pc_signature
from repro.replacement.srrip import RRPV_LONG, RRPV_MAX


def req(pc=0x400, addr=0x1000):
    return MemoryRequest(address=addr, req_type=RequestType.LOAD, pc=pc)


def lines(n=4):
    return [CacheLine(valid=True, tag=i) for i in range(n)]


class TestSHiP:
    def test_fill_records_signature(self):
        policy = SHiPPolicy(4, 4)
        ls = lines()
        r = req(pc=0x1234)
        policy.on_fill(0, 0, ls, r)
        assert ls[0].signature == pc_signature(r)
        assert not ls[0].outcome
        assert ls[0].rrpv == RRPV_LONG

    def test_hit_trains_up(self):
        policy = SHiPPolicy(4, 4)
        ls = lines()
        r = req()
        sig = pc_signature(r)
        before = policy.shct[sig]
        policy.on_fill(0, 0, ls, r)
        policy.on_hit(0, 0, ls, r)
        assert policy.shct[sig] == before + 1
        assert ls[0].rrpv == 0
        # Second hit on the same generation trains only once.
        policy.on_hit(0, 0, ls, r)
        assert policy.shct[sig] == before + 1

    def test_dead_eviction_trains_down(self):
        policy = SHiPPolicy(4, 4)
        ls = lines()
        r = req()
        sig = pc_signature(r)
        before = policy.shct[sig]
        policy.on_fill(0, 0, ls, r)
        policy.on_evict(0, 0, ls)
        assert policy.shct[sig] == before - 1

    def test_zero_confidence_inserts_distant(self):
        policy = SHiPPolicy(4, 4)
        ls = lines()
        r = req()
        policy.shct[pc_signature(r)] = 0
        policy.on_fill(0, 0, ls, r)
        assert ls[0].rrpv == RRPV_MAX

    def test_shct_saturates(self):
        policy = SHiPPolicy(4, 4)
        ls = lines()
        r = req()
        sig = pc_signature(r)
        policy.shct[sig] = SHCT_MAX
        policy.on_fill(0, 0, ls, r)
        policy.on_hit(0, 0, ls, r)
        assert policy.shct[sig] == SHCT_MAX


class TestMockingjay:
    def test_fill_sets_eta(self):
        policy = MockingjayPolicy(4, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req())
        assert ls[0].eta > policy.clock - 1

    def test_victim_prefers_overdue(self):
        policy = MockingjayPolicy(4, 4)
        ls = lines()
        policy.clock = 1000
        for way in range(4):
            ls[way].eta = 2000
        ls[2].eta = 10  # long overdue: predicted dead
        assert policy.victim(0, ls, req()) == 2

    def test_victim_furthest_future_when_none_overdue(self):
        policy = MockingjayPolicy(4, 4)
        ls = lines()
        policy.clock = 0
        for way, eta in enumerate([100, 400, 200, 300]):
            ls[way].eta = eta
        assert policy.victim(0, ls, req()) == 1

    def test_sampler_trains_reuse_distance(self):
        policy = MockingjayPolicy(4, 4)
        ls = lines()
        r = req(pc=0x777, addr=0x8000)  # line addr & 0x7 == 0 -> sampled
        default = policy.predicted_reuse[:]
        policy.on_fill(0, 0, ls, r)
        for _ in range(5):
            policy.on_hit(0, 0, ls, r)
        assert policy.predicted_reuse != default

    def test_clock_advances(self):
        policy = MockingjayPolicy(4, 4)
        ls = lines()
        policy.on_fill(0, 0, ls, req())
        policy.on_hit(0, 0, ls, req())
        assert policy.clock == 2
