"""Unit tests for the 5-level radix page table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import PAGE_BYTES, PageSize
from repro.ptw.page_table import (
    ENTRIES_PER_TABLE,
    NUM_LEVELS,
    PageTable,
    level_index,
)


class TestLevelIndex:
    def test_level1_is_low_bits(self):
        assert level_index(0x1FF, 1) == 0x1FF

    def test_level_slicing(self):
        vpn = (3 << 36) | (5 << 27) | (7 << 18) | (9 << 9) | 11
        assert level_index(vpn, 5) == 3
        assert level_index(vpn, 4) == 5
        assert level_index(vpn, 3) == 7
        assert level_index(vpn, 2) == 9
        assert level_index(vpn, 1) == 11


class TestWalkPath:
    def test_4k_walk_has_five_steps(self):
        pt = PageTable()
        path = pt.walk_path(0x1234_5000)
        assert len(path.steps) == NUM_LEVELS
        assert [s.level for s in path.steps] == [5, 4, 3, 2, 1]
        assert path.page_size is PageSize.SIZE_4K
        assert path.leaf_level == 1

    def test_2m_walk_stops_at_level2(self):
        pt = PageTable(size_policy=lambda vaddr: PageSize.SIZE_2M)
        path = pt.walk_path(0x1234_5000)
        assert [s.level for s in path.steps] == [5, 4, 3, 2]
        assert path.page_size is PageSize.SIZE_2M
        assert path.leaf_level == 2

    def test_walk_is_deterministic(self):
        pt = PageTable()
        p1 = pt.walk_path(0x8000_0000)
        p2 = pt.walk_path(0x8000_0000)
        assert p1 == p2

    def test_first_step_reads_root(self):
        pt = PageTable()
        path = pt.walk_path(0)
        assert path.steps[0].entry_address >> 12 == pt.root_frame

    def test_adjacent_pages_share_leaf_line(self):
        # 8 PTEs per 64-byte line: the xPTP-relevant sharing property.
        pt = PageTable()
        leaf0 = pt.walk_path(0x0000).steps[-1].entry_address
        leaf1 = pt.walk_path(0x1000).steps[-1].entry_address
        assert leaf1 - leaf0 == 8
        assert leaf0 >> 6 == leaf1 >> 6

    def test_distant_pages_use_distinct_tables(self):
        pt = PageTable()
        a = pt.walk_path(0)
        b = pt.walk_path(1 << 40)
        assert a.steps[-1].entry_address >> 12 != b.steps[-1].entry_address >> 12
        assert a.steps[0].entry_address >> 12 == b.steps[0].entry_address >> 12

    def test_table_count_grows_lazily(self):
        pt = PageTable()
        assert pt.table_count == 1  # just the root
        pt.walk_path(0)
        assert pt.table_count == 5
        pt.walk_path(0x1000)  # same tables
        assert pt.table_count == 5


class TestMapping:
    def test_pfn_stable_across_walks(self):
        pt = PageTable()
        assert pt.walk_path(0x5000).pfn == pt.walk_path(0x5000).pfn

    def test_distinct_pages_get_distinct_frames(self):
        pt = PageTable()
        pfns = {pt.walk_path(i << 12).pfn for i in range(64)}
        assert len(pfns) == 64

    def test_page_counters(self):
        pt = PageTable()
        pt.walk_path(0x0000)
        pt.walk_path(0x1000)
        pt.walk_path(0x1800)  # same page as 0x1000
        assert pt.pages_mapped_4k == 2
        assert pt.pages_mapped_2m == 0

    def test_2m_page_contiguous_and_aligned(self):
        pt = PageTable(size_policy=lambda vaddr: PageSize.SIZE_2M)
        base = pt.walk_path(0x20_0000).pfn
        assert base % ENTRIES_PER_TABLE == 0  # 2 MB-aligned allocation
        nxt = pt.walk_path(0x20_1000).pfn
        assert nxt == base + 1
        assert pt.pages_mapped_2m == 1

    def test_translate_composes_offset(self):
        pt = PageTable()
        paddr = pt.translate(0x5123)
        assert paddr & 0xFFF == 0x123
        assert paddr >> 12 == pt.walk_path(0x5123).pfn

    def test_translate_2m_region_is_contiguous(self):
        pt = PageTable(size_policy=lambda vaddr: PageSize.SIZE_2M)
        p0 = pt.translate(0x20_0000)
        p1 = pt.translate(0x20_0000 + PAGE_BYTES)
        assert p1 - p0 == PAGE_BYTES

    def test_negative_address_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            PageTable().walk_path(-1)


@settings(max_examples=100, deadline=None)
@given(vaddrs=st.lists(st.integers(min_value=0, max_value=(1 << 45) - 1), max_size=30))
def test_translation_is_a_function(vaddrs):
    """Same vaddr always maps to the same paddr; offsets preserved."""
    pt = PageTable()
    first = {v: pt.translate(v) for v in vaddrs}
    for v in vaddrs:
        assert pt.translate(v) == first[v]
        assert first[v] & 0xFFF == v & 0xFFF


@settings(max_examples=50, deadline=None)
@given(pages=st.lists(st.integers(min_value=0, max_value=1 << 30), unique=True, max_size=30))
def test_distinct_pages_never_collide(pages):
    pt = PageTable()
    frames = [pt.walk_path(p << 12).pfn for p in pages]
    assert len(set(frames)) == len(frames)
