"""Unit tests for the DRAM model and the adaptive xPTP controller."""

from repro.common.params import AdaptiveConfig, DRAMConfig, scaled_config
from repro.common.stats import LevelStats, SimStats
from repro.common.types import MemoryRequest, RequestType
from repro.core.adaptive import AdaptiveXPTPController
from repro.mem.dram import DRAM
from repro.ptw.page_table import PageTable
from repro.ptw.walker import PageTableWalker
from repro.replacement.xptp import XPTPPolicy
from repro.tlb.hierarchy import MMU

from .helpers import StubMemory, load


class TestDRAM:
    def make(self):
        return DRAM(DRAMConfig(latency=100, contention_cycles=10), LevelStats("DRAM"))

    def test_fixed_latency_when_idle(self):
        dram = self.make()
        assert dram.access(load(0)) == 100

    def test_writeback_free_latency(self):
        dram = self.make()
        wb = MemoryRequest(address=0, req_type=RequestType.WRITEBACK)
        assert dram.access(wb) == 0
        assert dram.stats.accesses == 1

    def test_queue_delay_after_busy_window(self):
        dram = self.make()
        for _ in range(200):  # 200 accesses in one kilo-instruction window
            dram.access(load(0))
        dram.note_instructions(1000)
        assert dram.queue_delay > 0
        assert dram.access(load(0)) == 100 + dram.queue_delay

    def test_queue_delay_decays_when_quiet(self):
        dram = self.make()
        for _ in range(200):
            dram.access(load(0))
        dram.note_instructions(1000)
        dram.note_instructions(1000)  # quiet window
        assert dram.queue_delay == 0

    def test_delay_capped(self):
        dram = self.make()
        for _ in range(100000):
            dram.access(load(0))
        dram.note_instructions(1000)
        assert dram.queue_delay <= 10 * 3


def make_controller(enabled=True, t1=1, window=1000):
    config = scaled_config()
    stats = SimStats()
    walker = PageTableWalker(PageTable(), config.psc, StubMemory(), stats)
    mmu = MMU(config, walker, stats)
    xptp = XPTPPolicy(4, 4)
    controller = AdaptiveXPTPController(
        AdaptiveConfig(enabled=enabled, window_instructions=window, t1_misses=t1),
        mmu, xptp,
    )
    return controller, mmu, xptp


class TestAdaptiveController:
    def test_starts_disabled(self):
        controller, _, xptp = make_controller()
        assert not xptp.enabled

    def test_enables_under_pressure(self):
        controller, mmu, xptp = make_controller(t1=1)
        mmu.stlb_miss_events = 5
        controller.on_instructions(1000)
        assert xptp.enabled
        assert controller.windows_enabled == 1
        assert controller.switches == 1

    def test_stays_lru_below_threshold(self):
        controller, mmu, xptp = make_controller(t1=3)
        mmu.stlb_miss_events = 2
        controller.on_instructions(1000)
        assert not xptp.enabled

    def test_disables_when_pressure_drops(self):
        controller, mmu, xptp = make_controller(t1=1)
        mmu.stlb_miss_events = 5
        controller.on_instructions(1000)
        assert xptp.enabled
        mmu.stlb_miss_events = 0
        controller.on_instructions(1000)
        assert not xptp.enabled
        assert controller.switches == 2

    def test_window_accumulates_partial_counts(self):
        controller, mmu, xptp = make_controller(t1=1, window=1000)
        mmu.stlb_miss_events = 5
        controller.on_instructions(400)
        controller.on_instructions(400)
        assert not xptp.enabled  # window not yet closed
        controller.on_instructions(400)
        assert xptp.enabled

    def test_overshoot_carries_into_next_window(self):
        # 1500 instructions close one window and leave a 500 remainder;
        # 500 more must close the second window (not be lost to a reset).
        controller, mmu, xptp = make_controller(t1=1, window=1000)
        mmu.stlb_miss_events = 5
        controller.on_instructions(1500)
        assert controller.windows_total == 1
        controller.on_instructions(500)
        assert controller.windows_total == 2

    def test_large_count_closes_multiple_windows(self):
        controller, mmu, xptp = make_controller(t1=1, window=1000)
        mmu.stlb_miss_events = 5
        controller.on_instructions(3500)
        assert controller.windows_total == 3
        controller.on_instructions(500)
        assert controller.windows_total == 4

    def test_inactive_without_xptp(self):
        config = scaled_config()
        stats = SimStats()
        walker = PageTableWalker(PageTable(), config.psc, StubMemory(), stats)
        mmu = MMU(config, walker, stats)
        controller = AdaptiveXPTPController(AdaptiveConfig(), mmu, None)
        assert not controller.active
        controller.on_instructions(5000)  # no crash

    def test_disabled_config_leaves_xptp_on(self):
        controller, _, xptp = make_controller(enabled=False)
        assert xptp.enabled  # always-on mode
        assert not controller.active

    def test_reset_stats(self):
        controller, mmu, xptp = make_controller()
        mmu.stlb_miss_events = 5
        controller.on_instructions(1000)
        controller.reset_stats()
        assert controller.windows_total == 0
        assert controller.switches == 0


class TestRowBufferDRAM:
    def make(self):
        return DRAM(
            DRAMConfig(row_buffer=True, banks=2, row_bytes=1024,
                       t_rp=10, t_rcd=10, t_cas=10, clock_ratio=2.0,
                       bus_overhead=20),
            LevelStats("DRAM"),
        )

    def test_first_access_opens_row(self):
        dram = self.make()
        # closed row: 20 + (10+10+10)*2 = 80
        assert dram.access(load(0)) == 80
        assert dram.row_misses == 1

    def test_same_row_hits(self):
        dram = self.make()
        dram.access(load(0))
        # open row: 20 + 10*2 = 40
        assert dram.access(load(512)) == 40
        assert dram.row_hits == 1

    def test_row_conflict_same_bank(self):
        dram = self.make()
        dram.access(load(0))          # row 0, bank 0
        # row 2 also maps to bank 0 (2 % 2 == 0): conflict.
        assert dram.access(load(2 * 1024)) == 80

    def test_different_banks_independent(self):
        dram = self.make()
        dram.access(load(0))          # row 0 -> bank 0
        dram.access(load(1024))       # row 1 -> bank 1
        # Bank 0's row 0 is still open.
        assert dram.access(load(64)) == 40

    def test_writeback_opens_row_silently(self):
        dram = self.make()
        wb = MemoryRequest(address=0, req_type=RequestType.WRITEBACK)
        assert dram.access(wb) == 0
        assert dram.access(load(64)) == 40  # the row is open now

    def test_flat_mode_unchanged(self):
        dram = DRAM(DRAMConfig(latency=99), LevelStats("DRAM"))
        assert dram.access(load(0)) == 99

    def test_end_to_end_with_row_buffer(self):
        from dataclasses import replace

        from repro.core.simulator import simulate
        from repro.workloads.server import ServerWorkload

        cfg = replace(scaled_config(), dram=DRAMConfig(row_buffer=True))
        wl = ServerWorkload("rb", 8, code_pages=96, data_pages=2500,
                            hot_data_pages=64, warm_pages=600, local_pages=16)
        result = simulate(cfg, wl, 10_000, 30_000)
        assert result.ipc > 0
