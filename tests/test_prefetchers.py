"""Unit tests for the prefetchers (next-line, stride, FDIP)."""

import pytest

from repro.cache.prefetch import (
    FDIPPrefetcher,
    NextLinePrefetcher,
    StridePrefetcher,
    make_prefetcher,
)

from .helpers import ifetch, load, make_cache


class TestNextLine:
    def test_prefetches_next_line_on_access(self):
        cache, _ = make_cache(sets=16, assoc=4, prefetcher=NextLinePrefetcher(degree=1))
        cache.access(load(0x1000))
        assert cache.probe(0x1040)

    def test_degree(self):
        cache, _ = make_cache(sets=16, assoc=4, prefetcher=NextLinePrefetcher(degree=3))
        cache.access(load(0x1000))
        for step in (1, 2, 3):
            assert cache.probe(0x1000 + 64 * step)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_detects_stride_after_confirmation(self):
        cache, _ = make_cache(sets=64, assoc=4, prefetcher=StridePrefetcher(degree=1))
        pc = 0x400
        # Three accesses with stride 2 lines: third confirms and prefetches.
        cache.access(load(0x0000, pc=pc))
        cache.access(load(0x0080, pc=pc))
        assert not cache.probe(0x0100)
        cache.access(load(0x0100, pc=pc))
        assert cache.probe(0x0180)

    def test_no_prefetch_on_stride_change(self):
        cache, _ = make_cache(sets=64, assoc=4, prefetcher=StridePrefetcher(degree=1))
        pc = 0x400
        cache.access(load(0x0000, pc=pc))
        cache.access(load(0x0080, pc=pc))
        cache.access(load(0x0240, pc=pc))  # different stride
        assert not cache.probe(0x0240 + 0x80)

    def test_zero_stride_ignored(self):
        cache, _ = make_cache(sets=64, assoc=4, prefetcher=StridePrefetcher(degree=1))
        pc = 0x400
        cache.access(load(0x0000, pc=pc))
        cache.access(load(0x0010, pc=pc))  # same line -> stride 0
        assert cache.stats.prefetch_fills == 0


class TestFDIP:
    def test_sequential_fetch_runs_ahead(self):
        cache, _ = make_cache(sets=64, assoc=4, prefetcher=FDIPPrefetcher(depth=4))
        cache.access(ifetch(0x0000))
        cache.access(ifetch(0x0040))  # sequential
        for step in range(2, 6):
            assert cache.probe(0x0040 + 64 * (step - 1))

    def test_redirect_prefetches_fallthrough_only(self):
        cache, _ = make_cache(sets=64, assoc=4, prefetcher=FDIPPrefetcher(depth=4))
        cache.access(ifetch(0x0000))
        cache.access(ifetch(0x8000))  # taken branch
        assert cache.probe(0x8040)
        assert not cache.probe(0x8080)

    def test_ignores_data_accesses(self):
        cache, _ = make_cache(sets=64, assoc=4, prefetcher=FDIPPrefetcher())
        cache.access(load(0x1000))
        assert cache.stats.prefetch_fills == 0


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_prefetcher("next_line"), NextLinePrefetcher)
        assert isinstance(make_prefetcher("stride"), StridePrefetcher)
        assert isinstance(make_prefetcher("fdip"), FDIPPrefetcher)

    def test_none_means_no_prefetcher(self):
        assert make_prefetcher(None) is None

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("bingo")
